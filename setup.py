"""Shim for legacy editable installs (no-network environments without wheel)."""

from setuptools import setup

setup()
