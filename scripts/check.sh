#!/usr/bin/env bash
# The full gate: domain lint, typing (when mypy is available), tier-1 tests.
# Everything CI runs, runnable locally in one shot.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== lintkit =="
python -m repro.lintkit src/repro tests

echo "== mypy =="
if command -v mypy >/dev/null 2>&1; then
    mypy src/repro
else
    echo "mypy not installed; skipping the typing gate (pip install mypy)"
fi

echo "== tests =="
python -m pytest -x -q

echo "== storage coverage =="
# The durability layer carries a hard coverage floor: the crash matrix,
# the WAL unit tests and the recovery property tests together must keep
# repro.storage above 90%.  Gated on pytest-cov being installed (it is
# an extra: pip install '.[cov]'); CI runs this lane unconditionally.
if python -c "import pytest_cov" >/dev/null 2>&1; then
    python -m pytest tests/storage tests/properties/test_recovery_props.py \
        --cov=repro.storage --cov-report=term-missing:skip-covered \
        --cov-fail-under=90 -q
else
    echo "pytest-cov not installed; skipping the coverage gate (pip install '.[cov]')"
fi

echo "== columnar equivalence =="
# The columnar layout's differential contract: random op mixes driven
# in lockstep against the object layout must produce identical answers
# and identical OpCounters/IOStats (tier-1 runs this too; kept as its
# own lane so a layout divergence is named, not buried).
python -m pytest -x -q tests/properties/test_columnar_equivalence.py

echo "== perf smoke =="
# Both layout lanes; each run also executes the object-vs-columnar
# oracle probe and exits non-zero on divergence.
python -m repro perf --scale smoke --no-write >/dev/null
python -m repro perf --scale smoke --layout columnar --no-write >/dev/null

echo "== obs smoke =="
# EXPLAIN and a traced workload must run end to end; the JSONL artifact
# must parse back (CI uploads the same file).
obs_trace="${TMPDIR:-/tmp}/repro-trace-smoke.jsonl"
python -m repro explain --n 800 --point 0.3 0.7 >/dev/null
python -m repro explain --n 800 --rect 0.2 0.2 0.6 0.6 --format json >/dev/null
python -m repro trace --n 800 --out "$obs_trace" >/dev/null
python - "$obs_trace" <<'PY'
import sys
from repro.obs import read_jsonl
events = read_jsonl(sys.argv[1])
assert events, "obs smoke produced an empty trace"
PY
rm -f "$obs_trace"
# The dashboard must drive a full stream in --once mode with all three
# artifact sinks on, the Prometheus exposition must pass the in-tree
# lint, and the slow-op records must carry valid EXPLAIN attachments.
top_prom="${TMPDIR:-/tmp}/repro-top-smoke.prom"
top_slow="${TMPDIR:-/tmp}/repro-top-smoke-slow.jsonl"
python -m repro top --once --n 2000 --slow-ms 0 \
    --prom-out "$top_prom" --slow-out "$top_slow" >/dev/null
python - "$top_prom" "$top_slow" <<'PY'
import json, sys
from repro.obs import lint_prometheus
text = open(sys.argv[1]).read()
problems = lint_prometheus(text)
assert not problems, f"top exposition failed promtext lint: {problems}"
assert "repro_profile_get_latency_us_count" in text
slow = [json.loads(l) for l in open(sys.argv[2]) if l.strip()]
assert slow, "slow-ms 0 captured no slow ops"
explained = [r for r in slow if "explain" in r]
assert explained, "no slow query carried an EXPLAIN attachment"
assert all(r["explain"]["pages_touched"] >= 1 for r in explained)
PY
rm -f "$top_prom" "$top_slow"

echo "== concurrency =="
# The lockstep/linearizability lane by name: snapshot isolation, the
# deterministic schedule replays, free-running thread runs, the reader
# hammer, crash-under-concurrency cells and the serving wire contract.
# Tier-1 runs these too; the named lane means a concurrency regression
# is reported as one, not buried in the full run.  (The ~30s soak is
# `slow`-marked and runs in the nightly lane: pytest -m slow.)
python -m pytest -x -q tests/concurrency tests/server

echo "== serve smoke =="
# Boot the real server, drive mixed traffic over real sockets with the
# load generator, and require non-zero throughput with zero failed
# requests (loadgen exits 1 on any unexpected status).
serve_json="${TMPDIR:-/tmp}/repro-serve-smoke.json"
python -m repro serve --n 2000 --port 18077 >/dev/null 2>&1 &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
for _ in $(seq 50); do
    if python - <<'PY' 2>/dev/null
import http.client
conn = http.client.HTTPConnection("127.0.0.1", 18077, timeout=1)
conn.request("GET", "/health")
assert conn.getresponse().status == 200
PY
    then break; fi
    sleep 0.2
done
python -m repro loadgen --url http://127.0.0.1:18077 \
    --duration 3 --json "$serve_json" >/dev/null
python - "$serve_json" <<'PY'
import json, sys
summary = json.load(open(sys.argv[1]))
assert summary["requests"] > 0, "serve smoke drove no traffic"
assert summary["errors"] == 0, f"serve smoke saw errors: {summary}"
assert summary["ops_per_s"] > 0
PY
kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
trap - EXIT
rm -f "$serve_json"

echo "== durability smoke =="
# Build a durable store that dies at an injected torn-tail crash, then
# recover it and verify the rebuilt tree — the full loop the crash
# matrix exercises, end to end through the CLI.
durable_dir="${TMPDIR:-/tmp}/repro-durable-smoke"
rm -rf "$durable_dir"
python -m repro recover "$durable_dir" --build \
    --fault 'after-appends=300,tail=torn' \
    --n 3000 --churn 0.2 --sync os >/dev/null
rm -rf "$durable_dir"

echo "== doctor smoke =="
# The guarantee doctor on an adversarial churn workload must pass all
# three verdicts with a clean audit (non-zero exit otherwise), and the
# time-series artifact must parse back.
doctor_series="${TMPDIR:-/tmp}/repro-doctor-smoke.json"
python -m repro doctor --workload storm --n 10000 --churn 0.25 \
    --series-out "$doctor_series" >/dev/null
python - "$doctor_series" <<'PY'
import json, sys
record = json.load(open(sys.argv[1]))
series = record["timeseries"]
assert series["ops"], "doctor smoke produced an empty time series"
assert all(
    len(col) == len(series["ops"]) for col in series["metrics"].values()
), "doctor time-series columns are ragged"
PY
rm -f "$doctor_series"

echo "all checks passed"
