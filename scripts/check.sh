#!/usr/bin/env bash
# The full gate: domain lint, typing (when mypy is available), tier-1 tests.
# Everything CI runs, runnable locally in one shot.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== lintkit =="
python -m repro.lintkit src/repro tests

echo "== mypy =="
if command -v mypy >/dev/null 2>&1; then
    mypy src/repro
else
    echo "mypy not installed; skipping the typing gate (pip install mypy)"
fi

echo "== tests =="
python -m pytest -x -q

echo "== perf smoke =="
python -m repro perf --scale smoke --no-write >/dev/null

echo "all checks passed"
