#!/usr/bin/env bash
# Reproduce everything: tests, benchmarks (with the paper's tables), examples.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tests =="
python -m pytest tests/ 2>&1 | tee test_output.txt

echo "== benchmarks (tables in bench_output.txt) =="
python -m pytest benchmarks/ --benchmark-only -s 2>&1 | tee bench_output.txt

echo "== examples =="
for example in examples/*.py; do
    echo "--- $example"
    python "$example"
done

echo "== figures via the CLI =="
python -m repro figures --fanout 24
python -m repro figures --fanout 120
python -m repro thresholds
