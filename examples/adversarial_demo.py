#!/usr/bin/env python3
"""The pathologies, live: cascade splits and occupancy collapse.

Loads the same clustered workload into the BV-tree and into the three
designs the paper's introduction critiques, then prints the structural
damage each suffers — the behaviour Figures 1-1/1-2/1-3 describe — and
the worst single-insertion cost.

Run:  python examples/adversarial_demo.py
"""

from repro import BVTree, DataSpace
from repro.baselines import BangFile, KDBTree, LSDTree
from repro.bench.reporting import format_table
from repro.workloads import clustered, nested_hotspot


def load(index, points):
    for i, p in enumerate(points):
        index.insert(p, i, replace=True)
    return index


def occupancy_row(name, index, data_sizes, index_sizes, forced, cascade):
    return [
        name,
        len(data_sizes),
        min(data_sizes),
        f"{sum(data_sizes) / len(data_sizes):.1f}",
        min(index_sizes) if index_sizes else "-",
        forced,
        cascade,
    ]


def main() -> None:
    space = DataSpace.unit(2, resolution=18)
    points = list(clustered(8000, 2, clusters=6, spread=0.015, seed=3))
    points += list(nested_hotspot(4000, 2, seed=4))
    P, F = 8, 8

    bv = load(BVTree(space, data_capacity=P, fanout=F), points)
    kdb = load(KDBTree(space, data_capacity=P, fanout=F), points)
    bang = load(BangFile(space, data_capacity=P, fanout=F), points)
    lsd = load(LSDTree(space, data_capacity=P, fanout=F), points)

    bv_stats = bv.tree_stats()
    rows = [
        occupancy_row("BV-tree", bv, bv_stats.data_occupancies,
                      bv_stats.index_occupancies, 0, 0),
        occupancy_row("K-D-B tree", kdb, *kdb.occupancies(),
                      kdb.stats.forced_splits, kdb.stats.max_cascade),
        occupancy_row("BANG (balanced dir)", bang, *bang.occupancies(),
                      bang.stats.forced_splits, bang.stats.max_cascade),
        occupancy_row("LSD-style", lsd, *lsd.occupancies(), 0, 0),
    ]
    print(format_table(
        ["structure", "data pages", "min occ", "avg occ", "min idx occ",
         "forced splits", "max cascade"],
        rows,
        title=f"clustered + hotspot workload, {len(points)} inserts, "
              f"P={P}, F={F}",
    ))

    print()
    print(f"BV-tree guaranteed data-page minimum: "
          f"{bv.policy.min_data_occupancy()} records "
          f"(measured minimum: {bv_stats.min_data_occupancy})")
    print(f"BV-tree promotions: {bv.stats.promotions}, "
          f"demotions: {bv.stats.demotions}, guards live: "
          f"{bv_stats.total_guards} — the price paid instead of cascades")
    print(f"every BV search costs exactly height+1 = {bv.height + 1} pages; "
          f"a K-D-B insertion once forced {kdb.stats.max_cascade} extra "
          f"page splits, a BANG insertion {bang.stats.max_cascade}")

    bv.check(sample_points=100)
    print("BV-tree invariants verified")


if __name__ == "__main__":
    main()
