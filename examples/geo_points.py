#!/usr/bin/env python3
"""Geographic point indexing: BV-tree vs Z-order linearisation.

A synthetic "places" dataset — population centres clustered around a few
metropolitan areas, plus scattered rural points — indexed once in a
BV-tree and once through the Z-order/B-tree workaround the paper's §1
discusses.  Both answer every query identically; the page-access counts
show why the paper cares about contraction to occupied subspaces.

Run:  python examples/geo_points.py
"""

import random

from repro import BVTree, DataSpace
from repro.baselines import ZOrderBTree


def synthesise_places(n: int, seed: int = 7):
    """Clustered lon/lat points in a [-180, 180) x [-90, 90) world."""
    rng = random.Random(seed)
    metros = [(rng.uniform(-160, 160), rng.uniform(-70, 70)) for _ in range(12)]
    places = []
    for i in range(n):
        if rng.random() < 0.85:
            cx, cy = rng.choice(metros)
            lon = min(max(rng.gauss(cx, 2.0), -180.0), 179.999)
            lat = min(max(rng.gauss(cy, 1.5), -90.0), 89.999)
        else:
            lon, lat = rng.uniform(-180, 180), rng.uniform(-90, 90)
        places.append(((lon, lat), f"place-{i}"))
    return places, metros


def main() -> None:
    world = DataSpace([(-180.0, 180.0), (-90.0, 90.0)], resolution=24)
    places, metros = synthesise_places(20_000)

    bv = BVTree(world, data_capacity=32, fanout=32)
    zb = ZOrderBTree(world, leaf_capacity=32, fanout=32)
    for point, name in places:
        bv.insert(point, name, replace=True)
        zb.insert(point, name, replace=True)
    print(f"loaded {len(bv)} places; BV height {bv.height}, "
          f"Z-order B-tree height {zb.height}")

    # A city-scale window around the first metro.
    cx, cy = metros[0]
    lows, highs = (cx - 1.0, cy - 1.0), (cx + 1.0, cy + 1.0)
    bv_result = zb_result = None
    bv_result = bv.range_query(lows, highs)
    zb_result = zb.range_query(lows, highs)
    assert set(bv_result.points()) == set(zb_result.points())
    print(f"metro window: {len(bv_result)} places — "
          f"BV read {bv_result.pages_visited} pages, "
          f"Z-order read {zb_result.pages_visited} pages")

    # An ocean-scale window over (mostly) empty space: the BV-tree's
    # region set contracts to occupied subspaces; the Z-order intervals
    # still have to be probed.
    lows, highs = (-40.0, -60.0), (20.0, -20.0)
    bv_result = bv.range_query(lows, highs)
    zb_result = zb.range_query(lows, highs)
    assert set(bv_result.points()) == set(zb_result.points())
    print(f"ocean window: {len(bv_result)} places — "
          f"BV read {bv_result.pages_visited} pages, "
          f"Z-order read {zb_result.pages_visited} pages")

    # Exact-match parity: both are B-tree-like, height+1 page reads.
    probe = places[123][0]
    print(f"exact match cost — BV: {bv.search(probe).nodes_visited} pages, "
          f"Z-order: {zb.search_cost(probe)} pages")

    bv.check(sample_points=200)
    print("BV-tree invariants hold")


if __name__ == "__main__":
    main()
