#!/usr/bin/env python3
"""Reproduce the paper's §7 analysis: Figures 7-1/7-2 and the thresholds.

Prints text renditions of both figures, the height-growth readings the
paper quotes, and the file-size thresholds of §7.2/§7.3.

Run:  python examples/worst_case_analysis.py
"""

from repro.analysis import capacity, figures, multipage, worstcase


def main() -> None:
    for fanout, name in ((24, "Figure 7-1"), (120, "Figure 7-2")):
        rows = figures.figure_series(fanout)
        print(f"=== {name} (F = {fanout}) " + "=" * 30)
        print(figures.render_figure(rows, fanout))
        print()
        growth = figures.height_growth_table(fanout, range(3, 7))
        readings = ", ".join(f"h={h}→{w}" for h, w in growth)
        print(f"height growth, best → worst case: {readings}")
        print()

    print("=== §7 summary claims " + "=" * 30)
    print(f"worst case loses a factor ≈ h! of capacity: "
          f"h=4: {worstcase.capacity_loss_factor(120, 4):.1f} (4! = 24); "
          f"h=6: {worstcase.capacity_loss_factor(120, 6):.1f} (6! = 720)")

    for fanout, penalty in ((24, 2), (120, 1), (120, 2)):
        threshold = capacity.max_file_size_with_penalty(fanout, penalty)
        print(f"F={fanout:<4} 1 KB pages: ≤{penalty} extra level(s) up to "
              f"{threshold / 1e9:,.1f} GB")

    print(f"a worst-case F=120 tree of height 9 holds "
          f"{capacity.worst_case_file_size_at_height(120, 9) / 1e15:.1f} PB "
          f"(the paper's 'order 3 Petabyte' figure sits between h=8 and 9)")

    print()
    print("=== §7.3: level-scaled index pages " + "=" * 18)
    for h in range(2, 7):
        uniform_worst = worstcase.worst_case_data_nodes(120, h)
        scaled_worst = multipage.worst_case_data_nodes(120, h)
        best = worstcase.best_case_data_nodes(120, h)
        print(f"h={h}: best {best:.3g}, uniform worst {uniform_worst:.3g}, "
              f"scaled worst {scaled_worst:.3g} "
              f"(scaled/best = {scaled_worst / best:.3f})")
    overhead = multipage.scaled_page_overhead(120, 6, 1024)
    print(f"byte overhead of the larger upper-level pages at h=6: "
          f"{overhead * 100:.2f}% — 'negligible effect on overall index size'")


if __name__ == "__main__":
    main()
