#!/usr/bin/env python3
"""Extended spatial objects (§8 outlook): rectangles, never split.

Synthetic building footprints and road bounding boxes stored directly —
each object lives at its minimal enclosing binary block, so no object is
ever cut into pieces (the R+-tree/linearisation defect §1 discusses).

Run:  python examples/spatial_objects.py
"""

import random

from repro import DataSpace, Rect, SpatialIndex


def synthesise_city(n_buildings: int, n_roads: int, seed: int = 5):
    rng = random.Random(seed)
    objects = []
    for i in range(n_buildings):
        x, y = rng.random() * 0.98, rng.random() * 0.98
        w, h = rng.uniform(0.001, 0.01), rng.uniform(0.001, 0.01)
        objects.append((Rect((x, y), (x + w, y + h)), f"building-{i}"))
    for i in range(n_roads):
        # long, thin boxes — the shapes that straddle partition boundaries
        x, y = rng.random() * 0.6, rng.random() * 0.98
        length, width = rng.uniform(0.1, 0.4), rng.uniform(0.001, 0.004)
        objects.append((Rect((x, y), (x + length, y + width)), f"road-{i}"))
    return objects


def main() -> None:
    space = DataSpace.unit(2, resolution=20)
    index = SpatialIndex(space)
    objects = synthesise_city(5000, 300)
    for rect, name in objects:
        index.insert(rect, name)
    print(f"indexed {len(index)} objects in {len(index._buckets)} blocks "
          f"— no object was split")

    # Window query: everything intersecting a viewport.
    viewport = Rect((0.4, 0.4), (0.5, 0.5))
    hits = list(index.intersecting(viewport))
    brute = [name for rect, name in objects if rect.intersects(viewport)]
    assert {v for _, v in hits} == set(brute)
    roads = sum(1 for _, v in hits if v.startswith("road"))
    print(f"viewport query: {len(hits)} objects ({roads} roads) — "
          f"matches brute force")

    # Stabbing query: which objects cover a point?
    probe = (0.45, 0.45)
    covering = list(index.containing_point(probe))
    print(f"stabbing query at {probe}: {len(covering)} objects cover it")

    # Long objects land in shallow blocks; compact ones in deep blocks.
    depths = {}
    for rect, name in objects[:1000] + objects[-300:]:
        depth = index.enclosing_block(rect).nbits
        kind = name.split("-")[0]
        depths.setdefault(kind, []).append(depth)
    for kind, ds in depths.items():
        print(f"{kind:>9}: enclosing-block depth "
              f"min {min(ds)}, mean {sum(ds) / len(ds):.1f}")


if __name__ == "__main__":
    main()
