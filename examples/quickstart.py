#!/usr/bin/env python3
"""Quickstart: index 2-d points with a BV-tree and query them.

Run:  python examples/quickstart.py
"""

import random

from repro import BVTree, DataSpace


def main() -> None:
    # A data space is the Cartesian product of the attribute domains
    # (paper §1); here two attributes, each in [0, 1).
    space = DataSpace.unit(2)
    tree = BVTree(space, data_capacity=16, fanout=16)

    # Insert ten thousand random records.
    rng = random.Random(42)
    for i in range(10_000):
        tree.insert((rng.random(), rng.random()), value=f"record-{i}",
                    replace=True)

    # Exact-match lookup.
    point = (0.123456, 0.654321)
    tree.insert(point, "the needle")
    print("exact match:", tree.get(point))

    # Every exact-match search reads exactly height+1 pages — the paper's
    # §6 guarantee, however unbalanced the index tree becomes.
    result = tree.search(point)
    print(f"tree height {tree.height}; search visited "
          f"{result.nodes_visited} pages (always height + 1)")

    # Range query: all records in a box.
    box = tree.range_query((0.4, 0.4), (0.45, 0.45))
    print(f"range query found {len(box)} records, "
          f"touching {box.pages_visited} pages")

    # Partial match (paper §1): constrain any subset of the attributes.
    pm = tree.partial_match({1: 0.654321})
    print(f"partial match on attribute 1 found {len(pm)} records")

    # Delete and verify.
    tree.delete(point)
    print("deleted; contains(point) =", tree.contains(point))

    # Structural statistics: the 1/3 occupancy guarantee in action.
    stats = tree.tree_stats()
    print(f"data pages: {stats.data_pages}, index nodes: {stats.index_nodes}, "
          f"guards: {stats.total_guards}")
    print(f"minimum data-page occupancy: {stats.min_data_occupancy} "
          f"(guaranteed ≥ {tree.policy.min_data_occupancy()})")

    # The invariant checker is available in anger, not just in tests.
    tree.check(sample_points=100)
    print("all invariants hold")


if __name__ == "__main__":
    main()
