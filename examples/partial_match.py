#!/usr/bin/env python3
"""Symmetric partial-match queries over a multi-attribute relation.

The n-dimensional B-tree problem (paper §1): index n attributes so that a
query specifying any m of them costs the same, whichever combination is
chosen.  This example indexes a synthetic sensor-readings relation on
four attributes and measures partial-match cost for every combination of
constrained attributes — the symmetry a composite-key B-tree cannot give.

Run:  python examples/partial_match.py
"""

import itertools
import random

from repro import BVTree, DataSpace


DIMENSIONS = ["station", "hour", "temperature", "humidity"]


def main() -> None:
    # One attribute per dimension, each normalised into its own domain.
    space = DataSpace(
        [(0.0, 500.0), (0.0, 24.0), (-40.0, 60.0), (0.0, 100.0)],
        resolution=16,
    )
    tree = BVTree(space, data_capacity=24, fanout=24)

    rng = random.Random(11)
    readings = []
    for i in range(15_000):
        reading = (
            float(rng.randrange(500)),          # station id
            round(rng.uniform(0, 23.99), 2),    # hour of day
            round(rng.gauss(15, 12), 2),        # temperature
            round(rng.uniform(0, 100), 2),      # humidity
        )
        if not -40 <= reading[2] < 60:
            continue
        readings.append(reading)
        tree.insert(reading, i, replace=True)
    print(f"indexed {len(tree)} readings on {len(DIMENSIONS)} attributes; "
          f"height {tree.height}")

    # Pick a real record so every constraint combination has a hit.
    target = readings[4321]
    print(f"target record: "
          f"{dict(zip(DIMENSIONS, target))}")

    print(f"\n{'constrained attributes':<38}{'matches':>8}{'pages':>7}")
    for m in range(1, len(DIMENSIONS) + 1):
        for dims in itertools.combinations(range(len(DIMENSIONS)), m):
            constraints = {d: target[d] for d in dims}
            result = tree.partial_match(constraints)
            label = "+".join(DIMENSIONS[d] for d in dims)
            print(f"{label:<38}{len(result):>8}{result.pages_visited:>7}")

    # The symmetry claim: for a fixed m, costs are comparable across all
    # C(n, m) combinations (contrast with a B-tree on the composite key
    # (station, hour, temperature, humidity), which answers station-
    # prefixed queries only).
    per_m: dict[int, list[int]] = {}
    for m in range(1, len(DIMENSIONS)):
        for dims in itertools.combinations(range(len(DIMENSIONS)), m):
            result = tree.partial_match({d: target[d] for d in dims})
            per_m.setdefault(m, []).append(result.pages_visited)
    print()
    for m, costs in per_m.items():
        print(f"m={m}: page costs across combinations "
              f"min={min(costs)} max={max(costs)}")


if __name__ == "__main__":
    main()
