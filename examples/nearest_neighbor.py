#!/usr/bin/env python3
"""k-nearest-neighbour search on the BV-tree (symmetric-index bonus).

A synthetic store-locator: clustered "store" locations, k-NN queries from
random customer positions, cost measured in page accesses against the
full-scan alternative.

Run:  python examples/nearest_neighbor.py
"""

import math
import random

from repro import BVTree, DataSpace
from repro.workloads import clustered


def main() -> None:
    space = DataSpace.unit(2, resolution=20)
    tree = BVTree(space, data_capacity=24, fanout=24)
    stores = list(clustered(15_000, 2, clusters=40, spread=0.03, seed=9))
    for i, location in enumerate(stores):
        tree.insert(location, f"store-{i}", replace=True)
    total_pages = tree.tree_stats().pages_total
    print(f"{len(tree)} stores indexed, {total_pages} pages, "
          f"height {tree.height}")

    rng = random.Random(10)
    total_visited = 0
    queries = 20
    for q in range(queries):
        customer = (rng.random(), rng.random())
        result = tree.nearest(customer, k=5)
        total_visited += result.pages_visited
        if q < 3:
            nearest = result.neighbours[0]
            print(f"customer {tuple(round(c, 3) for c in customer)}: "
                  f"closest {nearest.value} at distance "
                  f"{nearest.distance:.4f} "
                  f"({result.pages_visited} pages)")

    # Verify one query against brute force.
    customer = (0.37, 0.81)
    result = tree.nearest(customer, k=5)
    brute = sorted(
        set(stores), key=lambda s: math.dist(s, customer)
    )[:5]
    assert [round(n.distance, 9) for n in result.neighbours] == [
        round(math.dist(s, customer), 9) for s in brute
    ]
    print("k-NN answers verified against brute force")

    print(f"mean pages per 5-NN query: {total_visited / queries:.1f} "
          f"of {total_pages} total — the best-first traversal prunes "
          f"{100 * (1 - total_visited / queries / total_pages):.0f}% "
          f"of the structure")


if __name__ == "__main__":
    main()
