"""Experiment E-OBJ: extended spatial objects — §1's critique, measured.

§1 on linearisation and clipping: an index that cannot represent an
extended object directly must divide it into parts, "introduc[ing] the
uncontrollable update characteristics we are trying to avoid (and which,
for example, the R+ tree also shows)".  §8's outlook is the remedy: the
dual representation (the minimal-enclosing-block assignment of
``repro.core.spatial``) stores exactly one copy of every object.

Measured here: stored copies per object (R+-tree vs dual representation)
as object extent grows, and stabbing-query page costs against the
R-tree's overlap.
"""

import random

from repro.baselines.rplustree import RPlusTree
from repro.baselines.rtree import RTree
from repro.bench.reporting import format_table
from repro.core.spatial import SpatialIndex
from repro.geometry.rect import Rect
from repro.geometry.space import DataSpace

N = 1500


def make_objects(n, max_side, seed=40):
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        x, y = rng.random() * 0.9, rng.random() * 0.9
        w = rng.uniform(max_side / 20, max_side)
        h = rng.uniform(max_side / 20, max_side)
        out.append(Rect((x, y), (x + w, y + h)))
    return out


def test_copies_per_object(benchmark):
    space = DataSpace.unit(2, resolution=18)

    def sweep():
        rows = []
        for max_side in (0.005, 0.02, 0.06):
            objects = make_objects(N, max_side)
            rplus = RPlusTree(space, capacity=16)
            dual = SpatialIndex(space)
            for i, r in enumerate(objects):
                rplus.insert(r, i)
                dual.insert(r, i)
            rplus.check()
            rows.append(
                (
                    max_side,
                    f"{rplus.stored_copies() / N:.2f}",
                    rplus.stats.forced_partitions,
                    1.0,  # the dual representation stores exactly one copy
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ["max object side", "R+ copies/object", "R+ forced partitions",
         "dual copies/object"],
        rows,
        title=f"E-OBJ: object duplication, {N} objects",
    ))
    copies = [float(row[1]) for row in rows]
    # Duplication grows with object extent; the dual representation is
    # flat at exactly 1 by construction.
    assert copies == sorted(copies)
    assert copies[-1] > 1.3


def test_query_agreement_and_cost(benchmark):
    space = DataSpace.unit(2, resolution=18)
    objects = make_objects(N, 0.04, seed=41)
    rtree = RTree(space, capacity=16)
    rplus = RPlusTree(space, capacity=16)
    dual = SpatialIndex(space)
    for i, r in enumerate(objects):
        rtree.insert(r, i)
        rplus.insert(r, i)
        dual.insert(r, i)
    rng = random.Random(42)
    probes = [(rng.random(), rng.random()) for _ in range(200)]

    def run_queries():
        rt_pages = rp_pages = 0
        for p in probes:
            expected = {i for i, r in enumerate(objects) if r.contains_point(p)}
            rt_hits, a = rtree.containing_point(p)
            rp_hits, b = rplus.containing_point(p)
            dual_hits = {v for _, v in dual.containing_point(p)}
            assert {v for _, v in rt_hits} == expected
            assert {v for _, v in rp_hits} == expected
            assert dual_hits == expected
            rt_pages += a
            rp_pages += b
        return rt_pages / len(probes), rp_pages / len(probes)

    rt_mean, rp_mean = benchmark.pedantic(run_queries, rounds=1, iterations=1)
    print(f"\nstabbing cost per query: R-tree {rt_mean:.1f} pages "
          f"(height {rtree.height}), R+-tree {rp_mean:.1f} pages "
          f"(height {rplus.height}) — all three structures agree on "
          f"every answer")
    # The R-tree's overlap costs it multiple root-leaf paths per stab.
    assert rt_mean > rtree.height + 1
