"""Experiment E-OCC: the 1/3 minimum occupancy, measured.

"a minimum occupancy of 33% for both data and index nodes can be
guaranteed" (§8) — verified on built trees across distributions,
dimensionalities and both capacity policies, including after heavy
deletion (§5's claim that the splitting solution enables truly dynamic
deletion).
"""

import random

import pytest

from repro.bench.harness import build_index
from repro.bench.reporting import format_table
from repro.geometry.space import DataSpace
from repro.workloads import (
    clustered,
    diagonal,
    nested_hotspot,
    skewed,
    uniform,
    zipf_grid,
)

WORKLOADS = {
    "uniform": lambda n, d: uniform(n, d, seed=1),
    "clustered": lambda n, d: clustered(n, d, seed=2),
    "skewed": lambda n, d: skewed(n, d, seed=3),
    "diagonal": lambda n, d: diagonal(n, d, seed=4),
    "zipf": lambda n, d: zipf_grid(n, d, seed=5),
    "hotspot": lambda n, d: nested_hotspot(n, d, seed=6),
}


def build_all(ndim: int, n: int = 8000):
    space = DataSpace.unit(ndim, resolution=16)
    out = {}
    for name, gen in WORKLOADS.items():
        out[name] = build_index(
            "bv", space, gen(n, ndim), data_capacity=12, fanout=12
        )
    return out


@pytest.mark.parametrize("ndim", [2, 3])
def test_occupancy_floor_all_workloads(benchmark, ndim):
    trees = benchmark.pedantic(build_all, args=(ndim,), rounds=1, iterations=1)
    rows = []
    for name, tree in trees.items():
        stats = tree.tree_stats()
        rows.append(
            [
                name,
                stats.data_pages,
                stats.min_data_occupancy,
                f"{stats.avg_data_occupancy:.2f}",
                stats.min_index_occupancy,
                f"{stats.avg_index_occupancy:.2f}",
                stats.total_guards,
            ]
        )
        assert stats.min_data_occupancy >= tree.policy.min_data_occupancy()
        assert stats.min_index_occupancy >= tree.policy.min_index_occupancy()
        assert stats.avg_data_occupancy >= 1 / 3
        tree.check(sample_points=50)
    print()
    print(format_table(
        ["workload", "data pages", "min occ", "avg fill", "min idx occ",
         "avg idx fill", "guards"],
        rows,
        title=f"E-OCC ({ndim}-d, P=F=12): measured occupancy floors",
    ))


def test_occupancy_survives_heavy_deletion(benchmark, space2):
    points = list(dict.fromkeys(uniform(10_000, 2, seed=7)))

    def grow_then_shrink():
        tree = build_index("bv", space2, points, data_capacity=12, fanout=12)
        rng = random.Random(8)
        order = points[:]
        rng.shuffle(order)
        for p in order[: len(order) * 2 // 3]:
            tree.delete(p)
        return tree

    tree = benchmark.pedantic(grow_then_shrink, rounds=1, iterations=1)
    stats = tree.tree_stats()
    print(f"\nafter deleting 2/3: min data occupancy "
          f"{stats.min_data_occupancy} (guarantee "
          f"{tree.policy.min_data_occupancy()}), deferred merges "
          f"{tree.stats.deferred_merges}, merges {tree.stats.merges}, "
          f"redistributions {tree.stats.redistributions}")
    if tree.stats.deferred_merges == 0:
        assert stats.min_data_occupancy >= tree.policy.min_data_occupancy()
    assert tree.stats.merges > 0
    tree.check(sample_points=100, check_occupancy=False)
