"""Experiment F7-2: Figure 7-2 — best vs worst case, uniform pages, F=120.

The paper's readings: a best-case height-4 tree grows to 5 in the worst
case, a height-6 tree to "between 8 and 9"; with 1 KB data pages the
latter corresponds to a ~3 PB file, and up to 200 GB the index grows by
at most one level.
"""

import pytest

from repro.analysis import capacity, figures
from repro.bench.reporting import format_table

FANOUT = 120


def test_figure_7_2_series(benchmark):
    rows = benchmark(figures.figure_series, FANOUT)
    print()
    print(format_table(
        ["h", "log_F td best", "log_F td worst", "gap", "log_F h!"],
        [
            [r.height, r.best_log_f, r.worst_log_f, r.gap, r.gap_predicted]
            for r in rows
        ],
        title=f"Figure 7-2 (F = {FANOUT}, uniform index pages)",
    ))
    # The higher fan-out narrows every gap relative to Figure 7-1.
    f24 = {r.height: r.gap for r in figures.figure_series(24)}
    for row in rows:
        if row.height >= 2:
            assert row.gap < f24[row.height]


def test_figure_7_2_height_growth(benchmark):
    growth = dict(benchmark(figures.height_growth_table, FANOUT, range(1, 7)))
    print()
    print(format_table(
        ["best-case height", "worst-case height"],
        sorted(growth.items()),
        title="Figure 7-2 reading: height needed in the worst case",
    ))
    assert growth[4] == 5        # paper: "a tree of height 4 need only grow to 5"
    assert growth[6] in (8, 9)   # paper: "a tree of height 6 ... 8 and 9"


def test_figure_7_2_file_size_annotations(benchmark):
    petabytes = benchmark(capacity.worst_case_file_size_at_height, FANOUT, 9)
    # "If the data pages are 1 Kbyte each, the latter corresponds to a
    # 3 Petabyte file" — the h=8..9 worst-case capacity brackets 3 PB.
    assert capacity.worst_case_file_size_at_height(FANOUT, 8) <= 3e15
    assert petabytes >= 3e15
    # "For more modest-sized files — up to 200 Gigabytes — the index tree
    # only has to grow by a maximum of 1 level."
    assert capacity.height_penalty_for_file(FANOUT, 200e9) <= 1
    print(f"\nworst-case h=9 capacity: {petabytes / 1e15:.1f} PB; "
          f"penalty at 200 GB: "
          f"{capacity.height_penalty_for_file(FANOUT, 200e9)} level(s)")


@pytest.mark.parametrize("heights", [range(1, 10)])
def test_render_both_figures(benchmark, heights):
    text = benchmark(
        lambda: figures.render_figure(figures.figure_series(FANOUT, heights), FANOUT)
    )
    print("\n" + text)
    assert "F = 120" in text
