"""Experiment E-RANGE: range queries — contraction vs Z-order intervals.

§1 on the linearisation workaround: "the method requires the
representation of the whole data space i.e. there is no means of
contracting the representation to a set of occupied subspaces.
Comparative studies by [KSS+90] have clearly shown this to be a very
significant factor in the efficiency of range queries."
"""

import random

from repro.bench.harness import build_index
from repro.bench.reporting import format_table
from repro.workloads import clustered


def query_boxes(rng, count, side):
    boxes = []
    for _ in range(count):
        lows = (rng.uniform(0, 1 - side), rng.uniform(0, 1 - side))
        boxes.append((lows, (lows[0] + side, lows[1] + side)))
    return boxes


def test_range_pages_bv_vs_zorder(benchmark, space2, clustered_points):
    bv = build_index("bv", space2, clustered_points)
    zb = build_index("zorder", space2, clustered_points)
    rng = random.Random(15)
    sweeps = [(side, query_boxes(rng, 30, side)) for side in (0.05, 0.1, 0.2, 0.4)]

    def run_sweep():
        rows = []
        for side, boxes in sweeps:
            bv_pages = zb_pages = found = 0
            for lows, highs in boxes:
                a = bv.range_query(lows, highs)
                b = zb.range_query(lows, highs)
                assert set(a.points()) == set(b.points())
                bv_pages += a.pages_visited
                zb_pages += b.pages_visited
                found += len(a)
            rows.append(
                (side, found, bv_pages, zb_pages, zb_pages / max(bv_pages, 1))
            )
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ["box side", "records", "BV pages", "Z-order pages", "ratio"],
        rows,
        title="E-RANGE: clustered data (occupied subspaces), 30 boxes each",
    ))
    # The shape claim: the region-contracting index touches no more
    # pages, and materially fewer on the empty-space-heavy sweeps.
    for side, found, bv_pages, zb_pages, ratio in rows:
        assert bv_pages <= zb_pages
    assert any(ratio >= 1.5 for *_, ratio in rows)


def test_empty_space_is_free_for_bv(benchmark, space2, clustered_points):
    bv = build_index("bv", space2, clustered_points)
    zb = build_index("zorder", space2, clustered_points)

    # Boxes centred on empty space between clusters.
    rng = random.Random(16)
    empties = []
    for lows, highs in query_boxes(rng, 200, 0.08):
        if len(bv.range_query(lows, highs)) == 0:
            empties.append((lows, highs))
        if len(empties) == 20:
            break

    def run_empties():
        bv_pages = sum(
            bv.range_query(lo, hi).pages_visited for lo, hi in empties
        )
        zb_pages = sum(
            zb.range_query(lo, hi).pages_visited for lo, hi in empties
        )
        return bv_pages, zb_pages

    bv_pages, zb_pages = benchmark(run_empties)
    print(f"\n{len(empties)} all-empty boxes: BV {bv_pages} pages, "
          f"Z-order {zb_pages} pages")
    if empties:
        assert bv_pages <= zb_pages
