"""Experiment E-IO (ablation): physical I/O under an LRU buffer pool.

Not a paper figure — an ablation DESIGN.md calls for: the paper's page
counts translate to physical I/O through a buffer manager, and the
BV-tree's fixed-length search paths make that translation predictable.
Upper index levels (a tiny fraction of pages, §7's ti/td ≈ 1/F) stay
resident, so steady-state physical reads per search approach one cold
data page.
"""

import random

from repro.bench.reporting import format_table
from repro.core.tree import BVTree
from repro.geometry.space import DataSpace
from repro.storage.buffer import BufferPool
from repro.storage.pager import PageStore
from repro.workloads import uniform

N = 15_000


def build(capacity):
    space = DataSpace.unit(2, resolution=18)
    pool = BufferPool(PageStore(1024), capacity=capacity)
    tree = BVTree(space, data_capacity=16, fanout=16, store=pool)
    points = list(dict.fromkeys(uniform(N, 2, seed=30)))
    for i, p in enumerate(points):
        tree.insert(p, i, replace=True)
    return tree, pool, points


def test_hit_ratio_vs_pool_size(benchmark):
    def sweep():
        rows = []
        for capacity in (8, 32, 128, 512):
            tree, pool, points = build(capacity)
            rng = random.Random(31)
            pool.stats.reset()
            pool.store.stats.reset()
            searches = 1000
            for _ in range(searches):
                tree.get(rng.choice(points))
            rows.append(
                (
                    capacity,
                    tree.height + 1,
                    f"{pool.stats.hit_ratio:.3f}",
                    pool.store.stats.reads / searches,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ["pool pages", "logical reads/search", "hit ratio",
         "physical reads/search"],
        rows,
        title=f"E-IO: {N} uniform points, random exact-match searches",
    ))
    physical = [row[3] for row in rows]
    assert physical == sorted(physical, reverse=True)
    # With a pool a fraction of the data size, most of each search is
    # absorbed: physical cost well under the logical height+1.
    assert physical[-1] < rows[-1][1] / 2


def test_index_residency(benchmark):
    tree, pool, points = build(capacity=256)
    rng = random.Random(32)
    # Warm up, then measure.
    for _ in range(500):
        tree.get(rng.choice(points))
    pool.stats.reset()
    pool.store.stats.reset()

    def run():
        for _ in range(500):
            tree.get(rng.choice(points))
        return pool.store.stats.reads / 500

    physical_per_search = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = tree.tree_stats()
    print(f"\nsteady state: {physical_per_search:.2f} physical reads per "
          f"search (index nodes: {stats.index_nodes}, data pages: "
          f"{stats.data_pages}) — the index layer is resident")
    assert physical_per_search < 1.5
