"""Experiment E-LSD: first-partition splitting vs occupancy control.

§1 on the LSD tree and the Buddy tree: splitting a directory page "by
the first partition in the binary splitting sequence ... is achieved at
the price of abandoning all control over the occupancy of the resulting
split index pages", making average occupancy and tree height
unpredictable.  The BV-tree's balanced splits keep a floor.
"""

from repro.bench.harness import build_index, index_occupancies
from repro.bench.reporting import format_table
from repro.workloads import skewed, uniform


def build_pair(space, points):
    lsd = build_index("lsd", space, points, data_capacity=8, fanout=8)
    bv = build_index("bv", space, points, data_capacity=8, fanout=8)
    return lsd, bv


def summarise(name, index):
    data, idx = index_occupancies(index)
    return [
        name,
        index.height,
        len(idx),
        min(idx) if idx else "-",
        f"{sum(idx) / len(idx):.2f}" if idx else "-",
        min(data),
        f"{sum(data) / len(data):.2f}",
    ]


def test_directory_occupancy_skew(benchmark, space2):
    points = list(skewed(15_000, 2, exponent=5.0, seed=13))
    lsd, bv = benchmark.pedantic(
        build_pair, args=(space2, points), rounds=1, iterations=1
    )
    print()
    print(format_table(
        ["structure", "height", "index nodes", "min idx occ", "avg idx occ",
         "min data occ", "avg data occ"],
        [summarise("LSD-style", lsd), summarise("BV-tree", bv)],
        title="E-LSD: skewed workload (P=F=8)",
    ))
    _, lsd_idx = index_occupancies(lsd)
    bv_stats = bv.tree_stats()
    # The first-partition splitter abandons occupancy control: its
    # directory fill collapses below the BV-tree's on the same data...
    lsd_fill = sum(lsd_idx) / (len(lsd_idx) * lsd.fanout)
    assert lsd_fill < bv_stats.avg_index_occupancy
    assert min(lsd_idx) <= bv_stats.min_index_occupancy
    # ...the BV-tree holds its floor.
    assert bv_stats.min_index_occupancy >= bv.policy.min_index_occupancy()
    # And the skew costs structure: never fewer pages than the BV-tree.
    assert len(lsd_idx) >= bv_stats.index_nodes


def test_height_predictability(benchmark, space2):
    # Under benign uniform data the two behave similarly; under skew the
    # LSD-style height runs away while the BV-tree's stays put.
    def build_four():
        u = list(uniform(15_000, 2, seed=14))
        s = list(skewed(15_000, 2, exponent=5.0, seed=14))
        return {
            ("lsd", "uniform"): build_index("lsd", space2, u, data_capacity=8, fanout=8),
            ("lsd", "skewed"): build_index("lsd", space2, s, data_capacity=8, fanout=8),
            ("bv", "uniform"): build_index("bv", space2, u, data_capacity=8, fanout=8),
            ("bv", "skewed"): build_index("bv", space2, s, data_capacity=8, fanout=8),
        }

    trees = benchmark.pedantic(build_four, rounds=1, iterations=1)
    print()
    print(format_table(
        ["structure", "workload", "height"],
        [[k[0], k[1], t.height] for k, t in sorted(trees.items())],
        title="E-LSD: height predictability",
    ))
    lsd_delta = trees[("lsd", "skewed")].height - trees[("lsd", "uniform")].height
    bv_delta = trees[("bv", "skewed")].height - trees[("bv", "uniform")].height
    assert bv_delta <= 1
    assert lsd_delta >= bv_delta
