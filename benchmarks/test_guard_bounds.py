"""Experiment E-GRD: the §2 worst-case guard model, measured.

"in the extreme case, a tree node at height x could contain (x-1)
entries of promoted guards for each unpromoted (level x) entry" — the
bound behind the §7.2 analysis.  Verified per node on promotion-heavy
workloads, along with the guard-set bound of §3 (at index level x a
search carries at most x-1 guards).
"""

import random

from repro.bench.harness import build_index
from repro.bench.reporting import format_table
from repro.workloads import nested_hotspot, promotion_storm


def guard_profile(tree):
    """Per-index-level (nodes, natives, guards, bound violations)."""
    profile: dict[int, list[int]] = {}
    stack = [tree.root_entry()]
    violations = 0
    while stack:
        entry = stack.pop()
        if entry.level == 0:
            continue
        node = tree.store.read(entry.page)
        row = profile.setdefault(node.index_level, [0, 0, 0])
        row[0] += 1
        row[1] += node.native_count()
        row[2] += node.guard_count()
        limit = node.native_count() * max(node.index_level - 1, 0)
        if node.guard_count() > limit:
            violations += 1
        stack.extend(node.entries)
    return profile, violations


def test_per_node_guard_bound(benchmark, space2):
    points = list(promotion_storm(12_000, 2, seed=26))
    points += list(nested_hotspot(6000, 2, seed=27))

    def build():
        return build_index("bv", space2, points, data_capacity=6, fanout=6)

    tree = benchmark.pedantic(build, rounds=1, iterations=1)
    profile, violations = guard_profile(tree)
    print()
    print(format_table(
        ["index level", "nodes", "natives", "guards", "(x-1)·natives bound"],
        [
            [level, n, natives, guards, natives * (level - 1)]
            for level, (n, natives, guards) in sorted(profile.items())
        ],
        title="E-GRD: guard counts vs the §2 worst-case model",
    ))
    assert violations == 0
    assert sum(g for _, _, g in profile.values()) > 0  # guards did occur
    tree.check(sample_points=50)


def test_guard_set_bound_during_search(benchmark, space2):
    points = list(promotion_storm(12_000, 2, seed=26))
    tree = build_index("bv", space2, points, data_capacity=6, fanout=6)
    rng = random.Random(28)
    probes = [(rng.random(), rng.random()) for _ in range(400)]

    def search_all():
        return max(tree.search(p).max_guard_set for p in probes)

    peak = benchmark(search_all)
    print(f"\npeak guard-set size over {len(probes)} searches: {peak} "
          f"(§3 bound: height-1 = {tree.height - 1})")
    assert peak <= max(tree.height - 1, 0)
