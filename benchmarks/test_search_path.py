"""Experiment E-PATH: logarithmic access — every search costs height+1.

"The length of every exact-match search path from root to leaf of the
index tree is therefore always equal to the height of the partition
hierarchy" (§6), and the height itself is logarithmic in N.
"""

import math
import random

from repro.bench.harness import build_index, search_cost
from repro.bench.reporting import format_table
from repro.geometry.space import DataSpace
from repro.workloads import uniform


def test_every_search_costs_height_plus_one(benchmark, bv_uniform, uniform_points):
    tree = bv_uniform
    probes = random.Random(1).sample(uniform_points, 500)

    def search_all():
        return [tree.search(p) for p in probes]

    results = benchmark(search_all)
    costs = {r.nodes_visited for r in results}
    assert costs == {tree.height + 1}
    guard_peak = max(r.max_guard_set for r in results)
    assert guard_peak <= max(tree.height - 1, 0)
    print(f"\n{len(probes)} searches, all {tree.height + 1} pages; "
          f"largest guard set {guard_peak} (bound: height-1 = "
          f"{tree.height - 1})")


def test_height_grows_logarithmically(benchmark):
    space = DataSpace.unit(2, resolution=20)
    sizes = [500, 2000, 8000, 32_000]

    def build_series():
        rows = []
        for n in sizes:
            tree = build_index(
                "bv", space, uniform(n, 2, seed=9), data_capacity=16, fanout=16
            )
            stats = tree.tree_stats()
            bound = math.ceil(
                math.log(max(stats.data_pages, 2))
                / math.log(tree.policy.fanout / 3)
            )
            rows.append((n, stats.data_pages, tree.height, bound))
        return rows

    rows = benchmark.pedantic(build_series, rounds=1, iterations=1)
    print()
    print(format_table(
        ["N", "data pages", "height", "log_{F/3}(pages) bound"],
        rows,
        title="E-PATH: height vs data size (P=F=16)",
    ))
    for n, pages, height, bound in rows:
        assert height <= bound
    heights = [h for _, _, h, _ in rows]
    assert heights == sorted(heights)
    assert heights[-1] <= heights[0] + 3  # 64x data, +3 levels at most


def test_update_cost_bounded(benchmark, space2):
    # A single insertion touches the search path plus at most one split
    # per level — never a cascade (contrast E-CASC).
    tree = build_index(
        "bv", space2, uniform(5000, 2, seed=10), data_capacity=8, fanout=8
    )
    rng = random.Random(11)
    before = tree.store.stats.snapshot()

    def insert_batch():
        for _ in range(200):
            tree.insert((rng.random(), rng.random()), None, replace=True)

    benchmark.pedantic(insert_batch, rounds=1, iterations=1)
    delta = tree.store.stats.delta(before)
    per_op = (delta.reads + delta.writes) / max(
        1, tree.count and 200
    )
    print(f"\nmean page accesses per insertion: {per_op:.1f} "
          f"(height {tree.height})")
    # Room for owner descents and occasional splits, but no blow-up.
    assert per_op < 12 * (tree.height + 1)
