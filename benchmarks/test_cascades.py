"""Experiment E-CASC: cascade splitting — K-D-B and BANG vs BV-tree.

Figures 1-1/1-2 (K-D-B) and 1-3 (BANG with a balanced directory): their
directory splits force splits below, so the cost of one insertion is
unbounded and grows with the tree.  The BV-tree's promotion removes the
mechanism entirely — there is no forced-split operation to count.
"""

from repro.bench.harness import build_index
from repro.bench.reporting import format_table
from repro.workloads import clustered

SIZES = [2000, 8000, 20_000]


def build_sweep(space):
    rows = []
    for n in SIZES:
        points = list(clustered(n, 2, clusters=6, spread=0.02, seed=12))
        kdb = build_index("kdb", space, points, data_capacity=8, fanout=8)
        bang = build_index("bang", space, points, data_capacity=8, fanout=8)
        bv = build_index("bv", space, points, data_capacity=8, fanout=8)
        rows.append((n, kdb, bang, bv))
    return rows


def test_forced_splits_grow_with_n(benchmark, space2):
    rows = benchmark.pedantic(build_sweep, args=(space2,), rounds=1, iterations=1)
    table = []
    for n, kdb, bang, bv in rows:
        table.append(
            [
                n,
                kdb.stats.forced_splits,
                kdb.stats.max_cascade,
                bang.stats.forced_splits,
                bang.stats.max_cascade,
                bv.stats.promotions,
                0,
            ]
        )
    print()
    print(format_table(
        ["N", "K-D-B forced", "K-D-B worst insert", "BANG forced",
         "BANG worst insert", "BV promotions", "BV forced"],
        table,
        title="E-CASC: forced splits (clustered workload, P=F=8)",
    ))
    kdb_forced = [row[1] for row in table]
    bang_forced = [row[3] for row in table]
    # The pathologies are real and grow with data size...
    assert kdb_forced[-1] > kdb_forced[0] > 0
    assert bang_forced[-1] > bang_forced[0] > 0
    # ...while the BV-tree replaces them with bounded promotions: a
    # promotion moves ONE entry up, a cascade splits whole subtrees.
    for n, kdb, bang, bv in rows:
        assert kdb.stats.max_cascade >= 2
        bv.check(sample_points=30)


def test_worst_single_insertion(benchmark, space2):
    # The worst single insertion: the BV-tree's is O(height); the K-D-B
    # tree's grows with the subtree the split plane cuts.
    points = list(clustered(20_000, 2, clusters=6, spread=0.02, seed=12))

    def build():
        return build_index("kdb", space2, points, data_capacity=8, fanout=8)

    kdb = benchmark.pedantic(build, rounds=1, iterations=1)
    print(f"\nworst K-D-B insertion forced {kdb.stats.max_cascade} page "
          f"splits; a BV-tree insertion splits at most height+1 = "
          f"pages ({kdb.height + 1} here), once each")
    assert kdb.stats.max_cascade > kdb.height
