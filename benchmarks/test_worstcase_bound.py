"""Experiment E-WCB: measured heights never exceed the §7 worst case.

The analysis predicts, for a tree with fan-out F holding d data pages, a
best-case height ``ceil(log_F d)`` and a worst-case height from the
binomial recursion.  Every empirically built tree must land between the
two bounds — the "fully predictable and controllable worst-case
characteristics" of the abstract.
"""

from repro.analysis import worstcase as wc
from repro.bench.harness import build_index
from repro.bench.reporting import format_table
from repro.geometry.space import DataSpace
from repro.workloads import (
    clustered,
    diagonal,
    nested_hotspot,
    promotion_storm,
    uniform,
)

WORKLOADS = {
    "uniform": lambda n: uniform(n, 2, seed=21),
    "clustered": lambda n: clustered(n, 2, seed=22),
    "diagonal": lambda n: diagonal(n, 2, seed=23),
    "hotspot": lambda n: nested_hotspot(n, 2, seed=24),
    "storm": lambda n: promotion_storm(n, 2, seed=25),
}


def build_all(fanout):
    space = DataSpace.unit(2, resolution=18)
    out = {}
    for name, gen in WORKLOADS.items():
        out[name] = build_index(
            "bv",
            space,
            gen(12_000),
            data_capacity=fanout,
            fanout=fanout,
            policy="uniform",
        )
    return out


def test_heights_within_analytic_bounds(benchmark):
    fanout = 12
    trees = benchmark.pedantic(build_all, args=(fanout,), rounds=1, iterations=1)
    rows = []
    for name, tree in trees.items():
        pages = tree.tree_stats().data_pages
        best = wc.best_case_height(fanout, pages)
        worst = wc.worst_case_height(fanout, pages)
        rows.append([name, pages, best, tree.height, worst])
        assert best <= tree.height <= worst, name
    print()
    print(format_table(
        ["workload", "data pages", "best-case h", "measured h", "worst-case h"],
        rows,
        title=f"E-WCB: measured heights vs §7 bounds (uniform policy, F={fanout})",
    ))


def test_scaled_policy_tracks_best_case(benchmark):
    # §7.3: with level-scaled pages the worst case costs no extra height.
    fanout = 12
    space = DataSpace.unit(2, resolution=18)

    def build_scaled():
        return {
            name: build_index(
                "bv", space, gen(12_000), data_capacity=fanout,
                fanout=fanout, policy="scaled",
            )
            for name, gen in WORKLOADS.items()
        }

    trees = benchmark.pedantic(build_scaled, rounds=1, iterations=1)
    for name, tree in trees.items():
        pages = tree.tree_stats().data_pages
        best = wc.best_case_height(fanout, pages)
        assert tree.height <= best + 1, name
