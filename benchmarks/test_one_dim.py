"""Experiment E-1D: degeneration to the B-tree in one dimension.

§2: "it must maintain the characteristics of the B-tree in n dimensions,
and it must degenerate to a balanced tree in the one-dimensional case."
The BV-tree and a B+-tree are loaded with identical 1-d keys; heights,
search costs and occupancy floors must match B-tree behaviour.
"""

import random

from repro.baselines.btree import BPlusTree
from repro.bench.reporting import format_table
from repro.core.tree import BVTree
from repro.geometry.space import DataSpace
from repro.workloads import sequential_1d


def build_pair(n, order, seed=17):
    space = DataSpace.unit(1, resolution=24)
    bv = BVTree(space, data_capacity=16, fanout=16)
    bt = BPlusTree(leaf_capacity=16, fanout=16)
    points = [p for p in sequential_1d(n)]
    if order == "random":
        random.Random(seed).shuffle(points)
    for i, p in enumerate(points):
        bv.insert(p, i, replace=True)
        bt.insert(p[0], i, replace=True)
    return bv, bt


def test_one_dimensional_degeneration(benchmark):
    def build_all():
        return {
            (n, order): build_pair(n, order)
            for n in (2000, 16_000)
            for order in ("sequential", "random")
        }

    pairs = benchmark.pedantic(build_all, rounds=1, iterations=1)
    rows = []
    for (n, order), (bv, bt) in sorted(pairs.items()):
        bv_stats = bv.tree_stats()
        leaves, _ = bt.node_occupancies()
        rows.append(
            [
                n,
                order,
                bv.height,
                bt.height,
                bv.search((0.5,)).nodes_visited,
                bt.search_cost(0.5),
                bv_stats.min_data_occupancy,
                min(leaves),
                bv_stats.total_guards,
            ]
        )
    print()
    print(format_table(
        ["N", "order", "BV height", "B+ height", "BV search", "B+ search",
         "BV min occ", "B+ min occ", "BV guards"],
        rows,
        title="E-1D: identical 1-d keys in both structures (P=F=16)",
    ))
    for (n, order), (bv, bt) in pairs.items():
        # Same logarithmic class: within one level of each other.
        assert abs(bv.height - bt.height) <= 1
        # Both cost height+1 pages per search.
        assert bv.search((0.25,)).nodes_visited == bv.height + 1
        assert bt.search_cost(0.25) == bt.height + 1
        # Both keep their occupancy floors (1/3 vs 1/2).
        assert bv.tree_stats().min_data_occupancy >= bv.policy.min_data_occupancy()
        bv.check(sample_points=50)


def test_one_dim_mixed_updates(benchmark):
    # Fully dynamic in 1-d too: grow, shrink, stay consistent.
    def churn():
        space = DataSpace.unit(1, resolution=24)
        bv = BVTree(space, data_capacity=8, fanout=8)
        rng = random.Random(18)
        live = {}
        for step in range(6000):
            if live and rng.random() < 0.45:
                key = rng.choice(list(live))
                bv.delete((key,))
                del live[key]
            else:
                # Quantise to the space's resolution so the model dict
                # and the index agree on key identity.
                key = int(rng.random() * 2**24) / 2**24
                bv.insert((key,), step, replace=True)
                live[key] = step
        return bv, live

    bv, live = benchmark.pedantic(churn, rounds=1, iterations=1)
    assert len(bv) == len(live)
    bv.check(sample_points=100, check_occupancy=False)
    print(f"\n1-d churn: {len(bv)} live records, height {bv.height}, "
          f"merges {bv.stats.merges}, deferred {bv.stats.deferred_merges}")
