"""Shared fixtures for the benchmark suite.

Each module in this directory regenerates one table or figure of the
paper (see DESIGN.md's experiment index).  Run with::

    pytest benchmarks/ --benchmark-only -s

``-s`` shows the reproduced rows/series next to the timing table; the
assertions encode the *shape* of each claim (who wins, by roughly what
factor, where crossovers fall), so the suite is meaningful even without
reading the output.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import build_index
from repro.geometry.space import DataSpace
from repro.workloads import clustered, uniform


@pytest.fixture(scope="session")
def space2() -> DataSpace:
    """The unit square at 18-bit resolution."""
    return DataSpace.unit(2, resolution=18)


@pytest.fixture(scope="session")
def uniform_points() -> list[tuple[float, ...]]:
    """20k uniform 2-d points."""
    return list(uniform(20_000, 2, seed=1))


@pytest.fixture(scope="session")
def clustered_points() -> list[tuple[float, ...]]:
    """20k clustered 2-d points (occupied-subspace workload)."""
    return list(clustered(20_000, 2, clusters=8, spread=0.02, seed=2))


@pytest.fixture(scope="session")
def bv_uniform(space2, uniform_points):
    """A BV-tree loaded with the uniform workload (P=F=16)."""
    return build_index("bv", space2, uniform_points)


@pytest.fixture(scope="session")
def bv_clustered(space2, clustered_points):
    """A BV-tree loaded with the clustered workload (P=F=16)."""
    return build_index("bv", space2, clustered_points)
