"""Experiment F7-1: Figure 7-1 — best vs worst case, uniform pages, F=24.

Regenerates the per-height series ``log_F td(h)`` for the best case and
the worst case, and checks the paper's readings of the chart: a
best-case height-3 tree grows to 4 in the worst case, height 4 to 6,
height 5 to 9–10 (the binomial closed form gives 9; the paper reads 10
off the log-scale chart — see EXPERIMENTS.md).
"""

import math

from repro.analysis import figures
from repro.bench.reporting import format_table

FANOUT = 24


def series():
    return figures.figure_series(FANOUT)


def test_figure_7_1_series(benchmark):
    rows = benchmark(series)
    print()
    print(format_table(
        ["h", "log_F td best", "log_F td worst", "gap", "log_F h!"],
        [
            [r.height, r.best_log_f, r.worst_log_f, r.gap, r.gap_predicted]
            for r in rows
        ],
        title=f"Figure 7-1 (F = {FANOUT}, uniform index pages)",
    ))
    # Shape: the gap is log_F(h!) (within the F >> h approximation) and
    # widens monotonically with height.
    for row in rows:
        assert row.gap == (
            __import__("pytest").approx(row.gap_predicted, rel=0.2, abs=1e-9)
        )
    gaps = [r.gap for r in rows]
    assert gaps == sorted(gaps)


def test_figure_7_1_height_growth(benchmark):
    table = benchmark(figures.height_growth_table, FANOUT, range(1, 6))
    growth = dict(table)
    print()
    print(format_table(
        ["best-case height", "worst-case height"],
        sorted(growth.items()),
        title="Figure 7-1 reading: height needed in the worst case",
    ))
    assert growth[3] == 4   # paper: "3 ... grow to height 4"
    assert growth[4] == 6   # paper: "4 ... grow to height 6"
    assert growth[5] in (9, 10)  # paper reads 10; closed form gives 9


def test_figure_7_1_capacity_loss(benchmark):
    losses = benchmark(
        lambda: [
            (h, math.factorial(h))
            for h in range(1, 10)
        ]
    )
    from repro.analysis import worstcase

    for h, factorial in losses:
        measured = worstcase.capacity_loss_factor(FANOUT, h)
        # For F = 24 and h up to 9 the loss tracks h! within a factor ~4
        # (the approximation degrades as h approaches F).
        assert measured <= factorial
        assert measured >= factorial / 6
