"""Experiment T7-B: §7.3 multiple page sizes — equations (10)–(18).

The claim: index pages of size B·x at level x restore best-case data
capacity in the worst case (equation 12 vs 1), keep the index:data ratio
at 1/F (equation 15), and cost almost nothing in total index size
(equations 16–18).  Verified analytically and then *empirically*: two
BV-trees built from the same adversarial workload under the two
policies.
"""

import pytest

from repro.analysis import multipage as mp
from repro.analysis import worstcase as wc
from repro.bench.harness import build_index
from repro.bench.reporting import format_table
from repro.geometry.space import DataSpace
from repro.workloads import promotion_storm

FANOUT = 120


def analytic_rows():
    return [
        (
            h,
            wc.best_case_data_nodes(FANOUT, h),
            wc.worst_case_data_nodes(FANOUT, h),
            mp.worst_case_data_nodes(FANOUT, h),
            mp.worst_case_index_bytes(FANOUT, h, 1024),
            mp.worst_case_index_bytes_approx(FANOUT, h, 1024),
        )
        for h in range(1, 8)
    ]


def test_scaled_pages_restore_best_case(benchmark):
    rows = benchmark(analytic_rows)
    print()
    print(format_table(
        ["h", "best td", "uniform worst td", "scaled worst td",
         "scaled si(h) bytes", "B·F^(h-1)"],
        rows,
        title=f"§7.3 (F = {FANOUT}): equations (12) and (16)-(18)",
    ))
    for h, best, uniform_worst, scaled_worst, si_exact, si_approx in rows:
        assert scaled_worst >= best          # capacity fully restored
        assert scaled_worst >= uniform_worst
        if h >= 2:
            assert si_exact == pytest.approx(si_approx, rel=0.1)


def test_overhead_negligible(benchmark):
    overheads = benchmark(
        lambda: [(h, mp.scaled_page_overhead(FANOUT, h, 1024)) for h in range(2, 8)]
    )
    for h, overhead in overheads:
        assert overhead < 2.5 / FANOUT  # a couple of pages' worth, not more


def test_empirical_policies_agree_on_structure(benchmark, space2):
    # Same adversarial (promotion-heavy) workload under both policies:
    # both must keep every invariant; the scaled policy never splits a
    # node because of its guards, so it can only have fewer index nodes.
    points = list(promotion_storm(6000, 2, seed=5))

    def build_both():
        uniform_tree = build_index(
            "bv", space2, points, data_capacity=8, fanout=8, policy="uniform"
        )
        scaled_tree = build_index(
            "bv", space2, points, data_capacity=8, fanout=8, policy="scaled"
        )
        return uniform_tree, scaled_tree

    uniform_tree, scaled_tree = benchmark.pedantic(
        build_both, rounds=1, iterations=1
    )
    uniform_tree.check(sample_points=50)
    scaled_tree.check(sample_points=50)
    u, s = uniform_tree.tree_stats(), scaled_tree.tree_stats()
    print()
    print(format_table(
        ["policy", "height", "data pages", "index nodes", "guards",
         "index bytes"],
        [
            ["uniform", uniform_tree.height, u.data_pages, u.index_nodes,
             u.total_guards, u.index_bytes],
            ["scaled", scaled_tree.height, s.data_pages, s.index_nodes,
             s.total_guards, s.index_bytes],
        ],
        title="empirical: promotion-storm workload under both §7 policies",
    ))
    assert scaled_tree.height <= uniform_tree.height
    assert s.index_nodes <= u.index_nodes
    # Equation (18): the scaled policy's byte overhead stays small.
    if s.index_nodes:
        assert s.index_bytes <= u.index_bytes * 3
