"""Experiment T7-A: equations (1)–(9) — recursions vs closed forms.

Checks, for a sweep of fan-outs, that the exact recursive definitions of
§7.1/§7.2 equal their closed forms, and that the index:data ratio is
~1/F in the best *and* the worst case — the paper's conclusion from
equations (3) and (9).
"""

import pytest

from repro.analysis import worstcase as wc
from repro.bench.reporting import format_table

FANOUTS = [24, 60, 120, 400]
HEIGHTS = range(1, 9)


def full_sweep():
    rows = []
    for fanout in FANOUTS:
        for h in HEIGHTS:
            rows.append(
                (
                    fanout,
                    h,
                    wc.best_case_data_nodes(fanout, h),
                    wc.worst_case_data_nodes(fanout, h),
                    wc.worst_case_data_nodes_recursive(fanout, h),
                    wc.best_case_ratio(fanout, h),
                    wc.worst_case_ratio(fanout, h),
                )
            )
    return rows


def test_recursions_match_closed_forms(benchmark):
    rows = benchmark(full_sweep)
    for fanout, h, best, worst, worst_rec, r_best, r_worst in rows:
        assert worst_rec == pytest.approx(worst, rel=1e-12)
        assert best >= worst  # promotion only ever costs capacity


def test_ratio_constant_across_configurations(benchmark):
    rows = benchmark(full_sweep)
    print()
    sample = [r for r in rows if r[1] == 5]
    print(format_table(
        ["F", "h", "ti/td best", "ti/td worst", "1/F"],
        [[f, h, rb, rw, 1 / f] for f, h, _, _, _, rb, rw in sample],
        title="Equations (3)/(9): index:data ratio ≈ 1/F in both cases",
    ))
    for fanout, h, _, _, _, r_best, r_worst in rows:
        if h >= 2:
            assert r_best == pytest.approx(1 / fanout, rel=0.15)
            assert r_worst == pytest.approx(1 / fanout, rel=0.15)


def test_integer_constraint_f60_exact(benchmark):
    # "the smallest fan-out ratio which will yield a tree with the
    # largest possible data capacity for a tree of height 5 in the worst
    # case is 60."
    def exactness():
        return [
            (
                fanout,
                wc.worst_case_data_nodes_integer(fanout, 5),
                wc.worst_case_data_nodes(fanout, 5),
            )
            for fanout in (24, 48, 60, 120)
        ]

    rows = benchmark(exactness)
    by_fanout = {f: (integer, closed) for f, integer, closed in rows}
    assert by_fanout[60][0] == by_fanout[60][1]
    assert by_fanout[120][0] == by_fanout[120][1]
    assert by_fanout[24][0] < by_fanout[24][1]
    assert by_fanout[48][0] < by_fanout[48][1]
