"""Experiment E-ABL (ablation): fan-out and capacity trade-offs.

DESIGN.md's design-choice ablations:

1. **Fan-out vs worst-case gap** — §7's message that a higher F narrows
   the best/worst gap, observed on built trees under a promotion-heavy
   workload (the empirical analogue of Figure 7-1 vs 7-2).
2. **Split balance target** — the balanced split's measured floor across
   capacities, confirming the [LS89] third across the parameter range.
"""

from repro.analysis import worstcase as wc
from repro.bench.harness import build_index
from repro.bench.reporting import format_table
from repro.geometry.space import DataSpace
from repro.workloads import promotion_storm, uniform

N = 10_000


def test_fanout_narrows_worst_case_gap(benchmark):
    space = DataSpace.unit(2, resolution=18)
    points = list(promotion_storm(N, 2, seed=33))

    def sweep():
        rows = []
        for fanout in (6, 12, 24, 48):
            tree = build_index(
                "bv", space, points,
                data_capacity=fanout, fanout=fanout, policy="uniform",
            )
            stats = tree.tree_stats()
            best = wc.best_case_height(fanout, stats.data_pages)
            worst = wc.worst_case_height(fanout, stats.data_pages)
            guards_per_node = stats.total_guards / max(stats.index_nodes, 1)
            rows.append(
                (fanout, stats.data_pages, best, tree.height, worst,
                 f"{guards_per_node:.2f}")
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ["F", "data pages", "best-case h", "measured h", "worst-case h",
         "guards/node"],
        rows,
        title="E-ABL: fan-out vs height gap (promotion storm, uniform pages)",
    ))
    for fanout, pages, best, measured, worst, _ in rows:
        assert best <= measured <= worst
    # The analytic gap shrinks with F; measured heights sit near best.
    gaps = [worst - best for _, _, best, _, worst, _ in rows]
    assert gaps[-1] <= gaps[0]


def test_occupancy_floor_across_capacities(benchmark):
    space = DataSpace.unit(2, resolution=18)
    points = list(uniform(N, 2, seed=34))

    def sweep():
        rows = []
        for capacity in (4, 8, 16, 32, 64):
            tree = build_index(
                "bv", space, points, data_capacity=capacity, fanout=capacity
            )
            stats = tree.tree_stats()
            rows.append(
                (
                    capacity,
                    tree.policy.min_data_occupancy(),
                    stats.min_data_occupancy,
                    f"{stats.min_data_occupancy / capacity:.2f}",
                    f"{stats.avg_data_occupancy:.2f}",
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ["P = F", "guaranteed min", "measured min", "measured min fill",
         "avg fill"],
        rows,
        title="E-ABL: the 1/3 floor across page capacities",
    ))
    for capacity, guaranteed, measured, *_ in rows:
        assert measured >= guaranteed
    # Larger pages converge to the exact third from above.
    big = rows[-1]
    assert float(big[3]) >= 0.28
