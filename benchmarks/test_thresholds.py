"""Experiment T7-C: §7.2/§7.3 file-size thresholds, 1 KB data pages.

"For a BV-tree with uniform index page size, a fan-out ratio of 24 and a
data page size of 1 KByte, the height of the index tree will increase by
not more than two levels in the worst case ... up to a data set size of
order 100 MBytes.  For a fan-out ratio of 120, this size increases to
order 25 TBytes."
"""

from repro.analysis import capacity
from repro.bench.reporting import format_table

SIZES = [1e6, 1e7, 1e8, 1e9, 1e10, 1e11, 1e12, 25e12, 1e14]


def penalty_table():
    return [
        (
            f"{size:.0e}",
            capacity.height_penalty_for_file(24, size),
            capacity.height_penalty_for_file(120, size),
        )
        for size in SIZES
    ]


def test_penalty_by_file_size(benchmark):
    rows = benchmark(penalty_table)
    print()
    print(format_table(
        ["file size (bytes)", "extra levels F=24", "extra levels F=120"],
        rows,
        title="worst-case height penalty, 1 KB data pages",
    ))
    by_size = {row[0]: row for row in rows}
    assert by_size["1e+08"][1] <= 2    # F=24: ≤2 up to ~100 MB
    assert capacity.height_penalty_for_file(120, 25e12) <= 2
    assert capacity.height_penalty_for_file(120, 200e9) <= 1


def test_exact_thresholds(benchmark):
    def thresholds():
        return {
            ("F=24", 2): capacity.max_file_size_with_penalty(24, 2),
            ("F=120", 1): capacity.max_file_size_with_penalty(120, 1),
            ("F=120", 2): capacity.max_file_size_with_penalty(120, 2),
        }

    result = benchmark(thresholds)
    print()
    print(format_table(
        ["fan-out", "penalty bound", "exact threshold"],
        [
            [k[0], k[1], f"{v / 1e9:,.1f} GB"]
            for k, v in result.items()
        ],
        title="exact thresholds (the paper's figures are conservative)",
    ))
    # The paper's quoted sizes must lie inside the exact thresholds.
    assert result[("F=24", 2)] >= 100e6
    assert result[("F=120", 1)] >= 200e9
    assert result[("F=120", 2)] >= 25e12
