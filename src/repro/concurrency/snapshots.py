"""Immutable point-in-time views of a served tree.

A :class:`TreeVersion` is one published committed state: a frozen page
table (page id -> cloned payload) plus the tree metadata that changes
under writes (root page, height, record count) and the version's place
in the committed write history (``lsn``).  Versions are never mutated
after publication — the service builds a *new* table for every commit
and swaps one reference — so pinning a version is just holding it, and
a reader never observes a half-applied split cascade by construction.

A :class:`Snapshot` wraps a version with everything the core read paths
need.  It deliberately duck-types the :class:`~repro.core.BVTree`
surface those paths consume (``space``, ``layout``, ``height``,
``root_page``, ``store``, ``tracer``, ``root_entry()``), so exact-match
descent, range queries and k-NN run *unchanged* against a snapshot —
same code, same page-access counts, frozen data.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Sequence

from repro.concurrency.clone import clone_page
from repro.core.columnar import locate_columnar
from repro.core.descent import Locate, locate
from repro.core.entry import Entry
from repro.core.node import DataPage, IndexNode
from repro.core.policy import CapacityPolicy
from repro.core import query as _query
from repro.core.knn import KNNResult, nearest_neighbours
from repro.errors import KeyNotFoundError, PageNotFoundError, StorageError
from repro.geometry.rect import Rect
from repro.geometry.region import ROOT_KEY
from repro.geometry.space import DataSpace
from repro.obs.tracer import Tracer

__all__ = ["Snapshot", "TreeVersion", "VersionStore"]


class TreeVersion:
    """One committed state of a served tree (frozen after publication)."""

    __slots__ = ("pages", "root_page", "height", "count", "lsn", "wal_seq")

    def __init__(
        self,
        pages: dict[int, Any],
        root_page: int,
        height: int,
        count: int,
        lsn: int,
        wal_seq: int | None = None,
    ):
        #: page id -> cloned payload.  Treated as immutable from here on.
        self.pages = pages
        self.root_page = root_page
        self.height = height
        self.count = count
        #: Number of commits published before and including this one —
        #: the position in the committed write history this version
        #: corresponds to (the linearizability tests key on it).
        self.lsn = lsn
        #: The durable store's WAL sequence at publication, when the
        #: served tree is WAL-backed (``None`` for in-memory stores).
        self.wal_seq = wal_seq

    def __repr__(self) -> str:
        return (
            f"TreeVersion(lsn={self.lsn}, {self.count} points, "
            f"height={self.height}, {len(self.pages)} pages)"
        )


class VersionStore:
    """Read-only ``Storage`` facade over one version's page table.

    Only the read surface exists; every mutator raises.  ``read`` counts
    logical reads per *store instance* — each snapshot owns its own
    ``VersionStore``, so per-query page-access numbers stay exact without
    any shared mutable state between readers (the per-snapshot strategy
    for the read-path counter races; see ``docs/SERVING.md``).
    """

    __slots__ = ("_pages", "tracer", "reads")

    def __init__(self, pages: Mapping[int, Any]):
        self._pages = pages
        #: Disabled tracer: snapshot reads are never traced (the tracer
        #: protocol is part of the store surface the read paths consult).
        self.tracer = Tracer()
        self.reads = 0

    def read(self, page_id: int) -> Any:
        try:
            content = self._pages[page_id]
        except KeyError:
            raise PageNotFoundError(
                f"page {page_id} not in this snapshot"
            ) from None
        self.reads += 1
        return content

    def peek(self, page_id: int) -> Any:
        try:
            return self._pages[page_id]
        except KeyError:
            raise PageNotFoundError(
                f"page {page_id} not in this snapshot"
            ) from None

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    # -- mutators: snapshots are frozen ---------------------------------

    def allocate(self, content: Any = None, size_class: int = 0) -> int:
        raise StorageError("snapshot stores are read-only")

    def write(self, page_id: int, content: Any) -> None:
        raise StorageError("snapshot stores are read-only")

    def free(self, page_id: int) -> None:
        raise StorageError("snapshot stores are read-only")


class Snapshot:
    """A pinned, consistent, read-only view of a served tree.

    Obtained from :meth:`repro.concurrency.TreeService.snapshot`; cheap
    (no copying — versions are published pre-cloned) and wait-free (no
    lock is taken).  The snapshot stays valid for as long as the object
    is referenced, entirely independent of later writes, crashes or
    store poisoning.

    A snapshot is safe to *share* across reader threads for queries —
    everything reachable is frozen — but its convenience page counter
    (``store.reads``) is per-instance and approximate under sharing;
    open one snapshot per reader when exact per-reader counts matter.
    """

    __slots__ = ("version", "space", "policy", "layout", "store", "tracer")

    def __init__(
        self,
        version: TreeVersion,
        space: DataSpace,
        policy: CapacityPolicy,
        layout: str,
    ):
        self.version = version
        self.space = space
        self.policy = policy
        self.layout = layout
        self.store = VersionStore(version.pages)
        self.tracer = Tracer()

    # -- tree duck type (what the core read paths consume) --------------

    @property
    def height(self) -> int:
        return self.version.height

    @property
    def root_page(self) -> int:
        return self.version.root_page

    @property
    def count(self) -> int:
        return self.version.count

    @property
    def lsn(self) -> int:
        return self.version.lsn

    def root_entry(self) -> Entry:
        """The virtual entry for the root (the whole data space)."""
        return Entry(ROOT_KEY, self.height, self.root_page)

    # -- reads ----------------------------------------------------------

    def get(self, point: Sequence[float]) -> Any:
        """The value stored at ``point`` in this version."""
        path = self.space.point_path(point)
        if self.layout == "columnar" and self.height > 0:
            entry = locate_columnar(self, path)[0]
        else:
            entry = locate(self, path).entry
        page: DataPage = self.store.read(entry.page)
        record = page.get(path)
        if record is None:
            raise KeyNotFoundError(f"no record at {tuple(point)}")
        return record[1]

    def contains(self, point: Sequence[float]) -> bool:
        """True if a record exists at ``point`` in this version."""
        try:
            self.get(point)
        except KeyNotFoundError:
            return False
        return True

    def search(self, point: Sequence[float]) -> Locate:
        """Exact-match descent diagnostics against this version."""
        return locate(self, self.space.point_path(point))

    def range_query(
        self, lows: Sequence[float], highs: Sequence[float]
    ) -> "_query.QueryResult":
        """All records in the half-open box ``[lows, highs)``."""
        return _query.range_query(self, Rect(lows, highs))

    def partial_match(
        self, constraints: dict[int, float]
    ) -> "_query.QueryResult":
        """Records matching exact values on a subset of dimensions."""
        return _query.partial_match(self, constraints)

    def nearest(self, point: Sequence[float], k: int = 1) -> KNNResult:
        """The ``k`` records nearest to ``point`` in this version."""
        return nearest_neighbours(self, point, k=k)

    def items(self) -> Iterator[tuple[tuple[float, ...], Any]]:
        """Iterate all (point, value) records (unspecified order)."""
        stack = [self.root_entry()]
        while stack:
            entry = stack.pop()
            if entry.level == 0:
                page: DataPage = self.store.peek(entry.page)
                yield from page.records.values()
            else:
                node: IndexNode = self.store.peek(entry.page)
                stack.extend(node.entries)

    def __len__(self) -> int:
        return self.version.count

    def __contains__(self, point: Sequence[float]) -> bool:
        return self.contains(point)

    # -- validation -----------------------------------------------------

    def materialize(self) -> Any:
        """Rebuild a standalone :class:`~repro.core.BVTree` of this version.

        Clones every page into a fresh in-memory store (page ids are
        remapped; the logical structure — keys, levels, guards, record
        placement — is preserved exactly), rebuilding the per-level key
        registry along the way.  The result is a fully independent tree
        the structural checker and the guarantee doctor can run against,
        which is how the lockstep suite proves a snapshot can never
        expose a torn split cascade or guard-set inconsistency.
        """
        from repro.core.tree import BVTree
        from repro.storage.pager import ColumnarStore, PageStore

        policy = self.policy
        store_cls = ColumnarStore if self.layout == "columnar" else PageStore
        tree = BVTree(
            self.space,
            data_capacity=policy.data_capacity,
            fanout=policy.fanout,
            policy=policy.kind,
            page_bytes=policy.page_bytes,
            store=store_cls(policy.page_bytes),
            layout=self.layout,
        )
        tree.store.free(tree.root_page)
        pages = self.version.pages

        def copy(page_id: int) -> int:
            content = clone_page(pages[page_id])
            if isinstance(content, IndexNode):
                for entry in content.entries:
                    entry.page = copy(entry.page)
                    tree.register_entry(entry)
                return tree.alloc_index_node(content)
            return tree.alloc_data_page(content)

        tree.root_page = copy(self.root_page)
        tree.height = self.height
        tree.count = self.count
        return tree

    def __repr__(self) -> str:
        return f"Snapshot(lsn={self.lsn}, {self.count} points)"
