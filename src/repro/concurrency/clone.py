"""Commit-time page cloning for the snapshot layer.

Pages are live Python objects mutated in place by the tree algorithms
(``page = store.read(pid); page.insert(...); store.write(pid, page)``
writes back the *same* object), so a concurrent reader cannot simply
pin a page-table reference — it would watch the writer's mutations
happen under it.  Instead the service publishes deep-enough copies: a
clone shares only immutable values (``RegionKey``, coordinate tuples,
record values) with the live page, never a mutable container.

Cloning cost is bounded by page capacity: a data page is one dict (or
three columns) copy, an index node one entry-list rebuild.  Only pages
dirtied by the committing operation are cloned (see
:meth:`repro.concurrency.TreeService` — the page table itself is copied
as a dict of shared clone references, not re-cloned).
"""

from __future__ import annotations

from typing import Any

from repro.core.columnar import ColumnarDataPage, ColumnarIndexNode
from repro.core.entry import Entry
from repro.core.node import DataPage, IndexNode
from repro.errors import ReproError

__all__ = ["clone_entry", "clone_page"]


def clone_entry(entry: Entry) -> Entry:
    """A fresh :class:`Entry` with the same key, level and page id.

    Entries are tiny mutable triples; sharing them between a committed
    version and the live tree would let an in-place relink (e.g. a
    split rewriting ``entry.page``) leak into a published snapshot.
    The ``RegionKey`` itself is immutable and stays shared.
    """
    return Entry(entry.key, entry.level, entry.page)


def clone_page(content: Any) -> Any:
    """Deep-enough copy of one page payload (data page or index node).

    Handles all four page classes of both layouts.  Subclass checks run
    most-specific first: a ``ColumnarDataPage`` *is a* ``DataPage`` (its
    ``records`` is a materialised read-only view, not the storage), so
    order matters.
    """
    if isinstance(content, ColumnarDataPage):
        # The column containers are columnar.py's invariant to copy.
        return content.clone()
    if isinstance(content, ColumnarIndexNode):
        return ColumnarIndexNode(
            content.index_level,
            [clone_entry(e) for e in content.entries],
            ndim=content.ndim,
            resolution=content.resolution,
            path_bits=content.path_bits,
        )
    if isinstance(content, IndexNode):
        return IndexNode(
            content.index_level, [clone_entry(e) for e in content.entries]
        )
    if isinstance(content, DataPage):
        page = DataPage()
        page.records.update(content.records)
        return page
    raise ReproError(
        f"cannot clone page payload of type {type(content).__name__}"
    )
