"""Lockstep / linearizability harness for the concurrency layer.

The correctness claim the serving layer makes is narrow and checkable:
with a single writer, the committed write history is a total order, so
**every read must equal the single-threaded oracle's state after
exactly ``lsn`` commits** — the LSN its snapshot pinned.  Un-pinned
reads must match *some* prefix between the history positions observed
before and after the call.  This module provides:

- :class:`Oracle` — a brute-force single-threaded model (dict of
  records keyed by bit path) that stores the state after every commit;
- :func:`run_schedule` — deterministic schedule-replay mode: one thread
  interleaves writer and reader steps from an explicit (JSON-friendly)
  schedule and validates every read in place;
- :func:`run_threads` — free-running mode: one writer thread races
  reader threads, observations are validated post-hoc against the
  oracle history;
- :func:`load_schedule` / :func:`dump_schedule` — the repro-file
  round-trip used by ``tests/concurrency/repros/``.

Schedules are lists of JSON dict steps::

    {"actor": "writer", "op": {"op": "insert", "point": [..], "value": v,
                               "replace": false}}
    {"actor": "writer", "batch": [op, ...]}     # all-or-nothing
    {"actor": "writer", "group": [op, ...]}     # group commit
    {"actor": "reader", "queries": [{"kind": "get", "point": [..]},
                                    {"kind": "range", "lows": [..],
                                     "highs": [..]},
                                    {"kind": "knn", "point": [..], "k": 2}]}
    {"actor": "reader", "verify": "structure"}  # materialize + check/doctor

Hypothesis's shrinker works directly on this representation, so a
falsified property serializes to a replayable repro file.
"""

from __future__ import annotations

import json
import math
import threading
from pathlib import Path
from typing import Any, Sequence

from repro.concurrency.service import BatchAbortedError, TreeService
from repro.concurrency.snapshots import Snapshot
from repro.core.tree import BVTree
from repro.errors import DuplicateKeyError, KeyNotFoundError, ReproError
from repro.geometry.space import DataSpace
from repro.storage.pager import ColumnarStore, PageStore

__all__ = [
    "LockstepError",
    "Oracle",
    "build_service",
    "dump_schedule",
    "load_schedule",
    "run_schedule",
    "run_threads",
    "verify_snapshot",
    "verify_structure",
]

Step = dict[str, Any]


class LockstepError(AssertionError):
    """A read diverged from the oracle (the harness's failure signal)."""


class Oracle:
    """Single-threaded model of the committed write history.

    ``state_at(k)`` is the record set after exactly ``k`` commits —
    index 0 is the pre-history state the service was built from.  Points
    are keyed by their bit path at the space's resolution, replicating
    the index's duplicate semantics exactly.
    """

    def __init__(
        self,
        space: DataSpace,
        initial: Sequence[tuple[Sequence[float], Any]] = (),
    ):
        self.space = space
        state = {
            space.point_path(point): (tuple(point), value)
            for point, value in initial
        }
        self._history: list[dict[int, tuple[tuple[float, ...], Any]]] = [state]

    @property
    def lsn(self) -> int:
        """Number of commits the oracle has modelled."""
        return len(self._history) - 1

    def state_at(self, lsn: int) -> dict[int, tuple[tuple[float, ...], Any]]:
        """The record set after exactly ``lsn`` commits."""
        return self._history[lsn]

    def current(self) -> dict[int, tuple[tuple[float, ...], Any]]:
        return self._history[-1]

    def has(self, point: Sequence[float]) -> bool:
        return self.space.point_path(point) in self.current()

    def commit(self, ops: Sequence[dict[str, Any]]) -> None:
        """Model one commit (an op, a group, or an all-or-nothing batch)."""
        state = dict(self.current())
        for op in ops:
            path = self.space.point_path(op["point"])
            if op["op"] == "insert":
                state[path] = (tuple(op["point"]), op.get("value"))
            elif op["op"] == "delete":
                del state[path]
            else:
                raise ReproError(f"oracle op must be insert/delete: {op!r}")
        self._history.append(state)

    # -- brute-force query answers --------------------------------------

    def brute_get(self, lsn: int, point: Sequence[float]) -> tuple[bool, Any]:
        record = self.state_at(lsn).get(self.space.point_path(point))
        if record is None:
            return False, None
        return True, record[1]

    def brute_range(
        self, lsn: int, lows: Sequence[float], highs: Sequence[float]
    ) -> set[tuple[tuple[float, ...], Any]]:
        out = set()
        for point, value in self.state_at(lsn).values():
            if all(lo <= c < hi for c, lo, hi in zip(point, lows, highs)):
                out.add((point, value))
        return out

    def brute_knn_distances(
        self, lsn: int, point: Sequence[float], k: int
    ) -> list[float]:
        """The k smallest Euclidean distances (ties kept, sorted)."""
        distances = sorted(
            math.dist(point, p) for p, _ in self.state_at(lsn).values()
        )
        return distances[:k]


# ----------------------------------------------------------------------
# Snapshot validation
# ----------------------------------------------------------------------


def verify_snapshot(
    snapshot: Snapshot,
    oracle: Oracle,
    queries: Sequence[dict[str, Any]] = (),
) -> None:
    """Assert a snapshot equals the oracle's state at the snapshot's LSN.

    Checks the full record set, the count, and each requested query.
    Raises :class:`LockstepError` with a diff on divergence.
    """
    lsn = snapshot.lsn
    expected = oracle.state_at(lsn)
    observed = {
        snapshot.space.point_path(point): (tuple(point), value)
        for point, value in snapshot.items()
    }
    if observed != expected:
        missing = sorted(expected.keys() - observed.keys())[:5]
        extra = sorted(observed.keys() - expected.keys())[:5]
        raise LockstepError(
            f"snapshot at lsn={lsn} diverges from oracle prefix: "
            f"{len(observed)} records vs {len(expected)} expected "
            f"(missing paths {missing}, extra paths {extra})"
        )
    if len(snapshot) != len(expected):
        raise LockstepError(
            f"snapshot count {len(snapshot)} != oracle {len(expected)} "
            f"at lsn={lsn}"
        )
    for query in queries:
        _verify_query(snapshot, oracle, lsn, query)


def _verify_query(
    snapshot: Snapshot, oracle: Oracle, lsn: int, query: dict[str, Any]
) -> None:
    kind = query["kind"]
    if kind == "get":
        point = query["point"]
        found, expected_value = oracle.brute_get(lsn, point)
        try:
            value = snapshot.get(point)
        except KeyNotFoundError:
            if found:
                raise LockstepError(
                    f"get({point}) missing at lsn={lsn}; oracle has "
                    f"{expected_value!r}"
                ) from None
            return
        if not found or value != expected_value:
            raise LockstepError(
                f"get({point}) = {value!r} at lsn={lsn}; oracle says "
                f"{'absent' if not found else repr(expected_value)}"
            )
    elif kind == "range":
        lows, highs = query["lows"], query["highs"]
        result = snapshot.range_query(lows, highs)
        observed = {(tuple(p), v) for p, v in result.records}
        expected = oracle.brute_range(lsn, lows, highs)
        if observed != expected:
            raise LockstepError(
                f"range({lows}, {highs}) returned {len(observed)} records "
                f"at lsn={lsn}, oracle expects {len(expected)}"
            )
    elif kind == "knn":
        point, k = query["point"], query.get("k", 1)
        result = snapshot.nearest(point, k=k)
        observed = [n.distance for n in result.neighbours]
        expected = oracle.brute_knn_distances(lsn, point, k)
        if len(observed) != len(expected) or any(
            not math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12)
            for a, b in zip(observed, expected)
        ):
            raise LockstepError(
                f"knn({point}, k={k}) distances {observed} at lsn={lsn}; "
                f"oracle expects {expected}"
            )
    else:
        raise ReproError(f"unknown query kind {kind!r}")


def verify_structure(snapshot: Snapshot) -> None:
    """Materialize a snapshot and run the checker plus the doctor on it.

    This is the torn-cascade / guard-set-inconsistency detector: a
    published version must always be a structurally valid tree, exactly
    as if the writer had stopped at that commit.  Occupancy and
    justification are relaxed as for any tree without operation history
    (snapshot loads and crash recovery check the same way).
    """
    from repro.obs.report import run_doctor

    tree = snapshot.materialize()
    tree.check(check_occupancy=False, check_justification=False)
    result = run_doctor(tree, workload="snapshot")
    if result.exit_code != 0:
        raise LockstepError(
            f"doctor exit {result.exit_code} on snapshot at "
            f"lsn={snapshot.lsn}: {result.health.to_dict()}"
        )


# ----------------------------------------------------------------------
# Deterministic schedule replay
# ----------------------------------------------------------------------


def build_service(
    layout: str = "object",
    *,
    space: DataSpace | None = None,
    data_capacity: int = 4,
    fanout: int = 4,
    tree: BVTree | None = None,
) -> tuple[TreeService, Oracle]:
    """A small service + oracle pair for lockstep runs.

    Tiny capacities by default so schedules of tens of ops exercise
    multi-level splits, promotion and merges.  Pass ``tree`` to run
    against an existing (e.g. durable or buffered) tree instead.
    """
    if tree is None:
        if space is None:
            space = DataSpace.unit(2, resolution=8)
        store = (
            ColumnarStore() if layout == "columnar" else PageStore()
        )
        tree = BVTree(
            space,
            data_capacity=data_capacity,
            fanout=fanout,
            store=store,
            layout=layout,
        )
    service = TreeService(tree)
    oracle = Oracle(tree.space, initial=list(service.snapshot().items()))
    return service, oracle


def run_schedule(
    schedule: Sequence[Step],
    *,
    service: TreeService | None = None,
    oracle: Oracle | None = None,
    layout: str = "object",
) -> TreeService:
    """Replay one interleaved schedule deterministically, validating reads.

    Writer steps drive the service and keep the oracle in lockstep
    (including expected failures: a duplicate insert must fail on both
    sides and must not publish).  Reader steps pin a snapshot and verify
    it against the oracle prefix at its LSN.  Returns the service so
    callers can keep asserting (or reuse it across schedules).
    """
    if service is None or oracle is None:
        service, oracle = build_service(layout)
    for step in schedule:
        actor = step.get("actor")
        if actor == "writer":
            _writer_step(service, oracle, step)
        elif actor == "reader":
            snapshot = service.snapshot()
            if snapshot.lsn != oracle.lsn:
                raise LockstepError(
                    f"deterministic schedule out of sync: snapshot "
                    f"lsn={snapshot.lsn}, oracle lsn={oracle.lsn}"
                )
            verify_snapshot(snapshot, oracle, step.get("queries", ()))
            if step.get("verify") == "structure":
                verify_structure(snapshot)
        else:
            raise ReproError(f"schedule step needs an actor: {step!r}")
    return service


def _writer_step(service: TreeService, oracle: Oracle, step: Step) -> None:
    if "op" in step:
        op = step["op"]
        lsn_before = service.lsn
        if op["op"] == "insert":
            replace = bool(op.get("replace", False))
            duplicate = oracle.has(op["point"]) and not replace
            try:
                service.insert(op["point"], op.get("value"), replace=replace)
            except DuplicateKeyError:
                if not duplicate:
                    raise LockstepError(
                        f"unexpected duplicate for {op!r}"
                    ) from None
                if service.lsn != lsn_before:
                    raise LockstepError(
                        "failed insert published a version"
                    ) from None
                return
            if duplicate:
                raise LockstepError(f"insert {op!r} should have failed")
            oracle.commit([op])
        elif op["op"] == "delete":
            present = oracle.has(op["point"])
            try:
                service.delete(op["point"])
            except KeyNotFoundError:
                if present:
                    raise LockstepError(
                        f"delete {op!r} missed a present record"
                    ) from None
                if service.lsn != lsn_before:
                    raise LockstepError(
                        "failed delete published a version"
                    ) from None
                return
            if not present:
                raise LockstepError(f"delete {op!r} should have missed")
            oracle.commit([op])
        else:
            raise ReproError(f"unknown writer op {op!r}")
    elif "batch" in step:
        ops = step["batch"]
        lsn_before = service.lsn
        try:
            service.apply_batch([_wire(op) for op in ops])
        except BatchAbortedError:
            if service.lsn != lsn_before:
                raise LockstepError(
                    "aborted batch published a version"
                ) from None
            return
        oracle.commit(ops)
    elif "group" in step:
        ops = step["group"]
        outcomes, _ = service.apply_ops([_wire(op) for op in ops])
        committed = [op for op, (ok, _) in zip(ops, outcomes) if ok]
        if committed:
            oracle.commit(committed)
    else:
        raise ReproError(f"writer step needs op/batch/group: {step!r}")


def _wire(op: dict[str, Any]) -> tuple:
    if op["op"] == "insert":
        return (
            "insert",
            tuple(op["point"]),
            op.get("value"),
            bool(op.get("replace", False)),
        )
    if op["op"] == "delete":
        return ("delete", tuple(op["point"]))
    raise ReproError(f"unknown wire op {op!r}")


# ----------------------------------------------------------------------
# Free-running threaded mode
# ----------------------------------------------------------------------


def run_threads(
    service: TreeService,
    ops: Sequence[dict[str, Any]],
    *,
    readers: int = 4,
    probe_points: Sequence[Sequence[float]] = (),
) -> None:
    """Race one writer thread against snapshot readers, then validate.

    The writer applies ``ops`` in order, recording each committed
    ``(lsn, op)``.  Readers continuously pin snapshots and record
    ``(lsn, full record set, spot-get observations)``.  After joining,
    the committed log rebuilds an oracle and every observation is
    checked against the prefix its LSN names — the single-writer
    linearizability condition.  Reader exceptions (there must be none)
    are re-raised.
    """
    initial = list(service.snapshot().items())
    base_lsn = service.lsn
    committed: list[tuple[int, dict[str, Any]]] = []
    done = threading.Event()
    observations: list[
        tuple[int, frozenset[tuple[tuple[float, ...], Any]]]
    ] = []
    spot_reads: list[tuple[int, tuple[float, ...], bool, Any]] = []
    failures: list[BaseException] = []
    obs_lock = threading.Lock()

    def writer() -> None:
        try:
            for op in ops:
                try:
                    if op["op"] == "insert":
                        lsn = service.insert(
                            op["point"],
                            op.get("value"),
                            replace=bool(op.get("replace", False)),
                        )
                    else:
                        _, lsn = service.delete(op["point"])
                except (DuplicateKeyError, KeyNotFoundError):
                    continue
                committed.append((lsn, op))
        except BaseException as exc:  # pragma: no cover - surfaced below
            failures.append(exc)
        finally:
            done.set()

    def reader() -> None:
        try:
            while True:
                finished = done.is_set()
                snapshot = service.snapshot()
                records = frozenset(
                    (tuple(p), v) for p, v in snapshot.items()
                )
                spots = []
                for point in probe_points:
                    try:
                        spots.append(
                            (snapshot.lsn, tuple(point), True,
                             snapshot.get(point))
                        )
                    except KeyNotFoundError:
                        spots.append(
                            (snapshot.lsn, tuple(point), False, None)
                        )
                with obs_lock:
                    observations.append((snapshot.lsn, records))
                    spot_reads.extend(spots)
                if finished:
                    return
        except BaseException as exc:
            failures.append(exc)

    threads = [threading.Thread(target=writer)]
    threads.extend(threading.Thread(target=reader) for _ in range(readers))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise failures[0]

    # Rebuild the oracle from the committed log and validate post-hoc.
    oracle = Oracle(service.tree.space, initial=initial)
    for lsn, op in committed:
        if lsn != base_lsn + oracle.lsn + 1:
            raise LockstepError(
                f"committed log has a gap: op published lsn={lsn}, "
                f"expected {base_lsn + oracle.lsn + 1}"
            )
        oracle.commit([op])
    top = base_lsn + oracle.lsn
    for lsn, records in observations:
        if not base_lsn <= lsn <= top:
            raise LockstepError(
                f"observed lsn={lsn} outside committed history "
                f"[{base_lsn}, {top}]"
            )
        expected = frozenset(oracle.state_at(lsn - base_lsn).values())
        if records != expected:
            raise LockstepError(
                f"threaded snapshot at lsn={lsn} diverges: "
                f"{len(records)} records vs {len(expected)} expected"
            )
    for lsn, point, found, value in spot_reads:
        expected_found, expected_value = oracle.brute_get(
            lsn - base_lsn, point
        )
        if found != expected_found or (found and value != expected_value):
            raise LockstepError(
                f"spot get({point}) at lsn={lsn} saw "
                f"{(found, value)}, oracle says "
                f"{(expected_found, expected_value)}"
            )


# ----------------------------------------------------------------------
# Repro files
# ----------------------------------------------------------------------


def dump_schedule(schedule: Sequence[Step], path: Path | str) -> Path:
    """Write a schedule as a JSON repro file (one replayable artifact)."""
    target = Path(path)
    target.write_text(json.dumps(list(schedule), indent=2) + "\n")
    return target


def load_schedule(path: Path | str) -> list[Step]:
    """Read a schedule repro file written by :func:`dump_schedule`."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, list):
        raise ReproError(f"schedule file {path} must hold a JSON list")
    return data
