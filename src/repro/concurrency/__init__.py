"""Single-writer / many-readers concurrency over the ``Storage`` protocol.

The layers above the core tree (WAL, profiler, doctor, server) all
assume *someone* arbitrates concurrent access; this package is that
someone.  :class:`TreeService` serializes writes and publishes immutable
:class:`~repro.concurrency.snapshots.TreeVersion` objects; readers pin
versions wait-free via :meth:`TreeService.snapshot` and run the ordinary
core read paths against them.  :mod:`repro.concurrency.lockstep` is the
harness that proves the construction linearizable for the single-writer
case (see ``docs/SERVING.md`` and ``tests/concurrency/``).

The core tree itself stays single-threaded and free of concurrency
primitives — lint rule R15 bans ``threading``/``asyncio`` from
``repro.core``; concurrency lives here, at the storage/server boundary,
per the same discipline that keeps backends out of the core (R3).
"""

from repro.concurrency.clone import clone_entry, clone_page
from repro.concurrency.lockstep import (
    LockstepError,
    Oracle,
    build_service,
    dump_schedule,
    load_schedule,
    run_schedule,
    run_threads,
    verify_snapshot,
    verify_structure,
)
from repro.concurrency.service import (
    BatchAbortedError,
    RecordingStore,
    TreeService,
    delete_op,
    insert_op,
)
from repro.concurrency.snapshots import Snapshot, TreeVersion, VersionStore

__all__ = [
    "BatchAbortedError",
    "LockstepError",
    "Oracle",
    "RecordingStore",
    "Snapshot",
    "TreeService",
    "TreeVersion",
    "VersionStore",
    "build_service",
    "clone_entry",
    "clone_page",
    "delete_op",
    "dump_schedule",
    "insert_op",
    "load_schedule",
    "run_schedule",
    "run_threads",
    "verify_snapshot",
    "verify_structure",
]
