"""Single-writer / many-readers serving facade over one BV-tree.

Concurrency model (documented in full in ``docs/SERVING.md``):

- **One writer.**  All mutations are serialized under an internal lock.
  The tree and its store are only ever touched by whichever thread
  holds it, so the core algorithms stay single-threaded and free of
  concurrency primitives (lint rule R15 enforces that).
- **Shadow-committed versions.**  The live store is wrapped in a
  :class:`RecordingStore` that tracks which pages each operation
  touches.  After a successful operation (or group), the service clones
  exactly the dirty pages and publishes a fresh immutable
  :class:`~repro.concurrency.snapshots.TreeVersion` — a *new* page
  table dict sharing every clean page's clone with the previous
  version — by swapping one reference.
- **Wait-free readers.**  Opening a snapshot grabs the current version
  reference; no lock, no copy, no registration.  A snapshot stays
  consistent forever (it is unreachable garbage once dropped), so a
  reader can never observe a half-applied split cascade: intermediate
  states are simply never published.

The LSN published with each version counts committed operations (an
all-or-nothing batch or a group commit counts as one publication), which
is exactly the "prefix of the committed write history" the lockstep
suite checks reads against.  For WAL-backed stores the version also
carries the store's ``wal_seq`` so durability tests can correlate
published versions with WAL transactions.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterator, Sequence

from repro.concurrency.clone import clone_page
from repro.concurrency.snapshots import Snapshot, TreeVersion
from repro.core.knn import KNNResult
from repro.core.query import QueryResult
from repro.core.tree import BVTree
from repro.errors import KeyNotFoundError, ReproError, StorageError
from repro.obs.tracer import Tracer
from repro.storage.interface import Storage
from repro.storage.stats import SizeClassStats

__all__ = [
    "BatchAbortedError",
    "RecordingStore",
    "TreeService",
    "WriteOp",
    "insert_op",
    "delete_op",
]

#: One write operation in wire form: ``("insert", point, value, replace)``
#: or ``("delete", point)``.  Tuples (not closures) so schedules and
#: server payloads serialize to JSON and replay deterministically.
WriteOp = tuple


def insert_op(
    point: Sequence[float], value: Any = None, replace: bool = False
) -> WriteOp:
    """An insert in wire form."""
    return ("insert", tuple(point), value, replace)


def delete_op(point: Sequence[float]) -> WriteOp:
    """A delete in wire form."""
    return ("delete", tuple(point))


class BatchAbortedError(ReproError):
    """An all-or-nothing batch failed and was rolled back.

    ``index`` is the position of the failing operation; ``cause`` the
    underlying error.  Nothing was published: readers never saw any of
    the batch's effects, and the live tree was restored.
    """

    def __init__(self, index: int, cause: BaseException):
        super().__init__(
            f"batch aborted at operation {index}: {cause}"
        )
        self.index = index
        self.cause = cause


class RecordingStore:
    """A ``Storage`` decorator that records which pages writes touch.

    Pure passthrough for reads; ``allocate``/``write``/``free`` mark the
    page id dirty.  The service drains the dirty set at publication time
    to clone exactly the pages the committed operation changed.  Layered
    *above* a durable store, so the WAL still sees every mutation.
    """

    __slots__ = ("inner", "dirty")

    def __init__(self, inner: Storage):
        self.inner = inner
        self.dirty: set[int] = set()

    def drain(self) -> set[int]:
        """The dirty set since the last drain (and reset it)."""
        dirty = self.dirty
        self.dirty = set()
        return dirty

    # -- passthrough surface -------------------------------------------

    @property
    def tracer(self) -> Tracer:
        return self.inner.tracer

    @tracer.setter
    def tracer(self, tracer: Tracer) -> None:
        self.inner.tracer = tracer

    @property
    def page_bytes(self) -> int:
        return self.inner.page_bytes

    @property
    def layout(self) -> str:
        return getattr(self.inner, "layout", "object")

    def allocate(self, content: Any = None, size_class: int = 0) -> int:
        page_id = self.inner.allocate(content, size_class=size_class)
        self.dirty.add(page_id)
        return page_id

    def read(self, page_id: int) -> Any:
        return self.inner.read(page_id)

    def peek(self, page_id: int) -> Any:
        return self.inner.peek(page_id)

    def write(self, page_id: int, content: Any) -> None:
        self.dirty.add(page_id)
        self.inner.write(page_id, content)

    def free(self, page_id: int) -> None:
        self.dirty.add(page_id)
        self.inner.free(page_id)

    def register_size_class(self, size_class: int, page_bytes: int) -> None:
        self.inner.register_size_class(size_class, page_bytes)

    def size_class_of(self, page_id: int) -> int:
        return self.inner.size_class_of(page_id)

    def page_ids(self) -> Iterator[int]:
        return self.inner.page_ids()

    def live_pages(self, size_class: int | None = None) -> int:
        return self.inner.live_pages(size_class)

    def live_bytes(self) -> int:
        return self.inner.live_bytes()

    def class_stats(self) -> dict[int, SizeClassStats]:
        return self.inner.class_stats()

    def __contains__(self, page_id: int) -> bool:
        return page_id in self.inner


class TreeService:
    """Concurrent serving facade: one writer, wait-free snapshot readers.

    Wraps an existing :class:`~repro.core.BVTree` (in-memory or
    WAL-backed).  The tree must not be mutated behind the service's back
    afterwards — all writes go through the service, which is what makes
    the published versions a faithful committed history.

    Thread safety: every public write method takes the internal writer
    lock; :meth:`snapshot` and the read conveniences never block.
    """

    def __init__(self, tree: BVTree):
        self._tree = tree
        self._recorder = RecordingStore(tree.store)
        tree.store = self._recorder
        self._lock = threading.RLock()
        self._poison: BaseException | None = None
        self._commits = 0
        pages = {
            pid: clone_page(self._recorder.peek(pid))
            for pid in self._recorder.page_ids()
        }
        self._version = TreeVersion(
            pages,
            tree.root_page,
            tree.height,
            tree.count,
            lsn=0,
            wal_seq=getattr(self._recorder.inner, "wal_seq", None),
        )

    # -- introspection --------------------------------------------------

    @property
    def tree(self) -> BVTree:
        """The live tree (writer-side; hold the service's lock to touch it)."""
        return self._tree

    @property
    def lsn(self) -> int:
        """Number of published commits so far."""
        return self._version.lsn

    @property
    def poisoned(self) -> bool:
        """True once a torn write or storage failure disabled the writer."""
        return self._poison is not None

    def stats(self) -> dict[str, Any]:
        """A JSON-friendly summary of the service's state."""
        version = self._version
        return {
            "lsn": version.lsn,
            "wal_seq": version.wal_seq,
            "records": version.count,
            "height": version.height,
            "committed_pages": len(version.pages),
            "commits": self._commits,
            "poisoned": self.poisoned,
        }

    # -- snapshots and reads --------------------------------------------

    def snapshot(self) -> Snapshot:
        """Pin the current committed version (O(1), wait-free).

        The returned snapshot is consistent forever; it is released by
        garbage collection when the last reference is dropped.
        """
        version = self._version
        tree = self._tree
        return Snapshot(version, tree.space, tree.policy, tree.layout)

    def get(self, point: Sequence[float]) -> Any:
        """Read ``point`` against the current committed version."""
        return self.snapshot().get(point)

    def contains(self, point: Sequence[float]) -> bool:
        """Membership against the current committed version."""
        return self.snapshot().contains(point)

    def range_query(
        self, lows: Sequence[float], highs: Sequence[float]
    ) -> QueryResult:
        """Range query against the current committed version."""
        return self.snapshot().range_query(lows, highs)

    def nearest(self, point: Sequence[float], k: int = 1) -> KNNResult:
        """k-NN against the current committed version."""
        return self.snapshot().nearest(point, k=k)

    def __len__(self) -> int:
        return self._version.count

    # -- writes ---------------------------------------------------------

    def insert(
        self, point: Sequence[float], value: Any = None, replace: bool = False
    ) -> int:
        """Insert one record; returns the LSN that made it visible."""
        with self._lock:
            self._check_writable()
            self._run(lambda: self._tree.insert(point, value, replace=replace))
            return self._publish()

    def delete(self, point: Sequence[float]) -> tuple[Any, int]:
        """Delete one record; returns ``(old value, publishing LSN)``."""
        with self._lock:
            self._check_writable()
            value = self._run(lambda: self._tree.delete(point))
            return value, self._publish()

    def bulk_load(
        self,
        records: Sequence[tuple[Sequence[float], Any]],
        replace: bool = False,
    ) -> tuple[int, int]:
        """Bulk-build the (empty) tree; returns ``(loaded, LSN)``."""
        with self._lock:
            self._check_writable()
            loaded = self._run(
                lambda: self._tree.bulk_load(records, replace=replace)
            )
            return loaded, self._publish()

    def apply_ops(
        self, ops: Sequence[WriteOp]
    ) -> tuple[list[tuple[bool, Any]], int]:
        """Group commit: independent ops, one lock hold, one publication.

        Each op succeeds or fails on its own (a failed op reports its
        exception in the outcome list; the others proceed) — these are
        *independent requests* coalesced for throughput, not a
        transaction.  All successful effects become visible atomically
        at the returned LSN.  Per-op outcome: ``(True, result)`` or
        ``(False, exception)``.
        """
        with self._lock:
            self._check_writable()
            outcomes: list[tuple[bool, Any]] = []
            mutated = False
            for op in ops:
                try:
                    outcomes.append((True, self._apply_one(op)))
                    mutated = True
                except ReproError as exc:
                    if self._poison is not None:
                        raise
                    outcomes.append((False, exc))
            lsn = self._publish() if mutated else self._version.lsn
            return outcomes, lsn

    def apply_batch(self, ops: Sequence[WriteOp]) -> int:
        """All-or-nothing batch: apply every op or none of them.

        On failure the already-applied prefix is rolled back through an
        undo log (deletes re-insert the old value, inserts are deleted
        or restore the value they replaced), nothing is published, and
        :class:`BatchAbortedError` carries the failing index.  Readers
        can never observe a partially applied batch either way: effects
        only become visible at the single publication on success.
        """
        with self._lock:
            self._check_writable()
            undo: list[WriteOp] = []
            for index, op in enumerate(ops):
                try:
                    undo_op = self._apply_logged(op)
                except ReproError as exc:
                    if self._poison is not None:
                        raise
                    self._rollback(undo)
                    raise BatchAbortedError(index, exc) from exc
                undo.append(undo_op)
            return self._publish()

    def checkpoint(self) -> Any:
        """Checkpoint a WAL-backed store (no-op result for in-memory)."""
        with self._lock:
            self._check_writable()
            inner = self._recorder.inner
            checkpoint = getattr(inner, "checkpoint", None)
            if checkpoint is None:
                return None
            return self._run(checkpoint)

    def detach(self) -> BVTree:
        """Unwrap the recording store and hand the tree back (test aid)."""
        with self._lock:
            self._tree.store = self._recorder.inner
            return self._tree

    # -- internals ------------------------------------------------------

    def _check_writable(self) -> None:
        if self._poison is not None:
            raise StorageError(
                f"service writer disabled by earlier failure: {self._poison!r}"
            )

    def _run(self, fn: Callable[[], Any]) -> Any:
        """Run one mutation; poison the writer if it tore page state.

        A validation error raised before any page was touched (duplicate
        key, missing key, bad geometry) leaves the tree intact and the
        dirty set empty: it simply propagates and the writer stays live.
        An exception *after* pages were dirtied (an injected crash, a
        storage fault mid-cascade) means the live tree may be torn, so
        the writer is disabled — readers keep the last committed version
        and recovery takes over (see the crash-under-concurrency tests).
        """
        before = len(self._recorder.dirty)
        try:
            return fn()
        except BaseException as exc:
            if len(self._recorder.dirty) != before or isinstance(
                exc, StorageError
            ):
                self._poison = exc
            raise

    def _apply_one(self, op: WriteOp) -> Any:
        verb = op[0]
        if verb == "insert":
            _, point, value, replace = op
            return self._run(
                lambda: self._tree.insert(point, value, replace=replace)
            )
        if verb == "delete":
            return self._run(lambda: self._tree.delete(op[1]))
        raise ReproError(f"write op must be insert/delete, got {verb!r}")

    def _apply_logged(self, op: WriteOp) -> WriteOp:
        """Apply one op and return its inverse for the undo log."""
        verb = op[0]
        if verb == "insert":
            _, point, value, replace = op
            previous: tuple[Any, ...] | None = None
            if replace:
                try:
                    previous = (self.snapshot_free_get(point),)
                except KeyNotFoundError:
                    previous = None
            self._run(
                lambda: self._tree.insert(point, value, replace=replace)
            )
            if previous is None:
                return ("delete", point)
            return ("insert", point, previous[0], True)
        if verb == "delete":
            value = self._run(lambda: self._tree.delete(op[1]))
            return ("insert", op[1], value, True)
        raise ReproError(f"write op must be insert/delete, got {verb!r}")

    def snapshot_free_get(self, point: Sequence[float]) -> Any:
        """Writer-side read of the *live* tree (caller holds the lock)."""
        return self._tree.get(point)

    def _rollback(self, undo: list[WriteOp]) -> None:
        try:
            for op in reversed(undo):
                self._apply_one(op)
        except BaseException as exc:  # pragma: no cover - defensive
            self._poison = exc
            raise

    def _publish(self) -> int:
        recorder = self._recorder
        dirty = recorder.drain()
        old = self._version
        pages = dict(old.pages)
        for pid in dirty:
            if pid in recorder:
                pages[pid] = clone_page(recorder.peek(pid))
            else:
                pages.pop(pid, None)
        tree = self._tree
        self._commits += 1
        version = TreeVersion(
            pages,
            tree.root_page,
            tree.height,
            tree.count,
            lsn=old.lsn + 1,
            wal_seq=getattr(recorder.inner, "wal_seq", None),
        )
        # Single reference assignment publishes atomically: readers grab
        # either the old or the new version, never a mix.
        self._version = version
        return version.lsn

    def __repr__(self) -> str:
        return (
            f"TreeService(lsn={self.lsn}, {len(self)} points"
            f"{', POISONED' if self.poisoned else ''})"
        )
