"""Rendering findings: plain text for humans, JSON for tooling."""

from __future__ import annotations

import json

from repro.lintkit.findings import ERROR, Finding, sort_key

TEXT = "text"
JSON = "json"

FORMATS = (TEXT, JSON)


def render_text(findings: list[Finding]) -> str:
    """One line per finding plus a summary line."""
    ordered = sorted(findings, key=sort_key)
    lines = [f.render() for f in ordered]
    errors = sum(1 for f in ordered if f.severity == ERROR)
    warnings = len(ordered) - errors
    if ordered:
        lines.append("")
    lines.append(
        f"lintkit: {errors} error(s), {warnings} warning(s) "
        f"in {len({f.path for f in ordered})} file(s)"
        if ordered
        else "lintkit: clean"
    )
    return "\n".join(lines)


def render_json(findings: list[Finding]) -> str:
    """The findings as a JSON document (stable ordering)."""
    ordered = sorted(findings, key=sort_key)
    payload = {
        "findings": [f.to_dict() for f in ordered],
        "errors": sum(1 for f in ordered if f.severity == ERROR),
        "warnings": sum(1 for f in ordered if f.severity != ERROR),
    }
    return json.dumps(payload, indent=2)
