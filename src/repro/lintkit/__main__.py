"""``python -m repro.lintkit`` dispatches to the lint CLI."""

from repro.lintkit.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
