"""Per-file analysis context shared by every rule.

A :class:`FileContext` is built once per file by the driver: the source
text, the parsed AST and a normalised POSIX path.  Rules receive it and
use the scoping helpers below to decide whether the file is library code
(``src/repro``) or test code, and which subpackage it belongs to — the
domain rules are scoped to the layers whose invariants they protect.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import PurePosixPath

from repro.lintkit.findings import Finding


@dataclass
class FileContext:
    """Everything a rule needs to analyse one file."""

    path: str
    source: str
    tree: ast.Module

    @property
    def posix(self) -> str:
        """The path with forward slashes, for substring scoping."""
        return PurePosixPath(self.path).as_posix()

    def finding(
        self,
        node: ast.AST | None,
        code: str,
        message: str,
        severity: str = "error",
        fix_hint: str = "",
    ) -> Finding:
        """A finding anchored at ``node`` (or the file start when None)."""
        line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Finding(
            path=self.posix,
            line=line,
            col=col + 1,
            code=code,
            message=message,
            severity=severity,
            fix_hint=fix_hint,
        )


def is_test_path(posix: str) -> bool:
    """True for files under a ``tests`` directory or named ``test_*.py``."""
    parts = PurePosixPath(posix).parts
    if "tests" in parts or "test" in parts:
        return True
    name = PurePosixPath(posix).name
    return name.startswith("test_") or name.endswith("_test.py")


def is_library_path(posix: str) -> bool:
    """True for files that belong to the ``repro`` package itself."""
    return "repro/" in posix and not is_test_path(posix)


def in_subpackage(posix: str, sub: str) -> bool:
    """True if the file lives under ``repro/<sub>/`` in the library tree."""
    return is_library_path(posix) and f"repro/{sub}/" in posix


def module_basename(posix: str) -> str:
    """The file name component of the path."""
    return PurePosixPath(posix).name
