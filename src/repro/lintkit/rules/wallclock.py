"""R14 — no wall-clock reads in ``repro/core`` or ``repro/obs``.

``time.time()`` follows the system clock: NTP slews it, daylight-saving
and manual adjustments jump it backwards, and virtualised hosts drift
it.  A latency histogram fed from wall-clock deltas can record negative
durations; a dashboard refresh keyed on wall clock can stall or spin.
Everything the core and observability layers time is an *interval* — op
latencies, refresh cadences, overhead ratios — and intervals belong to
the monotonic clocks: ``time.perf_counter()`` for short high-resolution
measurements, ``time.monotonic()`` for scheduling.  Timestamps meant
for humans (snapshot ``created`` fields, log lines) are the CLI's and
perf runner's business, outside these layers.

The rule flags any call to ``time.time`` — through the module
(``time.time()``, including aliased imports like ``import time as t``)
or imported directly (``from time import time``) — in ``repro/core``
and ``repro/obs``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lintkit.context import FileContext, in_subpackage
from repro.lintkit.findings import Finding
from repro.lintkit.registry import Rule, register


@register
class WallClockBan(Rule):
    """Flag ``time.time()`` use in the core and observability layers."""

    code = "R14"
    name = "wall clock in interval-timing code"
    fix_hint = (
        "use time.perf_counter() for latency measurement or "
        "time.monotonic() for scheduling; wall clock (time.time) can "
        "jump backwards and corrupt intervals"
    )

    def applies_to(self, posix: str) -> bool:
        return in_subpackage(posix, "core") or in_subpackage(posix, "obs")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        # Names the ``time`` module is reachable under in this file
        # (``import time``, ``import time as t``), and names that *are*
        # ``time.time`` itself (``from time import time [as now]``).
        module_aliases: set[str] = set()
        direct_names: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        module_aliases.add(alias.asname or alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name == "time":
                            direct_names.add(alias.asname or alias.name)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "time"
                and isinstance(func.value, ast.Name)
                and func.value.id in module_aliases
            ):
                yield self.make(
                    ctx,
                    node,
                    f"{func.value.id}.time() reads the wall clock in "
                    f"interval-timing code",
                )
            elif (
                isinstance(func, ast.Name)
                and func.id in direct_names
            ):
                yield self.make(
                    ctx,
                    node,
                    f"{func.id}() (imported from time) reads the wall "
                    f"clock in interval-timing code",
                )
