"""R8 — names imported under ``TYPE_CHECKING`` must stay annotation-only.

The core modules break their import cycle with ``BVTree`` by importing
it under ``if TYPE_CHECKING:`` and annotating with the string form
(PEP 563 ``from __future__ import annotations`` keeps annotations
unevaluated).  A TYPE_CHECKING-only name that leaks into *runtime* code
— an ``isinstance`` check, a constructor call, a default value — is a
``NameError`` waiting on exactly the code path tests did not cover.

The rule collects the names imported inside ``if TYPE_CHECKING:``
blocks and flags any load of them outside annotation positions (and
outside the guarded block itself).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lintkit.context import FileContext
from repro.lintkit.findings import Finding
from repro.lintkit.registry import Rule, register


def _is_type_checking_test(test: ast.expr) -> bool:
    """Matches ``TYPE_CHECKING`` and ``typing.TYPE_CHECKING``."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _imported_names(block: list[ast.stmt]) -> set[str]:
    names: set[str] = set()
    for node in block:
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    names.add(alias.asname or alias.name)
    return names


def _annotation_nodes(tree: ast.Module) -> set[int]:
    """The ``id()`` of every AST node inside an annotation subtree."""
    ids: set[int] = set()
    for node in ast.walk(tree):
        annotations: list[ast.expr] = []
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            for arg in (
                args.posonlyargs
                + args.args
                + args.kwonlyargs
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                if arg.annotation is not None:
                    annotations.append(arg.annotation)
            if node.returns is not None:
                annotations.append(node.returns)
        elif isinstance(node, ast.AnnAssign):
            annotations.append(node.annotation)
        for annotation in annotations:
            for sub in ast.walk(annotation):
                ids.add(id(sub))
    return ids


@register
class TypeCheckingNameAtRuntime(Rule):
    """Flag runtime use of TYPE_CHECKING-only imports."""

    code = "R8"
    name = "TYPE_CHECKING import used at runtime"
    fix_hint = (
        "move the import out of the TYPE_CHECKING block, or keep the "
        "use inside an annotation (string form under PEP 563)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        guarded: set[str] = set()
        guarded_blocks: list[ast.If] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.If) and _is_type_checking_test(node.test):
                guarded_blocks.append(node)
                guarded |= _imported_names(node.body)
        if not guarded:
            return
        inside_guard: set[int] = set()
        for block in guarded_blocks:
            for sub in ast.walk(block):
                inside_guard.add(id(sub))
        annotation_ids = _annotation_nodes(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Name):
                continue
            if not isinstance(node.ctx, ast.Load):
                continue
            if node.id not in guarded:
                continue
            if id(node) in annotation_ids or id(node) in inside_guard:
                continue
            yield self.make(
                ctx,
                node,
                f"'{node.id}' is imported under TYPE_CHECKING only and "
                f"does not exist at runtime here",
            )
