"""R4 — public core mutators must account on ``tree.stats``.

Every structural claim reproduced from the paper (split counts, deferred
merges, promotion/demotion totals) is read off the tree's
:class:`~repro.core.stats.OpCounters`; the invariant checker and the
benchmarks both consult them.  A public function in ``repro/core`` that
mutates tree state without touching ``tree.stats`` creates operations
the accounting cannot see — the counters silently under-report and every
downstream claim drifts.

The rule applies to module-level public functions taking a parameter
named ``tree``.  "Mutates tree state" means: assigning ``tree.count``,
``tree.height`` or ``tree.root_page``; calling ``tree.store.write``,
``tree.store.free`` or ``tree.store.allocate``; or calling the
allocation/registry helpers ``tree.alloc_data_page``,
``tree.alloc_index_node``, ``tree.register_entry`` or
``tree.unregister_entry``.  "Touches stats" means any read or write of
``tree.stats.<counter>`` in the same function body (delegating the
mutation *and* the accounting to a callee keeps the callee in scope of
this rule instead).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lintkit.context import FileContext, in_subpackage
from repro.lintkit.findings import Finding
from repro.lintkit.registry import Rule, register

_MUTATED_ATTRS = frozenset({"count", "height", "root_page"})
_STORE_MUTATORS = frozenset({"write", "free", "allocate"})
_TREE_MUTATORS = frozenset(
    {
        "alloc_data_page",
        "alloc_index_node",
        "register_entry",
        "unregister_entry",
    }
)


def _is_tree_attr(node: ast.expr, param: str, attr: str | None = None) -> bool:
    """Is ``node`` the expression ``<param>.<attr>`` (any attr if None)?"""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == param
        and (attr is None or node.attr == attr)
    )


@register
class MutatorsTouchStats(Rule):
    """Flag public core mutators that never touch ``tree.stats``."""

    code = "R4"
    name = "tree mutation without stats accounting"
    fix_hint = "bump or read a tree.stats counter in the mutating function"

    def applies_to(self, posix: str) -> bool:
        return in_subpackage(posix, "core")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            params = [a.arg for a in node.args.args + node.args.posonlyargs]
            if "tree" not in params:
                continue
            mutation = self._first_mutation(node, "tree")
            if mutation is None:
                continue
            if self._touches_stats(node, "tree"):
                continue
            yield self.make(
                ctx,
                node,
                f"public function '{node.name}' mutates tree state "
                f"({mutation}) but never touches tree.stats",
            )

    def _first_mutation(
        self, func: ast.AST, param: str
    ) -> str | None:
        for node in ast.walk(func):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(
                        target, ast.Attribute
                    ) and target.attr in _MUTATED_ATTRS and _is_tree_attr(
                        target, param, target.attr
                    ):
                        return f"assigns {param}.{target.attr}"
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                func_attr = node.func
                # tree.store.write(...) / free / allocate
                if func_attr.attr in _STORE_MUTATORS and _is_tree_attr(
                    func_attr.value, param, "store"
                ):
                    return f"calls {param}.store.{func_attr.attr}()"
                # tree.alloc_*/register_entry/unregister_entry(...)
                if func_attr.attr in _TREE_MUTATORS and isinstance(
                    func_attr.value, ast.Name
                ) and func_attr.value.id == param:
                    return f"calls {param}.{func_attr.attr}()"
        return None

    def _touches_stats(self, func: ast.AST, param: str) -> bool:
        for node in ast.walk(func):
            if isinstance(node, ast.Attribute) and _is_tree_attr(
                node.value, param, "stats"
            ):
                return True
        return False
