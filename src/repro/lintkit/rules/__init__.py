"""The domain rules, registered on import.

Each module protects one invariant class of the BV-tree codebase; see
``docs/STATIC_ANALYSIS.md`` for the rule catalogue with rationale and
examples.  Importing this package populates the registry in
:mod:`repro.lintkit.registry` (rule ``R9`` registers from
:mod:`repro.lintkit.suppress`, where the suppression machinery lives).
"""

from repro.lintkit.rules import columnar, concurrency, exceptions, exports, fileio, floats, layering, metricsban, mutation, printban, statstouch, typingonly, wallclock

__all__ = [
    "columnar",
    "concurrency",
    "exceptions",
    "exports",
    "fileio",
    "floats",
    "layering",
    "metricsban",
    "mutation",
    "printban",
    "statstouch",
    "typingonly",
    "wallclock",
]
