"""R11 — no direct ``MetricsRegistry`` mutation from ``repro/core``.

Metrics are *derived* observability: a :class:`~repro.obs.MetricsSink`
(or a :class:`~repro.obs.GuaranteeMonitor` publishing into a registry)
folds the core's trace events into counters, gauges and histograms.  If
core code imports :mod:`repro.obs.metrics` and pokes instruments
directly, two things break at once: the trace stream and the registry
can disagree (the audit in ``repro doctor`` assumes events are the
single source of truth), and the core pays instrument bookkeeping on hot
paths even when nobody attached a sink.  The tracer's null-object
default exists precisely so core code never needs a metrics handle.

The rule flags, inside ``repro/core`` only: any import of
``repro.obs.metrics`` (module or names such as ``MetricsRegistry``,
``Counter``, ``Gauge``, ``Histogram``, ``TimeSeriesSink``) and any call
of the mutating instrument methods (``inc``/``set``/``observe``) or
registry factories (``counter``/``gauge``/``histogram``) on an object.
Event emission through ``tree.tracer`` and the plain-int
``OpCounters`` fields remain the sanctioned accounting paths.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lintkit.context import FileContext, in_subpackage
from repro.lintkit.findings import Finding
from repro.lintkit.registry import Rule, register

#: Names exported by repro.obs.metrics whose import into core is banned.
_METRIC_NAMES = frozenset(
    {
        "Counter",
        "Gauge",
        "Histogram",
        "MetricsRegistry",
        "TimeSeriesSink",
    }
)
#: Mutating instrument methods (Counter.inc, Gauge.set, Histogram.observe).
_MUTATORS = frozenset({"inc", "set", "observe"})
#: Registry factory methods that create-or-return instruments.
_FACTORIES = frozenset({"counter", "gauge", "histogram"})


@register
class CoreMetricsBan(Rule):
    """Flag metrics imports and instrument mutation in ``repro/core``."""

    code = "R11"
    name = "direct metrics mutation in core code"
    fix_hint = (
        "emit a TraceEvent and let a MetricsSink/GuaranteeMonitor derive "
        "the metric; core must not hold or mutate registry instruments"
    )

    def applies_to(self, posix: str) -> bool:
        return in_subpackage(posix, "core")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        # Attribute names bound from a banned import in this module; calls
        # to <name>.inc/.set/.observe etc. are only flagged when the base
        # name could plausibly be a metrics object (imported here), so
        # ``node.set(...)`` on an ast or dict-like object stays clean.
        tainted: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.startswith("repro.obs"):
                        yield self.make(
                            ctx,
                            node,
                            f"core code imports {alias.name}; metrics are "
                            f"derived from trace events, not pushed by core",
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if not module.startswith("repro.obs"):
                    continue
                for alias in node.names:
                    if (
                        module.startswith("repro.obs.metrics")
                        or alias.name in _METRIC_NAMES
                    ):
                        tainted.add(alias.asname or alias.name)
                        yield self.make(
                            ctx,
                            node,
                            f"core code imports {alias.name} from "
                            f"{module}; instrument handles belong to "
                            f"sinks, not to core",
                        )
        if not tainted:
            return
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in (_MUTATORS | _FACTORIES)
            ):
                continue
            base = node.func.value
            # <Tainted>(...).inc(...) or registry-from-tainted chains are
            # caught by the import finding above; here we flag direct
            # mutation through a name bound to a banned class/instance.
            if isinstance(base, ast.Name) and base.id in tainted:
                yield self.make(
                    ctx,
                    node,
                    f"core code mutates a metrics instrument "
                    f"({base.id}.{node.func.attr}())",
                )
