"""R6 — ``__all__`` must match a package's public surface.

Each ``__init__.py`` under ``repro`` is a curated façade: what it
imports and defines *is* the documented public API of that subpackage.
When ``__all__`` and the actual bindings drift apart, ``from pkg import
*`` and the docs disagree with reality, and dead re-exports (or missing
ones) accumulate unnoticed.  The rule checks both directions:

- every public binding (import, assignment, def, class — names not
  starting with ``_``) must appear in ``__all__``;
- every name in ``__all__`` must be bound in the module (dunders such as
  ``__version__`` are allowed in ``__all__`` when actually assigned).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lintkit.context import FileContext, is_library_path, module_basename
from repro.lintkit.findings import Finding
from repro.lintkit.registry import Rule, register


def _bound_names(tree: ast.Module) -> set[str]:
    """Names bound at module top level (imports, defs, assignments)."""
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    names.add(alias.asname or alias.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names


def _find_all(tree: ast.Module) -> tuple[ast.Assign | None, list[str] | None]:
    """The ``__all__`` assignment node and its string items, if present."""
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            continue
        if not isinstance(node.value, (ast.List, ast.Tuple)):
            return node, None
        items: list[str] = []
        for element in node.value.elts:
            if not (
                isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ):
                return node, None
            items.append(element.value)
        return node, items
    return None, None


def _is_dunder(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


@register
class AllMatchesPublicNames(Rule):
    """Flag ``__all__`` drift in package ``__init__`` modules."""

    code = "R6"
    name = "__all__ out of sync with public names"
    fix_hint = "add/remove the name in __all__ or in the module bindings"

    def applies_to(self, posix: str) -> bool:
        return is_library_path(posix) and module_basename(posix) == "__init__.py"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        bound = _bound_names(ctx.tree)
        all_node, all_items = _find_all(ctx.tree)
        public = {n for n in bound if not n.startswith("_")}
        if all_node is None:
            if public:
                yield self.make(
                    ctx,
                    None,
                    f"package __init__ defines {len(public)} public "
                    f"name(s) but no __all__",
                )
            return
        if all_items is None:
            yield self.make(
                ctx,
                all_node,
                "__all__ must be a literal list/tuple of strings for "
                "static verification",
            )
            return
        all_set = set(all_items)
        for name in sorted(public - all_set):
            yield self.make(
                ctx,
                all_node,
                f"public name '{name}' is bound here but missing from __all__",
            )
        for name in sorted(all_set - bound):
            yield self.make(
                ctx,
                all_node,
                f"__all__ lists '{name}' but the module does not bind it",
            )
        for name in sorted(all_set & bound):
            if name.startswith("_") and not _is_dunder(name):
                yield self.make(
                    ctx,
                    all_node,
                    f"__all__ exports the private name '{name}'",
                )
        duplicates = {n for n in all_items if all_items.count(n) > 1}
        for name in sorted(duplicates):
            yield self.make(
                ctx, all_node, f"__all__ lists '{name}' more than once"
            )
