"""R1 — no float equality on region coordinates.

The BV-tree's geometry is exact: region membership is decided on
*bit paths* (integers), never on reconstructed coordinates, because two
coordinates that "should" coincide after arithmetic rarely compare equal
in floating point.  A ``==``/``!=`` between float-valued expressions in
the geometry layer is therefore either a bug (use bit-path or grid
comparison) or an intentional exact-identity check that must carry a
justification (``# lint: ignore[R1] -- why``).

Scope: ``repro/geometry/`` and ``repro/core/spatial.py`` — the two
places coordinates are produced and consumed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lintkit.context import FileContext, in_subpackage, is_library_path
from repro.lintkit.findings import Finding
from repro.lintkit.registry import Rule, register

#: Attributes that hold tuples of real-valued coordinates in this codebase.
COORDINATE_ATTRS = frozenset({"lows", "highs", "bounds"})


def _is_floatish(node: ast.expr) -> bool:
    """Heuristic: does this expression plausibly produce float values?"""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.Call):
        return isinstance(node.func, ast.Name) and node.func.id == "float"
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return _is_floatish(node.left) or _is_floatish(node.right)
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand)
    if isinstance(node, ast.Attribute):
        return node.attr in COORDINATE_ATTRS
    return False


@register
class FloatEquality(Rule):
    """Flag ``==``/``!=`` between float-valued geometric expressions."""

    code = "R1"
    name = "float equality on coordinates"
    fix_hint = (
        "compare bit paths / grid cells, use math.isclose, or justify "
        "with '# lint: ignore[R1] -- reason'"
    )

    def applies_to(self, posix: str) -> bool:
        return in_subpackage(posix, "geometry") or (
            is_library_path(posix) and posix.endswith("repro/core/spatial.py")
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[i], operands[i + 1]
                if _is_floatish(left) or _is_floatish(right):
                    yield self.make(
                        ctx,
                        node,
                        "float-valued equality comparison on coordinates "
                        "(exact float == is almost never the intended "
                        "geometric predicate)",
                    )
                    break  # one finding per comparison chain
