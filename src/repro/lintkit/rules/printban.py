"""R10 — no ``print`` or ad-hoc logging in ``repro/core``.

The core layer has exactly one sanctioned way to report what an
operation did: emit a :class:`~repro.obs.events.TraceEvent` through the
tree's :class:`~repro.obs.Tracer` (and bump the matching
:class:`~repro.core.stats.OpCounters` field).  A ``print`` call — or a
``logging`` import — in core code is output the harness cannot capture,
count or replay: it bypasses the sink protocol, breaks the
trace-equals-counters invariant the integration tests assert, and costs
formatting work on hot paths even when nobody is listening.

Rendering modules that exist to produce text (``repro/core/render.py``)
still must not print; they return strings and the CLI prints them —
this rule flags the call, not the string-building.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lintkit.context import FileContext, in_subpackage
from repro.lintkit.findings import Finding
from repro.lintkit.registry import Rule, register

_LOGGING_MODULES = ("logging", "warnings")


@register
class CorePrintBan(Rule):
    """Flag ``print`` calls and logging imports in ``repro/core``."""

    code = "R10"
    name = "ad-hoc output in core code"
    fix_hint = (
        "emit a TraceEvent through tree.tracer (repro.obs) instead of "
        "printing/logging; the null sink makes it free when disabled"
    )

    def applies_to(self, posix: str) -> bool:
        return in_subpackage(posix, "core")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.make(
                    ctx, node, "core code calls print() directly"
                )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".", 1)[0]
                    if root in _LOGGING_MODULES:
                        yield self.make(
                            ctx,
                            node,
                            f"core code imports {alias.name} for ad-hoc "
                            f"output",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".", 1)[0]
                if root in _LOGGING_MODULES:
                    yield self.make(
                        ctx,
                        node,
                        f"core code imports from {node.module} for "
                        f"ad-hoc output",
                    )
