"""R5 and R7 — exception discipline.

R5: no bare ``except:`` anywhere, and no silently swallowed library
errors (``except ReproError: pass`` and friends).  The library's
exception hierarchy (:mod:`repro.errors`) is designed so callers can
catch precisely; a handler that catches the hierarchy — or ``Exception``
— and does nothing hides exactly the invariant violations the runtime
checker exists to surface.

R7: no ``assert`` for invariant enforcement in library code.  Asserts
vanish under ``python -O``, so an invariant guarded by ``assert`` is an
invariant unguarded in optimised production runs; library code must
raise :class:`~repro.errors.TreeInvariantError` (or a more specific
``ReproError``).  Test code is exempt — asserting is what tests do.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lintkit.context import FileContext, is_library_path
from repro.lintkit.findings import Finding
from repro.lintkit.registry import Rule, register

#: The repro exception hierarchy (mirrors repro/errors.py) plus the
#: built-in catch-alls a silent handler must not swallow.
_SWALLOWED_NAMES = frozenset(
    {
        "ReproError",
        "GeometryError",
        "DimensionMismatchError",
        "OutOfSpaceError",
        "ResolutionExhaustedError",
        "StorageError",
        "PageNotFoundError",
        "PageOverflowError",
        "TreeInvariantError",
        "KeyNotFoundError",
        "DuplicateKeyError",
        "Exception",
        "BaseException",
    }
)


def _exception_names(node: ast.expr | None) -> list[str]:
    """The caught exception name(s) of an except clause."""
    if node is None:
        return []
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, ast.Attribute):
        return [node.attr]
    if isinstance(node, ast.Tuple):
        names: list[str] = []
        for element in node.elts:
            names.extend(_exception_names(element))
        return names
    return []


def _is_silent(body: list[ast.stmt]) -> bool:
    """A handler body that does nothing: ``pass`` or a bare ``...``."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or ellipsis
        return False
    return True


@register
class SilentExcept(Rule):
    """Flag bare excepts and silently swallowed library errors."""

    code = "R5"
    name = "bare or silent except"
    fix_hint = "catch the narrowest error and handle or re-raise it"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.make(
                    ctx,
                    node,
                    "bare 'except:' catches everything, including "
                    "KeyboardInterrupt and SystemExit",
                )
                continue
            if not _is_silent(node.body):
                continue
            swallowed = [
                name
                for name in _exception_names(node.type)
                if name in _SWALLOWED_NAMES
            ]
            if swallowed:
                yield self.make(
                    ctx,
                    node,
                    f"silently swallowing {', '.join(swallowed)} hides "
                    f"invariant violations",
                )


@register
class AssertForInvariants(Rule):
    """Flag ``assert`` in library code (erased under ``python -O``)."""

    code = "R7"
    name = "assert used for invariant enforcement"
    fix_hint = "raise TreeInvariantError (or a specific ReproError) instead"

    def applies_to(self, posix: str) -> bool:
        return is_library_path(posix)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                yield self.make(
                    ctx,
                    node,
                    "assert statements are removed under python -O; "
                    "library invariants must raise",
                )
