"""R2 — no mutation of ``node.entries`` inside a loop iterating it.

Split, promotion and merge code walks index-node entry lists while
deciding which entries move; mutating the list being iterated skips
elements (CPython list iteration is index-based) — exactly the class of
rebalancing bug that corrupts occupancy and reachability invariants
without failing loudly.  Iterate a copy (``for e in list(node.entries)``)
or collect first and mutate after the loop, as the update algebra in
:mod:`repro.core.insert` does.

The rule flags, inside ``for x in <obj>.entries:``, any of:

- ``<obj>.entries.append/remove/insert/pop/clear/extend/sort(...)``
- ``<obj>.add(...)`` / ``<obj>.remove(...)`` (the IndexNode mutators)
- assignment, augmented assignment or ``del`` of ``<obj>.entries``

where ``<obj>`` is syntactically the same expression as the one
iterated.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lintkit.context import FileContext
from repro.lintkit.findings import Finding
from repro.lintkit.registry import Rule, register

_LIST_MUTATORS = frozenset(
    {"append", "remove", "insert", "pop", "clear", "extend", "sort"}
)
_NODE_MUTATORS = frozenset({"add", "remove"})


def _same_expr(a: ast.expr, b: ast.expr) -> bool:
    """Syntactic equality of two expressions (ignoring positions)."""
    return ast.dump(a) == ast.dump(b)


def _entries_of(node: ast.expr) -> ast.expr | None:
    """If ``node`` is ``<obj>.entries``, return ``<obj>``."""
    if isinstance(node, ast.Attribute) and node.attr == "entries":
        return node.value
    return None


@register
class EntriesMutatedDuringIteration(Rule):
    """Flag entry-list mutation while the same list is being iterated."""

    code = "R2"
    name = "entries mutated during iteration"
    fix_hint = "iterate a copy: 'for e in list(node.entries):'"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, (ast.For, ast.AsyncFor)):
                continue
            owner = _entries_of(loop.iter)
            if owner is None:
                continue
            for stmt in loop.body:
                for inner in ast.walk(stmt):
                    mutation = self._mutates(inner, owner)
                    if mutation is not None:
                        yield self.make(
                            ctx,
                            inner,
                            f"'{mutation}' mutates the entry list being "
                            f"iterated by the enclosing for loop "
                            f"(line {loop.lineno})",
                        )
        return

    def _mutates(self, node: ast.AST, owner: ast.expr) -> str | None:
        """A short description of the mutation, or None."""
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            target = node.func.value
            entries_owner = _entries_of(target)
            if (
                node.func.attr in _LIST_MUTATORS
                and entries_owner is not None
                and _same_expr(entries_owner, owner)
            ):
                return f".entries.{node.func.attr}()"
            if node.func.attr in _NODE_MUTATORS and _same_expr(target, owner):
                return f".{node.func.attr}()"
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
            targets: list[ast.expr]
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            else:
                targets = node.targets
            for target in targets:
                target_owner = _entries_of(target)
                if target_owner is not None and _same_expr(target_owner, owner):
                    return ".entries assignment"
                # Subscript mutation: node.entries[i] = ... / del node.entries[i]
                if isinstance(target, ast.Subscript):
                    sub_owner = _entries_of(target.value)
                    if sub_owner is not None and _same_expr(sub_owner, owner):
                        return ".entries[...] assignment"
        return None
