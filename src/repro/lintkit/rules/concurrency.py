"""R15 — no threading or asyncio in ``repro/core``.

The core tree is single-threaded by contract: concurrency lives one
layer up, in :mod:`repro.concurrency`, where the single-writer lock and
the shadow-commit version chain make a ``BVTree`` safe to share.  A lock
or event loop *inside* the core would be a smell twice over — it would
duplicate synchronisation the service layer already owns (two lock
hierarchies is how deadlocks are built), and it would quietly change the
core's cost model (every descent paying for lock traffic that the
single-threaded perf suite then can't see).  The storage layer may opt
in where a shared structure needs it (``BufferPool(thread_safe=True)``,
the geometry rect cache) — those are leaf caches with self-contained
critical sections, not tree logic.

The rule flags any import of ``threading``, ``asyncio`` or ``_thread``
— plain, aliased or ``from``-form — in ``repro/core``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lintkit.context import FileContext, in_subpackage
from repro.lintkit.findings import Finding
from repro.lintkit.registry import Rule, register

#: Modules whose presence in the core marks concurrency leaking down.
_BANNED = {"threading", "asyncio", "_thread"}


@register
class CoreConcurrencyBan(Rule):
    """Flag threading/asyncio imports in the single-threaded core."""

    code = "R15"
    name = "concurrency primitive in the single-threaded core"
    fix_hint = (
        "the core tree is single-threaded by contract; wrap the tree in "
        "repro.concurrency.TreeService for shared access instead of "
        "adding locks or event loops to core code"
    )

    def applies_to(self, posix: str) -> bool:
        return in_subpackage(posix, "core")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _BANNED:
                        yield self.make(
                            ctx,
                            node,
                            f"import {alias.name} brings a concurrency "
                            f"primitive into the single-threaded core",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in _BANNED and node.level == 0:
                    yield self.make(
                        ctx,
                        node,
                        f"from {node.module} import ... brings a "
                        f"concurrency primitive into the single-threaded "
                        f"core",
                    )
