"""R3 — core/ must not reach into the pager directly.

The index algorithms in ``repro/core`` program against the
:class:`repro.storage.Storage` protocol, so a tree can run over a bare
:class:`PageStore`, a :class:`BufferPool`, or any future backend
(sharded, async, on-disk) without core changes.  Importing
``repro.storage.pager`` — or the concrete ``PageStore`` type — from core
code re-couples the algorithms to one backend and bypasses the buffer
layer's accounting, which is what the paper's page-count claims are
measured with.

Sanctioned spelling: ``from repro.storage import Storage, default_store``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lintkit.context import FileContext, in_subpackage
from repro.lintkit.findings import Finding
from repro.lintkit.registry import Rule, register

_FORBIDDEN_MODULE = "repro.storage.pager"
_FORBIDDEN_NAME = "PageStore"


@register
class CorePagerLayering(Rule):
    """Flag direct pager imports from ``repro/core``."""

    code = "R3"
    name = "core bypasses the storage layering"
    fix_hint = (
        "import the Storage protocol / default_store from repro.storage "
        "instead of the concrete pager"
    )

    def applies_to(self, posix: str) -> bool:
        return in_subpackage(posix, "core")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == _FORBIDDEN_MODULE or alias.name.startswith(
                        _FORBIDDEN_MODULE + "."
                    ):
                        yield self.make(
                            ctx,
                            node,
                            f"core module imports {alias.name} directly",
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module == _FORBIDDEN_MODULE or module.startswith(
                    _FORBIDDEN_MODULE + "."
                ):
                    yield self.make(
                        ctx,
                        node,
                        f"core module imports from {module} directly",
                    )
                    continue
                for alias in node.names:
                    if alias.name == _FORBIDDEN_NAME:
                        yield self.make(
                            ctx,
                            node,
                            f"core module imports the concrete "
                            f"{_FORBIDDEN_NAME} type from {module or '.'}",
                        )
