"""R12 — raw file I/O stays inside the WAL and the pagefile codec.

Durability has exactly two modules that are allowed to touch the disk:
``repro/storage/durable/wal.py`` (append, flush, fsync, truncate of the
log) and ``repro/storage/durable/pagefile.py`` (strict read and atomic
replace of the checkpoint image).  Everything else in the storage layer
— the store, recovery, the buffer pool, snapshots — composes those two.
A stray ``open()`` anywhere else bypasses the fault plan (injected
crashes and lying fsyncs never see the write), the WAL stats, and the
crash-matrix oracle: the byte would be durable in production and
invisible to every test that proves durability.

Two checks:

1. In library files under ``repro/storage/`` outside the two sanctioned
   modules: any call to ``open``/``io.open``/``os.open``/``os.write``/
   ``os.fdopen``, or to a ``.open()``/``.write_bytes()``/
   ``.write_text()`` method, is flagged.  (Snapshots take a file object
   the *caller* opened — the layer itself never opens one.)
2. Anywhere in the library: the on-disk names ``wal.log`` and
   ``pages.dat`` appear as string literals inside a call.  The canonical
   spellings are ``WAL_NAME``/``PAGEFILE_NAME`` in
   :mod:`repro.storage.durable.store`; a re-typed literal silently
   diverges the day the layout changes.

Tests are exempt throughout — crash tests truncate WALs on purpose.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lintkit.context import FileContext, in_subpackage, is_library_path
from repro.lintkit.findings import Finding
from repro.lintkit.registry import Rule, register

#: The only storage modules allowed to perform raw file I/O.
SANCTIONED = ("durable/wal.py", "durable/pagefile.py")

#: On-disk names that must be spelled via the store's constants.
RESERVED_NAMES = ("wal.log", "pages.dat", "pages.dat.tmp")

#: ``module.function`` calls that reach the filesystem directly.
_IO_QUALIFIED = {("io", "open"), ("os", "open"), ("os", "write"), ("os", "fdopen")}

#: Method names that write through a ``pathlib.Path``-like object.
_IO_METHODS = {"open", "write_bytes", "write_text"}


def _call_io_description(node: ast.Call) -> str | None:
    """How this call touches the disk, or None if it does not."""
    func = node.func
    if isinstance(func, ast.Name) and func.id == "open":
        return "calls open() directly"
    if isinstance(func, ast.Attribute):
        value = func.value
        if (
            isinstance(value, ast.Name)
            and (value.id, func.attr) in _IO_QUALIFIED
        ):
            return f"calls {value.id}.{func.attr}() directly"
        if func.attr in _IO_METHODS and not isinstance(value, ast.Name):
            # Method form (p.open(), p.write_bytes(...)): a Name receiver
            # is already covered above when it is a module; any other
            # receiver is some path-like object being written through.
            return f"calls .{func.attr}() on a path object"
        if (
            isinstance(value, ast.Name)
            and func.attr in _IO_METHODS
            and (value.id, func.attr) not in _IO_QUALIFIED
            and value.id not in ("io", "os")
        ):
            return f"calls {value.id}.{func.attr}()"
    return None


def _reserved_literals(node: ast.Call) -> Iterator[str]:
    """Reserved on-disk names spelled as literals in this call."""
    for arg in [*node.args, *[kw.value for kw in node.keywords]]:
        if isinstance(arg, ast.Constant) and arg.value in RESERVED_NAMES:
            yield str(arg.value)


@register
class StorageFileIO(Rule):
    """Flag raw file I/O outside the WAL/pagefile and re-typed names."""

    code = "R12"
    name = "raw file I/O outside the durability modules"
    fix_hint = (
        "route disk access through WriteAheadLog or the pagefile codec "
        "(the only modules the fault plan instruments); spell on-disk "
        "names via WAL_NAME/PAGEFILE_NAME from repro.storage.durable.store"
    )

    def applies_to(self, posix: str) -> bool:
        return is_library_path(posix)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        posix = ctx.posix
        io_banned = in_subpackage(posix, "storage") and not posix.endswith(
            SANCTIONED
        )
        defines_names = posix.endswith("durable/store.py")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if io_banned:
                how = _call_io_description(node)
                if how is not None:
                    yield self.make(
                        ctx,
                        node,
                        f"storage-layer code {how}; raw file I/O belongs "
                        f"in durable/wal.py or durable/pagefile.py",
                    )
            if not defines_names:
                for name in _reserved_literals(node):
                    yield self.make(
                        ctx,
                        node,
                        f"on-disk name {name!r} re-typed as a literal",
                    )
