"""R13 — columnar page columns stay inside ``repro/core/columnar.py``.

The columnar layout packs page state into parallel ``_c_*`` columns
(sorted path arrays, aligned key intervals, flattened coordinates) whose
correctness rests on cross-column invariants: every mutation must keep
the columns the same length, in the same order, and consistent with the
authoritative ``entries`` list.  Those invariants are maintained by the
layout's own methods and are invisible at any single call site — code
elsewhere reaching into ``node._c_nat_aligned`` or ``page._c_paths``
reads state it cannot know the shape of, and a write would silently
desynchronise the columns from the entries.

The module owning the columns exposes layout-agnostic methods
(``insert``/``get``/``extract_block``/``absorb``/``best_native_match``/
``matching_guards``/``locate_columnar``/…) shared with the object
layout; everything else goes through those.  This mirrors R12, which
confines raw file I/O to the two durability modules.

One check: in library files outside ``repro/core/columnar.py``, any
attribute access (load, store or delete) whose name starts with ``_c_``
is flagged.  Tests are exempt — the layout's own unit tests assert on
column state on purpose.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lintkit.context import FileContext, is_library_path
from repro.lintkit.findings import Finding
from repro.lintkit.registry import Rule, register

#: The only module allowed to touch ``_c_*`` columns.
SANCTIONED = "repro/core/columnar.py"


@register
class ColumnarColumnAccess(Rule):
    """Flag ``_c_*`` column access outside the columnar layout module."""

    code = "R13"
    name = "columnar column access outside repro.core.columnar"
    fix_hint = (
        "go through the layout-agnostic page/node methods (insert, get, "
        "extract_block, absorb, best_native_match, matching_guards, "
        "locate_columnar, ...); the _c_* columns and their cross-column "
        "invariants belong to repro/core/columnar.py alone"
    )

    def applies_to(self, posix: str) -> bool:
        return is_library_path(posix) and not posix.endswith(SANCTIONED)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and node.attr.startswith(
                "_c_"
            ):
                yield self.make(
                    ctx,
                    node,
                    f"access to columnar column {node.attr!r} outside "
                    f"repro/core/columnar.py",
                )
