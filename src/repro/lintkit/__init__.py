"""repro.lintkit — domain-aware static analysis for the BV-tree codebase.

The runtime invariant checker (:mod:`repro.core.checker`) verifies tree
*states*; this package statically rejects the bug *classes* that produce
invalid states before the code ever runs: float equality on coordinates,
entry lists mutated mid-iteration, core code bypassing the storage
layering, mutations the stats accounting cannot see, silent exception
swallowing, ``__all__`` drift, asserts that vanish under ``-O``, and
TYPE_CHECKING imports leaking into runtime.  See
``docs/STATIC_ANALYSIS.md`` for the rule catalogue.

Programmatic use::

    from repro.lintkit import lint_paths
    findings = lint_paths(["src/repro", "tests"])
    bad = [f for f in findings if f.severity == "error"]

Command line: ``python -m repro.lintkit <paths>`` or ``repro lint <paths>``.
"""

from repro.lintkit.baseline import load_baseline, write_baseline
from repro.lintkit.context import FileContext
from repro.lintkit.driver import discover_files, lint_file, lint_paths
from repro.lintkit.findings import Finding
from repro.lintkit.registry import Rule, all_rules, register
from repro.lintkit.suppress import scan_suppressions

__all__ = [
    "FileContext",
    "Finding",
    "Rule",
    "all_rules",
    "discover_files",
    "lint_file",
    "lint_paths",
    "load_baseline",
    "register",
    "scan_suppressions",
    "write_baseline",
]
