"""The rule registry: how rules declare themselves to the driver.

A rule is a class with a unique ``code``, a one-line ``name``, a default
``severity`` and ``fix_hint``, an ``applies_to`` path predicate and a
``check`` method yielding findings.  Decorating it with :func:`register`
adds it to the global registry the driver iterates; the registry is
keyed by code so ``--select``/``--ignore`` can address rules directly.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from repro.errors import ReproError
from repro.lintkit.context import FileContext
from repro.lintkit.findings import ERROR, Finding

_CODE_RE = re.compile(r"^[A-Z][0-9]+$")


class LintConfigError(ReproError):
    """A rule was mis-declared or selected by an unknown code."""


class Rule:
    """Base class for lint rules.  Subclass, set the class attributes,
    implement :meth:`check`, and decorate with :func:`register`."""

    #: Unique short code, e.g. ``"R1"``.
    code: str = ""
    #: One-line human name shown by ``--list-rules``.
    name: str = ""
    #: Default severity of this rule's findings.
    severity: str = ERROR
    #: Default remediation hint appended to findings.
    fix_hint: str = ""

    def applies_to(self, posix: str) -> bool:
        """Whether the rule runs on this file (default: every file)."""
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------

    def make(
        self, ctx: FileContext, node: ast.AST | None, message: str
    ) -> Finding:
        """A finding with this rule's code, severity and hint."""
        return ctx.finding(
            node,
            self.code,
            message,
            severity=self.severity,
            fix_hint=self.fix_hint,
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not _CODE_RE.match(cls.code):
        raise LintConfigError(f"rule {cls.__name__} has invalid code {cls.code!r}")
    existing = _REGISTRY.get(cls.code)
    if existing is not None and existing is not cls:
        raise LintConfigError(
            f"rule code {cls.code} registered twice "
            f"({existing.__name__} and {cls.__name__})"
        )
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> dict[str, Rule]:
    """Fresh instances of every registered rule, keyed by code."""
    import repro.lintkit.rules  # noqa: F401  (registers R1-R8 on import)
    import repro.lintkit.suppress  # noqa: F401  (registers R9)

    return {code: cls() for code, cls in sorted(_REGISTRY.items())}


def resolve_codes(codes: Iterable[str]) -> set[str]:
    """Validate a user-supplied code list against the registry."""
    known = set(all_rules())
    # Engine-level codes accepted by select/ignore although they are not
    # ordinary registered rules: parse errors and stale baseline entries.
    known |= {"P0", "B1"}
    requested = {c.strip().upper() for c in codes if c.strip()}
    unknown = requested - known
    if unknown:
        raise LintConfigError(
            f"unknown rule code(s) {sorted(unknown)}; known: {sorted(known)}"
        )
    return requested
