"""The findings model: what a rule reports and how it is identified.

A :class:`Finding` is one diagnostic anchored to a source location.  Its
``code`` names the rule that produced it (``R1`` … ``R9``, plus the
engine codes ``P0`` for unparseable files and ``B1`` for stale baseline
entries); its ``fingerprint`` — ``(path, code, message)`` — is the
identity used by baseline files, deliberately excluding line numbers so
unrelated edits above a baselined finding do not invalidate it.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Severity levels, in increasing order of strictness.
WARNING = "warning"
ERROR = "error"

SEVERITIES = (WARNING, ERROR)


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a rule (or by the engine itself)."""

    path: str
    line: int
    col: int
    code: str
    message: str
    severity: str = ERROR
    fix_hint: str = ""

    def fingerprint(self) -> tuple[str, str, str]:
        """The baseline identity of this finding (line numbers drift)."""
        return (self.path, self.code, self.message)

    def render(self) -> str:
        """One-line human-readable form, ``path:line:col: CODE sev: msg``."""
        hint = f" (fix: {self.fix_hint})" if self.fix_hint else ""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} {self.severity}: {self.message}{hint}"
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable form (used by ``--format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "fix_hint": self.fix_hint,
        }


def sort_key(finding: Finding) -> tuple[str, int, int, str]:
    """Stable presentation order: by file, then location, then code."""
    return (finding.path, finding.line, finding.col, finding.code)
