"""The per-file driver: discovery, parsing, rule dispatch, filtering.

One pass per file: parse once, hand the shared :class:`FileContext` to
every rule whose ``applies_to`` accepts the path, then post-process —
inline suppressions first (marking which were used, so unused ones
become ``R9`` findings), then the baseline subtraction.  Unparseable
files yield a single ``P0`` finding instead of a crash: a lint gate that
dies on the code it is gating is useless in CI.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.errors import ReproError
from repro.lintkit.baseline import apply_baseline, load_baseline
from repro.lintkit.context import FileContext
from repro.lintkit.findings import ERROR, Finding, sort_key
from repro.lintkit.registry import Rule, all_rules
from repro.lintkit.suppress import (
    apply_suppressions,
    scan_suppressions,
    unused_suppression_findings,
)

#: Engine code for files the parser rejects.
PARSE_ERROR_CODE = "P0"

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".pytest_cache"})


class LintPathError(ReproError):
    """A path passed to the linter does not exist."""


def discover_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            files.add(path)
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    files.add(candidate)
        else:
            raise LintPathError(f"no such file or directory: {path}")
    return sorted(files)


def lint_file(
    path: str | Path, rules: Iterable[Rule] | None = None
) -> list[Finding]:
    """All findings for one file, inline suppressions already applied."""
    path = Path(path)
    posix = path.as_posix()
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [
            Finding(
                path=posix,
                line=1,
                col=1,
                code=PARSE_ERROR_CODE,
                message=f"cannot read file: {exc}",
                severity=ERROR,
            )
        ]
    try:
        tree = ast.parse(source, filename=posix)
    except SyntaxError as exc:
        return [
            Finding(
                path=posix,
                line=exc.lineno or 1,
                col=(exc.offset or 1),
                code=PARSE_ERROR_CODE,
                message=f"syntax error: {exc.msg}",
                severity=ERROR,
            )
        ]
    ctx = FileContext(path=posix, source=source, tree=tree)
    if rules is None:
        rules = all_rules().values()
    findings: list[Finding] = []
    for rule in rules:
        if rule.applies_to(ctx.posix):
            findings.extend(rule.check(ctx))
    suppressions = scan_suppressions(source)
    findings = apply_suppressions(findings, suppressions)
    findings.extend(unused_suppression_findings(ctx, suppressions))
    return findings


def lint_paths(
    paths: Sequence[str | Path],
    select: set[str] | None = None,
    ignore: set[str] | None = None,
    baseline_path: str | Path | None = None,
) -> list[Finding]:
    """Lint files/directories and return the filtered, sorted findings.

    ``select`` keeps only the given rule codes; ``ignore`` drops them
    (select wins when both name a code).  ``baseline_path`` subtracts a
    recorded baseline and surfaces its stale entries as ``B1``.
    """
    rules = list(all_rules().values())
    findings: list[Finding] = []
    for path in discover_files(paths):
        findings.extend(lint_file(path, rules))
    if select:
        findings = [f for f in findings if f.code in select]
    if ignore:
        findings = [f for f in findings if f.code not in ignore]
    if baseline_path is not None:
        baseline = load_baseline(baseline_path)
        findings = apply_baseline(findings, baseline, str(baseline_path))
    return sorted(findings, key=sort_key)


def has_errors(findings: Iterable[Finding], strict: bool = False) -> bool:
    """Gate outcome: any error finding (or any finding under strict)."""
    if strict:
        return any(True for _ in findings)
    return any(f.severity == ERROR for f in findings)
