"""Baseline files: grandfather known findings without silencing new ones.

A baseline is a JSON file of finding fingerprints (``path``, ``code``,
``message`` — no line numbers, so edits elsewhere in a file do not
invalidate entries).  ``--write-baseline`` records the current findings;
``--baseline`` subtracts them on later runs.  Stale entries — baselined
findings that no longer occur — are reported as ``B1`` errors, the
baseline-file analogue of rule R9: an exception that outlived its code
must be deleted, not silently kept.

This repository ships *no* baseline: the tree is lint-clean, and the
mechanism exists so future PRs can stage large rule additions.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.errors import ReproError
from repro.lintkit.findings import ERROR, Finding, sort_key

_VERSION = 1

#: Engine code for stale baseline entries.
STALE_CODE = "B1"


class BaselineError(ReproError):
    """A baseline file is missing, unreadable or malformed."""


Fingerprint = tuple[str, str, str]


def write_baseline(path: str | Path, findings: list[Finding]) -> None:
    """Record the fingerprints of ``findings`` as the new baseline."""
    entries = [
        {"path": f.path, "code": f.code, "message": f.message}
        for f in sorted(findings, key=sort_key)
    ]
    payload = {"version": _VERSION, "entries": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def load_baseline(path: str | Path) -> Counter[Fingerprint]:
    """Load a baseline as a multiset of fingerprints."""
    try:
        payload = json.loads(Path(path).read_text())
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != _VERSION:
        raise BaselineError(
            f"baseline {path} has unsupported format "
            f"(expected version {_VERSION})"
        )
    counts: Counter[Fingerprint] = Counter()
    for entry in payload.get("entries", []):
        try:
            counts[(entry["path"], entry["code"], entry["message"])] += 1
        except (TypeError, KeyError) as exc:
            raise BaselineError(
                f"baseline {path} entry {entry!r} lacks path/code/message"
            ) from exc
    return counts


def apply_baseline(
    findings: list[Finding],
    baseline: Counter[Fingerprint],
    baseline_path: str,
) -> list[Finding]:
    """Subtract baselined findings; surface stale entries as B1 errors."""
    remaining = Counter(baseline)
    kept: list[Finding] = []
    for finding in findings:
        fp = finding.fingerprint()
        if remaining.get(fp, 0) > 0:
            remaining[fp] -= 1
            continue
        kept.append(finding)
    for (f_path, code, message), count in sorted(remaining.items()):
        if count <= 0:
            continue
        kept.append(
            Finding(
                path=baseline_path,
                line=1,
                col=1,
                code=STALE_CODE,
                message=(
                    f"stale baseline entry ({count}x): {f_path}: {code}: "
                    f"{message}"
                ),
                severity=ERROR,
                fix_hint="regenerate with --write-baseline",
            )
        )
    return kept
