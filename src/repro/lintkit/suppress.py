"""Inline suppressions: ``# lint: ignore[R3]`` comments.

A finding is suppressed when a comment on its line names its rule code:

.. code-block:: python

    return self.lows == other.lows  # lint: ignore[R1] -- exact identity

Several codes may be listed (``# lint: ignore[R1,R5]``); anything after
``--`` is a free-form justification, which this codebase requires for
every suppression it ships.  Suppressions that suppress nothing are
themselves findings (rule ``R9``), so baselined exceptions cannot
outlive the code they excused.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Iterator

from repro.lintkit.context import FileContext
from repro.lintkit.findings import Finding
from repro.lintkit.registry import Rule, register

_IGNORE_RE = re.compile(r"#\s*lint:\s*ignore\[([A-Za-z0-9,\s]+)\]")


@dataclass
class Suppression:
    """One ``lint: ignore`` comment and the codes it has absorbed."""

    line: int
    codes: tuple[str, ...]
    used: set[str] = field(default_factory=set)

    def unused_codes(self) -> list[str]:
        """The listed codes that suppressed no finding."""
        return [c for c in self.codes if c not in self.used]


def scan_suppressions(source: str) -> dict[int, Suppression]:
    """Parse every ``lint: ignore`` comment, keyed by line number.

    Tokenises rather than regex-scanning raw lines so the marker is only
    honoured in real comments, never inside string literals.
    """
    found: dict[int, Suppression] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _IGNORE_RE.search(tok.string)
            if match is None:
                continue
            codes = tuple(
                c.strip().upper() for c in match.group(1).split(",") if c.strip()
            )
            if codes:
                found[tok.start[0]] = Suppression(line=tok.start[0], codes=codes)
    except tokenize.TokenError:  # pragma: no cover - driver parses first
        pass  # unparseable tail; the parse-error finding covers it
    return found


def apply_suppressions(
    findings: list[Finding], suppressions: dict[int, Suppression]
) -> list[Finding]:
    """Drop findings matched by a same-line suppression, marking it used.

    ``R9`` findings (unused suppressions) are never themselves
    suppressible — that would defeat the rot check.
    """
    kept: list[Finding] = []
    for finding in findings:
        suppression = suppressions.get(finding.line)
        if (
            suppression is not None
            and finding.code != UnusedSuppression.code
            and finding.code in suppression.codes
        ):
            suppression.used.add(finding.code)
            continue
        kept.append(finding)
    return kept


@register
class UnusedSuppression(Rule):
    """R9 — a ``lint: ignore`` comment whose codes suppressed nothing.

    Emitted by the driver after suppression matching (a rule cannot see
    other rules' findings); the class exists so the code shows up in
    ``--list-rules`` and validates in ``--select``/``--ignore``.
    """

    code = "R9"
    name = "unused lint suppression"
    fix_hint = "delete the stale ignore comment, or narrow its codes"

    def applies_to(self, posix: str) -> bool:
        return False  # driven by the driver, not the per-rule loop

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())


def unused_suppression_findings(
    ctx: FileContext, suppressions: dict[int, Suppression]
) -> list[Finding]:
    """R9 findings for every suppression code that matched no finding."""
    rule = UnusedSuppression()
    out: list[Finding] = []
    for suppression in suppressions.values():
        for code in suppression.unused_codes():
            out.append(
                Finding(
                    path=ctx.posix,
                    line=suppression.line,
                    col=1,
                    code=rule.code,
                    message=f"suppression of {code} suppressed no finding",
                    severity=rule.severity,
                    fix_hint=rule.fix_hint,
                )
            )
    return out
