"""Command-line entry point: ``python -m repro.lintkit`` / ``repro lint``.

::

    python -m repro.lintkit src/repro tests          # gate: exit 1 on errors
    python -m repro.lintkit src --format json        # machine-readable
    python -m repro.lintkit src --select R1,R7       # only some rules
    python -m repro.lintkit src --write-baseline lint-baseline.json
    python -m repro.lintkit src --baseline lint-baseline.json
    python -m repro.lintkit --list-rules
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.errors import ReproError
from repro.lintkit.baseline import write_baseline
from repro.lintkit.driver import has_errors, lint_paths
from repro.lintkit.output import FORMATS, JSON, TEXT, render_json, render_text
from repro.lintkit.registry import all_rules, resolve_codes


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lintkit",
        description=(
            "Domain-aware static analysis for the BV-tree codebase "
            "(rule catalogue: docs/STATIC_ANALYSIS.md)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to analyse"
    )
    parser.add_argument(
        "--format", choices=FORMATS, default=TEXT, help="output format"
    )
    parser.add_argument(
        "--select",
        default="",
        metavar="CODES",
        help="comma-separated rule codes to run exclusively (e.g. R1,R7)",
    )
    parser.add_argument(
        "--ignore",
        default="",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="subtract a recorded baseline; stale entries become B1 errors",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="record the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on warnings too, not only errors",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for code, rule in all_rules().items():
        lines.append(f"{code}  [{rule.severity}]  {rule.name}")
        if rule.fix_hint:
            lines.append(f"      fix: {rule.fix_hint}")
    lines.append("P0  [error]  file cannot be parsed")
    lines.append("B1  [error]  stale baseline entry")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """Run the linter; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    if not args.paths:
        print("error: no paths given (try --help)", file=sys.stderr)
        return 2
    try:
        select = resolve_codes(args.select.split(",")) if args.select else None
        ignore = resolve_codes(args.ignore.split(",")) if args.ignore else None
        findings = lint_paths(
            args.paths,
            select=select,
            ignore=ignore,
            baseline_path=args.baseline,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        write_baseline(args.write_baseline, findings)
        print(
            f"wrote {len(findings)} finding(s) to baseline "
            f"{args.write_baseline}"
        )
        return 0
    if args.format == JSON:
        print(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if has_errors(findings, strict=args.strict) else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
