"""Plain-text table rendering for benchmark output.

The benchmark modules print the same rows/series the paper's figures and
analysis report, so a run's output can be compared against the paper (and
against EXPERIMENTS.md) by eye.
"""

from __future__ import annotations

from typing import Any, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned fixed-width table."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in cells), 1)
        if cells
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
