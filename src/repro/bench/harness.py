"""Benchmark harness: build any index over any workload, measure costs.

All structures share the same protocol surface (``insert``, ``get``,
range queries and occupancy introspection), so the experiment modules in
``benchmarks/`` can sweep over structures with one code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.baselines import BangFile, KDBTree, LSDTree, ZOrderBTree
from repro.core.tree import BVTree
from repro.errors import ReproError
from repro.geometry.space import DataSpace

#: The comparable point-index structures, by short name.
INDEX_KINDS: dict[str, Callable[..., Any]] = {
    "bv": BVTree,
    "zorder": ZOrderBTree,
    "kdb": KDBTree,
    "bang": BangFile,
    "lsd": LSDTree,
}


def build_index(
    kind: str,
    space: DataSpace,
    points: Iterable[tuple[float, ...]],
    data_capacity: int = 16,
    fanout: int = 16,
    **kwargs: Any,
) -> Any:
    """Construct an index of the given kind and bulk-load the points."""
    try:
        factory = INDEX_KINDS[kind]
    except KeyError:
        raise ReproError(
            f"unknown index kind {kind!r}; choose from {sorted(INDEX_KINDS)}"
        ) from None
    if kind == "zorder":
        index = factory(
            space, leaf_capacity=data_capacity, fanout=fanout, **kwargs
        )
    else:
        index = factory(
            space, data_capacity=data_capacity, fanout=fanout, **kwargs
        )
    for i, point in enumerate(points):
        index.insert(point, i, replace=True)
    return index


def search_cost(index: Any, point: Sequence[float]) -> int:
    """Pages visited by one exact-match search, uniformly across kinds."""
    if isinstance(index, BVTree):
        return index.search(point).nodes_visited
    return index.search_cost(point)


@dataclass
class OccupancySummary:
    """Occupancy distribution of one page population."""

    count: int
    minimum: int
    mean: float
    fill_min: float
    fill_mean: float


def occupancy_summary(sizes: Sequence[int], capacity: int) -> OccupancySummary:
    """Summarise page occupancies against a capacity."""
    if not sizes:
        return OccupancySummary(0, 0, 0.0, 0.0, 0.0)
    mean = sum(sizes) / len(sizes)
    return OccupancySummary(
        count=len(sizes),
        minimum=min(sizes),
        mean=mean,
        fill_min=min(sizes) / capacity,
        fill_mean=mean / capacity,
    )


def index_occupancies(index: Any) -> tuple[list[int], list[int]]:
    """(data page sizes, index node sizes) for any structure."""
    if isinstance(index, BVTree):
        stats = index.tree_stats()
        return stats.data_occupancies, stats.index_occupancies
    if isinstance(index, ZOrderBTree):
        return index.tree.node_occupancies()
    return index.occupancies()
