"""Shared benchmark support: index construction and table reporting."""

from repro.bench.harness import (
    INDEX_KINDS,
    build_index,
    occupancy_summary,
    search_cost,
)
from repro.bench.reporting import format_table

__all__ = [
    "INDEX_KINDS",
    "build_index",
    "format_table",
    "occupancy_summary",
    "search_cost",
]
