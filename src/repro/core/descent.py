"""Descent machinery: exact-match location with guard sets (paper §3).

The exact-match search descends the index tree from root to leaf, but it
operates on the *partition hierarchy*: at a node of index level ``L`` the
next hop is decided at partition level ``L - 1``, among the node's
unpromoted entries and the level-``L - 1`` member of the guard set carried
down from above.  In-node guards of lower levels join the guard set for use
further down.  Because the next hop is always exactly one partition level
down, **every descent visits exactly ``height + 1`` pages** even though the
index tree is unbalanced — the paper's §6 resolution of the "unbalanced
balanced tree" paradox.

The same stepping rule locates index entries by their region keys (a key is
just a short bit path), which is how update operations find the node that
physically stores an entry — the paper's "single direct descent of the
index tree" for demotions (§4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import TreeInvariantError
from repro.core.columnar import locate_columnar
from repro.core.entry import Entry
from repro.core.guards import GuardSet
from repro.core.node import IndexNode
from repro.obs.events import DESCENT_STEP, GUARD_HIT
from repro.obs.tracer import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.tree import BVTree


@dataclass
class Locate:
    """Result of locating the data page responsible for a bit path.

    ``owner_page`` is the page of the index node physically storing the
    winning level-0 entry (``None`` when the whole tree is one data page).
    """

    entry: Entry
    owner_page: int | None
    guards: GuardSet
    nodes_visited: int
    max_guard_set: int


def step(
    node: IndexNode,
    node_page: int,
    path: int,
    path_bits: int,
    guards: GuardSet,
    tracer: Tracer | None = None,
) -> tuple[Entry, int]:
    """One descent step: pick the next hop at partition level ``L - 1``.

    Merges the node's matching guards into ``guards``, then compares the
    best-matching native entry with the carried guard of level ``L - 1``
    (which is consumed here — it has returned to its original partition
    level).  Returns the winning entry and the page of the node storing it.

    ``tracer`` (enabled) records each matching guard as a ``guard_hit``;
    the untraced path passes ``None`` and pays nothing.
    """
    if tracer is None:
        for guard in node.matching_guards(path, path_bits):
            guards.merge(guard, node_page)
    else:
        for guard in node.matching_guards(path, path_bits):
            guards.merge(guard, node_page)
            tracer.emit(
                GUARD_HIT,
                level=guard.level,
                key=guard.key.bit_string(),
                node_page=node_page,
            )
    native = node.best_native_match(path, path_bits)
    carried = guards.consume(node.index_level - 1)
    if native is None and carried is None:
        raise TreeInvariantError(
            f"no entry of level {node.index_level - 1} covers the search "
            f"path at index level {node.index_level}"
        )
    if carried is None:
        return native, node_page
    if native is None:
        return carried
    guard_entry, guard_owner = carried
    if guard_entry.key.nbits == native.key.nbits:
        raise TreeInvariantError(
            f"native {native!r} and guard {guard_entry!r} have keys of equal "
            f"length on one path: same-level keys must be unique"
        )
    if guard_entry.key.nbits > native.key.nbits:
        return guard_entry, guard_owner
    return native, node_page


def locate(tree: "BVTree", path: int) -> Locate:
    """Descend from the root to the data page responsible for ``path``."""
    path_bits = tree.space.path_bits
    tracer = tree.tracer
    # Columnar trees take the fused column descent (same pages, same
    # winners, same errors — see locate_columnar); the traced path always
    # goes through step() so guard_hit events keep their one emitter.
    if (
        not tracer.enabled
        and tree.layout == "columnar"
        and tree.height > 0
    ):
        entry, owner, guard_map, max_guards = locate_columnar(tree, path)
        return Locate(
            entry=entry,
            owner_page=owner,
            guards=GuardSet.adopt(guard_map),
            nodes_visited=tree.height + 1,
            max_guard_set=max_guards,
        )
    entry = tree.root_entry()
    owner_page: int | None = None
    guards = GuardSet()
    nodes_visited = 0
    max_guard_set = 0
    read = tree.store.read
    # Hoisted once: the untraced loop below pays one local-bool branch
    # per level, which is the whole "zero overhead when disabled" budget.
    step_tracer = tracer if tracer.enabled else None
    while entry.level > 0:
        node_page = entry.page
        node: IndexNode = read(node_page)
        if node.index_level != entry.level:
            raise TreeInvariantError(
                f"entry of level {entry.level} points at node of index "
                f"level {node.index_level}"
            )
        nodes_visited += 1
        entry, owner_page = step(
            node, node_page, path, path_bits, guards, step_tracer
        )
        max_guard_set = max(max_guard_set, len(guards))
        if step_tracer is not None:
            step_tracer.emit(
                DESCENT_STEP,
                level=node.index_level,
                node_page=node_page,
                chosen_level=entry.level,
                key=entry.key.bit_string(),
                via="guard" if owner_page != node_page else "native",
                guard_set=len(guards),
            )
    return Locate(
        entry=entry,
        owner_page=owner_page,
        guards=guards,
        nodes_visited=nodes_visited + 1,  # count the data page itself
        max_guard_set=max_guard_set,
    )


def find_owner(tree: "BVTree", entry: Entry) -> int | None:
    """The page of the index node physically storing ``entry``.

    Returns ``None`` if ``entry`` is the tree's virtual root entry.  The
    lookup is a single root-to-owner descent along the entry's region key,
    using the same stepping rule as exact-match search; it is re-computed
    on demand rather than cached because splits and demotions move entries
    between nodes.
    """
    if entry.page == tree.root_page and entry.level == tree.height:
        return None
    current = tree.root_entry()
    guards = GuardSet()
    while True:
        if current.level <= entry.level:
            raise TreeInvariantError(
                f"owner descent for {entry!r} fell through to level "
                f"{current.level} without finding the entry"
            )
        node_page = current.page
        node: IndexNode = tree.store.read(node_page)
        for candidate in node.entries:
            if candidate is entry:
                return node_page
        current, _ = step(
            node, node_page, entry.key.value, entry.key.nbits, guards
        )
