"""Node capacity policies: uniform vs level-scaled index pages (paper §7).

The paper analyses two configurations:

- **uniform** (§7.1/§7.2): every index page holds at most ``F`` entries,
  guards included.  Promoted subtrees then eat into the fan-out, and the
  worst-case data capacity of a height-``h`` tree drops by a factor of
  ``h!`` (equation 5).
- **scaled** (§7.3): an index page at index level ``x`` is ``x`` times
  larger — room for ``F`` unpromoted entries plus ``F·(x-1)`` guards — and
  the worst-case capacity returns to the best-case ``F^h`` (equation 12)
  at a negligible cost in total index size (equation 18).
"""

from __future__ import annotations

from repro.errors import TreeInvariantError
from repro.core.node import IndexNode

UNIFORM = "uniform"
SCALED = "scaled"


class CapacityPolicy:
    """Capacity rules for data pages and index nodes.

    Parameters
    ----------
    data_capacity:
        ``P``, the maximum number of points in a data page.
    fanout:
        ``F``, the maximum number of unpromoted entries in an index node.
    kind:
        ``"uniform"`` or ``"scaled"`` (see module docstring).
    page_bytes:
        ``B``, the byte size of a data page and of a level-1 index page;
        used only for storage accounting (§7.3 sizes are ``B·x``).
    """

    __slots__ = ("data_capacity", "fanout", "kind", "page_bytes")

    def __init__(
        self,
        data_capacity: int = 16,
        fanout: int = 16,
        kind: str = SCALED,
        page_bytes: int = 1024,
    ):
        if data_capacity < 2:
            raise TreeInvariantError(
                f"data pages must hold at least 2 points, got {data_capacity}"
            )
        if fanout < 4:
            raise TreeInvariantError(
                f"the fan-out ratio must be at least 4, got {fanout}"
            )
        if kind not in (UNIFORM, SCALED):
            raise TreeInvariantError(f"unknown capacity policy {kind!r}")
        if page_bytes <= 0:
            raise TreeInvariantError(f"page size must be positive, got {page_bytes}")
        self.data_capacity = data_capacity
        self.fanout = fanout
        self.kind = kind
        self.page_bytes = page_bytes

    # ------------------------------------------------------------------
    # Overflow / underflow predicates
    # ------------------------------------------------------------------

    def data_overflows(self, n_records: int) -> bool:
        """True if a data page with this many records must split."""
        return n_records > self.data_capacity

    def data_underflows(self, n_records: int) -> bool:
        """True if a data page has dropped below minimum occupancy."""
        return n_records < self.min_data_occupancy()

    def min_data_occupancy(self) -> int:
        """The guaranteed minimum number of records in a non-root data page.

        A page splits at ``P + 1`` records and the balanced binary split
        leaves each side strictly above a third (module
        :mod:`repro.core.split`); the floor below is the conservative
        integer form of that bound.
        """
        return max(1, -(-(self.data_capacity + 1) // 3) - 1)

    def index_overflows(self, node: IndexNode) -> bool:
        """True if an index node must split under this policy."""
        if self.kind == SCALED:
            return node.native_count() > self.fanout
        return len(node) > self.fanout

    def index_underflows(self, node: IndexNode) -> bool:
        """True if an index node has dropped below minimum occupancy."""
        if self.kind == SCALED:
            return node.native_count() < self.min_index_occupancy()
        return len(node) < self.min_index_occupancy()

    def min_index_occupancy(self) -> int:
        """Guaranteed minimum entry count in a non-root index node.

        The topological limit is one third (paper §6); the additional
        slack covers the entries lost to promotion at a split boundary
        (the guard of the split region moves to the parent, so the
        populations left behind can sit one or two entries below the
        exact third).
        """
        return max(1, -(-(self.fanout + 1) // 3) - 2)

    def index_node_bytes(self, index_level: int) -> int:
        """Byte size of an index page at the given index level (§7.3)."""
        if self.kind == SCALED:
            return self.page_bytes * index_level
        return self.page_bytes

    def size_class(self, index_level: int) -> int:
        """Storage size class for an index node (0 is the data-page class)."""
        if self.kind == SCALED:
            return index_level
        return 1

    def __repr__(self) -> str:
        return (
            f"CapacityPolicy(P={self.data_capacity}, F={self.fanout}, "
            f"kind={self.kind!r})"
        )
