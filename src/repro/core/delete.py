"""Deletion: merging and redistribution (paper §5).

The paper's observation is that deletion reduces to the same machinery as
insertion: an underflowing region merges with a partner, and if the merged
population overflows it is re-split by the ordinary balanced split — which
is redistribution with the 1/3 guarantee built in.

Partner choice follows §5's rule: "if there exists an r_x which directly
encloses s_x, then r_x and s_x can merge"; else a region the underflowing
one directly encloses; else the buddy (the sibling half of its block).
Direct enclosure is evaluated *canonically* against the tree's key
registry: the partner is the longest same-level proper prefix anywhere in
the tree, with no key in between.

The subtlety the paper leaves to [Fre94] is that **merging grows the
surviving region's extent**: the dropped key may have shadowed the
survivor with respect to a higher-level region, and without that shadow
the survivor now straddles the higher region's boundary.  The dual of §4's
demotion applies — the survivor is re-placed by the canonical placement
walk, lodging as a guard at the branch point it now straddles, *before*
the victim's population is handed over.  Merges that would leave a node
without native entries are deferred instead (counted in
``stats.deferred_merges``); they are retried whenever the page underflows
again.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

from repro.errors import KeyNotFoundError, TreeInvariantError
from repro.core.descent import find_owner, locate, step
from repro.core.entry import Entry
from repro.core.guards import GuardSet
from repro.core.insert import _check_overflow, _place_guard, split_data_page
from repro.core.node import DataPage, IndexNode
from repro.core.placement import canonical_encloser, placement_walk
from repro.obs.events import MERGE, REDISTRIBUTE

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.tree import BVTree


def delete_point(tree: "BVTree", point: Sequence[float]) -> Any:
    """Remove the record at ``point``; merge the page if it underflows."""
    path = tree.space.point_path(point)
    found = locate(tree, path)
    page: DataPage = tree.store.read(found.entry.page)
    record = page.get(path)
    if record is None:
        raise KeyNotFoundError(f"no record at {tuple(point)}")
    page.delete(path)
    tree.store.write(found.entry.page, page)
    tree.stats.deletes += 1
    tree.count -= 1
    if found.entry.page != tree.root_page and tree.policy.data_underflows(
        len(page)
    ):
        _merge_region(tree, found.entry)
    _retry_deferred(tree)
    return record[1]


def _retry_deferred(tree: "BVTree", budget: int = 2) -> None:
    """Re-attempt a few previously deferred merges.

    A merge defers when its moment is wrong (the victim carried its node's
    whole partition, or no safe partner existed *yet*); later deletions
    usually unblock it.  Without retries an empty page whose merge was
    deferred would linger forever, since merges are only triggered by
    deletions that touch a page.
    """
    for _ in range(budget):
        if not tree.merge_retry:
            return
        level, key = tree.merge_retry.pop()
        entry = tree.registered(level, key)
        if entry is None:
            continue
        if level == 0:
            page = tree.store.read(entry.page)
            if entry.page != tree.root_page and tree.policy.data_underflows(
                len(page)
            ):
                _merge_region(tree, entry)
        else:
            node = tree.store.read(entry.page)
            if tree.policy.index_underflows(node):
                _merge_region(tree, entry)


# ----------------------------------------------------------------------
# Merge orchestration
# ----------------------------------------------------------------------


def _merge_region(tree: "BVTree", entry: Entry, depth: int = 0) -> None:
    """Merge an underflowing region with a partner (data or index level)."""
    if depth > 4:  # safety bound; repeated merges converge long before this
        return
    encloser = canonical_encloser(tree, entry.level, entry.key)
    if encloser is not None and _try_absorb(tree, encloser, entry, depth):
        return
    hole = _find_hole(tree, entry)
    if hole is not None and _try_absorb(tree, entry, hole, depth):
        return
    if _try_merge_buddies(tree, entry, depth):
        return
    if encloser is not None and _merge_owner_then_retry(tree, entry, depth):
        return
    tree.stats.deferred_merges += 1
    tree.merge_retry.add((entry.level, entry.key))


def _merge_owner_then_retry(tree: "BVTree", entry: Entry, depth: int) -> bool:
    """Unblock a last-native victim by merging its node's region first.

    When ``entry`` cannot be absorbed because it carries its node's whole
    partition, merging the node's own region re-homes ``entry`` into the
    enclosing node, after which the absorb can be retried.
    """
    owner_page = find_owner(tree, entry)
    if owner_page is None or owner_page == tree.root_page:
        return False
    owner_entry = _entry_of(tree, owner_page)
    if owner_entry is None:
        return False
    _merge_region(tree, owner_entry, depth + 1)
    encloser = canonical_encloser(tree, entry.level, entry.key)
    return encloser is not None and _try_absorb(
        tree, encloser, entry, depth + 1
    )


def _find_hole(tree: "BVTree", entry: Entry) -> Entry | None:
    """A same-level region whose canonical direct encloser is ``entry``."""
    best: Entry | None = None
    for key, candidate in tree.keys.get(entry.level, {}).items():
        if candidate is entry or not entry.key.encloses(key):
            continue
        if best is not None and best.key.nbits <= key.nbits:
            continue
        if canonical_encloser(tree, entry.level, key) is entry:
            best = candidate
    return best


# ----------------------------------------------------------------------
# Absorption (encloser and hole merges)
# ----------------------------------------------------------------------


def _try_absorb(
    tree: "BVTree", into: Entry, victim: Entry, depth: int, force: bool = False
) -> bool:
    """Absorb ``victim`` into its canonical direct encloser ``into``.

    Returns False (tree unchanged) when a safety check fails.  Order of
    operations matters: the victim's key leaves the registry first, so
    the placement walk sees the post-merge key set; the survivor is moved
    to its new canonical position next (over-placement is benign while
    the victim entry still routes its own records); only then does the
    population move and the victim entry disappear.
    """
    victim_owner = find_owner(tree, victim)
    if victim_owner is None:
        raise TreeInvariantError("cannot absorb the root region")
    if not force and not _safe_to_drop(tree, victim, victim_owner):
        return False
    tree.unregister_entry(victim)
    into_owner = find_owner(tree, into)
    target_page, _ = placement_walk(tree, into.key, into.level)
    if target_page != into_owner and not _safe_to_detach(
        tree, into, into_owner
    ):
        tree.register_entry(victim)  # roll back
        return False

    if target_page != into_owner:
        owner_node: IndexNode = tree.store.read(into_owner)
        owner_node.remove(into)
        tree.store.write(into_owner, owner_node)
        _place_guard(tree, into)
        # Re-placing ``into`` can cascade splits that move the victim's
        # entry; re-verify the drop against its *current* owner.  On
        # failure the merge aborts: the victim returns to the registry,
        # and ``into``'s (over-)placement is left as is — an entry above
        # its canonical node is still found by every search.
        if not force and not _safe_to_drop(
            tree, victim, find_owner(tree, victim)
        ):
            tree.register_entry(victim)
            return False

    tree.stats.merges += 1
    tracer = tree.tracer
    if tracer.structural:
        # Co-located with the stats bump: trace replay must reproduce the
        # OpCounters delta exactly (the integration tests assert this).
        tracer.emit(
            MERGE,
            mode="absorb",
            level=victim.level,
            key=victim.key.bit_string(),
            into_key=into.key.bit_string(),
        )
    if victim.level == 0:
        into_page: DataPage = tree.store.read(into.page)
        victim_page: DataPage = tree.store.read(victim.page)
        into_page.absorb(victim_page)
        tree.store.write(into.page, into_page)
        _remove_entry(tree, victim, find_owner(tree, victim))
        if tree.policy.data_overflows(len(into_page)):
            tree.stats.redistributions += 1
            if tracer.structural:
                tracer.emit(
                    REDISTRIBUTE, level=0, key=into.key.bit_string()
                )
            split_data_page(tree, into)
        elif tree.policy.data_underflows(len(into_page)) and (
            find_owner(tree, into) is not None
        ):
            _merge_region(tree, into, depth + 1)
    else:
        into_node: IndexNode = tree.store.read(into.page)
        victim_node: IndexNode = tree.store.read(victim.page)
        for moved in victim_node.entries:
            into_node.add(moved)
        tree.store.write(into.page, into_node)
        _remove_entry(tree, victim, find_owner(tree, victim))
        if tree.policy.index_overflows(into_node):
            tree.stats.redistributions += 1
            if tracer.structural:
                tracer.emit(
                    REDISTRIBUTE,
                    level=into.level,
                    key=into.key.bit_string(),
                )
            _check_overflow(tree, into.page)
        elif tree.policy.index_underflows(into_node) and (
            find_owner(tree, into) is not None
        ):
            _merge_region(tree, into, depth + 1)
    return True


# ----------------------------------------------------------------------
# Buddy merges
# ----------------------------------------------------------------------


def _try_merge_buddies(tree: "BVTree", entry: Entry, depth: int) -> bool:
    """Fuse ``entry`` with the sibling half of its block, if one exists.

    The two halves tile the parent block exactly, so the merged region's
    extent is precisely their union and no other region's extent changes.
    The merged entry is still placed by the canonical walk: without the
    halves, the parent key may straddle a higher-level key that extends
    one of them.
    """
    if entry.key.nbits == 0:
        return False
    buddy = tree.registered(entry.level, entry.key.sibling())
    if buddy is None:
        return False
    parent_key = entry.key.parent()
    if tree.registered(entry.level, parent_key) is not None:
        return False
    entry_owner = find_owner(tree, entry)
    buddy_owner = find_owner(tree, buddy)
    if entry_owner is None or buddy_owner is None:
        return False
    if not _safe_to_drop(tree, buddy, buddy_owner):
        return False

    tree.unregister_entry(entry)
    tree.unregister_entry(buddy)
    target_page, as_guard = placement_walk(tree, parent_key, entry.level)
    # The merged entry replaces the halves; check no owner is emptied.
    losses: dict[int, int] = {}
    for half, owner_page in ((entry, entry_owner), (buddy, buddy_owner)):
        node: IndexNode = tree.store.read(owner_page)
        if half.level == node.index_level - 1:
            losses[owner_page] = losses.get(owner_page, 0) + 1
    for owner_page, lost in losses.items():
        node = tree.store.read(owner_page)
        gained = 1 if (target_page == owner_page and not as_guard) else 0
        if node.native_count() - lost + gained < 1:
            tree.register_entry(entry)
            tree.register_entry(buddy)
            return False

    tree.stats.merges += 1
    tracer = tree.tracer
    if tracer.structural:
        tracer.emit(
            MERGE,
            mode="buddy",
            level=entry.level,
            key=buddy.key.bit_string(),
            into_key=parent_key.bit_string(),
        )
    for half, owner_page in ((entry, entry_owner), (buddy, buddy_owner)):
        node = tree.store.read(owner_page)
        node.remove(half)
        tree.store.write(owner_page, node)
    if entry.level == 0:
        page: DataPage = tree.store.read(entry.page)
        buddy_page: DataPage = tree.store.read(buddy.page)
        page.absorb(buddy_page)
        tree.store.write(entry.page, page)
    else:
        node = tree.store.read(entry.page)
        buddy_node: IndexNode = tree.store.read(buddy.page)
        for moved in buddy_node.entries:
            node.add(moved)
        tree.store.write(entry.page, node)
    tree.store.free(buddy.page)
    merged = Entry(parent_key, entry.level, entry.page)
    tree.register_entry(merged)
    _place_guard(tree, merged)
    for owner_page in {entry_owner, buddy_owner}:
        _after_removal(tree, owner_page)
    if merged.level == 0:
        page = tree.store.read(merged.page)
        if tree.policy.data_overflows(len(page)):
            tree.stats.redistributions += 1
            if tracer.structural:
                tracer.emit(
                    REDISTRIBUTE, level=0, key=merged.key.bit_string()
                )
            split_data_page(tree, merged)
    else:
        node = tree.store.read(merged.page)
        if tree.policy.index_overflows(node):
            tree.stats.redistributions += 1
            if tracer.structural:
                tracer.emit(
                    REDISTRIBUTE,
                    level=merged.level,
                    key=merged.key.bit_string(),
                )
            _check_overflow(tree, merged.page)
    return True


# ----------------------------------------------------------------------
# Shared plumbing
# ----------------------------------------------------------------------


def _safe_to_drop(tree: "BVTree", victim: Entry, owner_page: int) -> bool:
    """True if removing ``victim`` cannot empty its node of natives."""
    owner: IndexNode = tree.store.read(owner_page)
    if victim.level < owner.index_level - 1:
        return True  # guards do not carry a node's partition
    return owner.native_count() >= 2


def _safe_to_detach(tree: "BVTree", entry: Entry, owner_page: int) -> bool:
    """True if moving ``entry`` away cannot empty its node of natives."""
    return _safe_to_drop(tree, entry, owner_page)


def _remove_entry(tree: "BVTree", victim: Entry, owner_page: int) -> None:
    """Remove an already-unregistered entry, free its page, handle underflow."""
    owner: IndexNode = tree.store.read(owner_page)
    owner.remove(victim)
    tree.store.free(victim.page)
    tree.store.write(owner_page, owner)
    _after_removal(tree, owner_page)


def _after_removal(tree: "BVTree", node_page: int) -> None:
    """Shrink the root or merge an index node after an entry was removed."""
    _shrink_root(tree)
    if node_page not in tree.store:
        return  # the node was the root and has been collapsed away
    node: IndexNode = tree.store.read(node_page)
    if node_page == tree.root_page:
        return
    if node.native_count() == 0:
        _dissolve(tree, node_page)
        return
    if tree.policy.index_underflows(node):
        entry = _entry_of(tree, node_page)
        if entry is not None:
            _merge_region(tree, entry)



def _dissolve(tree: "BVTree", node_page: int) -> None:
    """Remove a node whose region lost its whole partition.

    All of the node's native sub-regions were absorbed by regions outside
    it, so the region itself must merge away too: its remaining entries
    (guards, if any) move into its canonical encloser's node and its own
    entry disappears — recursively, since that removal can empty the next
    node up.  ``force=True`` bypasses the last-native deferral: deferring
    here would leave a node no search can pass through.

    When no same-level encloser exists, a hole or buddy merge restores
    the node's natives instead (the region swallows a region it encloses).
    """
    entry = _entry_pointing_at(tree, node_page)
    if entry is None:
        raise TreeInvariantError(
            f"native-empty node {node_page} has no entry (root corruption)"
        )
    encloser = canonical_encloser(tree, entry.level, entry.key)
    if encloser is not None and _try_absorb(
        tree, encloser, entry, depth=0, force=True
    ):
        return
    hole = _find_hole(tree, entry)
    if hole is not None and _try_absorb(tree, entry, hole, depth=0):
        return
    if _try_merge_buddies(tree, entry, depth=0):
        return
    raise TreeInvariantError(
        f"cannot dissolve native-empty node {node_page} ({entry!r})"
    )


def _entry_pointing_at(tree: "BVTree", page: int) -> Entry | None:
    """The entry whose subtree root is ``page`` (full scan; rare path)."""
    stack = [tree.root_entry()]
    while stack:
        current = stack.pop()
        if current.level == 0:
            continue
        node: IndexNode = tree.store.read(current.page)
        for child in node.entries:
            if child.page == page:
                return child
            stack.append(child)
    return None

def _shrink_root(tree: "BVTree") -> None:
    """Collapse trivial roots: a root with a single whole-space entry."""
    while tree.height >= 1:
        root: IndexNode = tree.store.read(tree.root_page)
        if len(root.entries) != 1:
            return
        only = root.entries[0]
        if only.level != tree.height - 1 or only.key.nbits != 0:
            return
        tree.unregister_entry(only)  # the region becomes virtual again
        tree.store.free(tree.root_page)
        tree.root_page = only.page
        tree.height -= 1


def _entry_of(tree: "BVTree", node_page: int) -> Entry | None:
    """The entry pointing at ``node_page``, or None for the root."""
    if node_page == tree.root_page:
        return None
    node: IndexNode = tree.store.read(node_page)
    probe = min(node.entries, key=lambda e: e.key.nbits)
    current = tree.root_entry()
    guards = GuardSet()
    while current.level > 0:
        if current.page == node_page:
            return current
        parent: IndexNode = tree.store.read(current.page)
        current, _ = step(
            parent, current.page, probe.key.value, probe.key.nbits, guards
        )
    raise TreeInvariantError(f"entry of node {node_page} not found")
