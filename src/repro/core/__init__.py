"""The BV-tree — the paper's primary contribution.

A BV-tree indexes points of an n-dimensional :class:`~repro.geometry.DataSpace`
with the characteristics of the one-dimensional B-tree, as far as is
topologically possible (Freeston, SIGMOD 1995):

- every exact-match search and every update touches exactly
  ``height + 1`` pages (the index tree may be unbalanced, but the
  *partition hierarchy* it represents is not);
- both data and index pages keep a guaranteed minimum occupancy of
  one third;
- a single insertion never cascades: a split affects one node and its
  parent chain only, never the subtrees below.

The trick is *promotion*: when an index-node split boundary would cut a
lower-level region, that region's entry moves up into the parent node as a
**guard** instead of being split.  Searches carry a **guard set** down the
tree, which re-constitutes the partition hierarchy on the fly.

Public entry point: :class:`~repro.core.tree.BVTree`.
"""

from repro.core.columnar import ColumnarDataPage, ColumnarIndexNode
from repro.core.entry import Entry
from repro.core.node import DataPage, IndexNode
from repro.core.policy import CapacityPolicy
from repro.core.tree import BVTree

__all__ = [
    "BVTree",
    "CapacityPolicy",
    "ColumnarDataPage",
    "ColumnarIndexNode",
    "DataPage",
    "Entry",
    "IndexNode",
]
