"""Range and partial-match queries.

A range query visits every entry whose *block* intersects the query box.
Because each data page is reachable through exactly one entry, no page is
visited twice and no guard-set logic is needed; holey-region semantics only
means a visited block may contain points owned by deeper regions, which the
per-record filter handles.  The visit count is the range-query cost metric
used in the [KSS+90]-style comparison against Z-order linearisation: the
BV-tree's region set contracts to the occupied part of the space, which is
exactly what that study found linear orderings cannot do.

Pruning is *bit-native*: the query box is converted once into per-dimension
integer cell cut-offs (:func:`repro.geometry.bitgrid.query_cell_bounds`)
and every visited block is tested by integer prefix arithmetic on its key —
no float ``Rect`` is allocated per visit.  The integer test is exactly
equivalent to the float one (see :mod:`repro.geometry.bitgrid`), so the
visit set and all page-access counts are identical;
:func:`range_query_rectpath` keeps the original float-rect pruning for
benchmark comparison and as an equivalence oracle in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import GeometryError
from repro.core.node import DataPage, IndexNode
from repro.geometry.bitgrid import (
    key_intersects,
    key_prune_dim,
    query_cell_bounds,
)
from repro.geometry.rect import Rect
from repro.obs.events import QUERY_PRUNE, QUERY_VISIT
from repro.obs.tracer import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.tree import BVTree


@dataclass
class QueryResult:
    """Records found by a query plus its page-access cost."""

    records: list[tuple[tuple[float, ...], Any]] = field(default_factory=list)
    pages_visited: int = 0
    data_pages_visited: int = 0

    def points(self) -> list[tuple[float, ...]]:
        """Just the matching points."""
        return [point for point, _ in self.records]

    def __len__(self) -> int:
        return len(self.records)


def range_query(tree: "BVTree", rect: Rect) -> QueryResult:
    """All records inside the half-open box ``rect``."""
    if rect.ndim != tree.space.ndim:
        raise GeometryError(
            f"query box is {rect.ndim}-d, space is {tree.space.ndim}-d"
        )
    tracer = tree.tracer
    if tracer.enabled:
        # The traced traversal is a separate loop so the untraced one
        # below stays exactly as cheap as the seed's (no per-visit
        # branch beyond this single check).
        return _range_query_traced(tree, rect, tracer)
    if tree.layout == "columnar":
        return _range_query_columnar(tree, rect)
    result = QueryResult()
    space = tree.space
    bounds = query_cell_bounds(space, rect)
    ndim = space.ndim
    resolution = space.resolution
    read = tree.store.read
    contains = rect.contains_point
    stack = [tree.root_entry()]
    while stack:
        entry = stack.pop()
        key = entry.key
        if not key_intersects(key.value, key.nbits, ndim, resolution, bounds):
            continue
        result.pages_visited += 1
        if entry.level == 0:
            result.data_pages_visited += 1
            page: DataPage = read(entry.page)
            for point, value in page.records.values():
                if contains(point):
                    result.records.append((point, value))
        else:
            node: IndexNode = read(entry.page)
            stack.extend(node.entries)
    return result


def _range_query_columnar(tree: "BVTree", rect: Rect) -> QueryResult:
    """The untraced range traversal over columnar pages.

    Same cut-offs and stack discipline as the object loop, but children
    are filtered *before* the push through the node's cached per-entry
    origin/end columns (``2*ndim`` integer compares per child, no per-key
    bit decode), and the per-record box filter runs inline over the flat
    coordinate column.  Filter-before-push and filter-at-pop visit the
    same pages in the same order, so every page-access count matches the
    object layout exactly — the equivalence suite asserts it.
    """
    result = QueryResult()
    space = tree.space
    bounds = query_cell_bounds(space, rect)
    root = tree.root_entry()
    key = root.key
    if not key_intersects(
        key.value, key.nbits, space.ndim, space.resolution, bounds
    ):
        return result
    read = tree.store.read
    records = result.records
    stack = [root]
    while stack:
        entry = stack.pop()
        result.pages_visited += 1
        if entry.level == 0:
            result.data_pages_visited += 1
            read(entry.page).collect_in_rect(rect, records)
        else:
            read(entry.page).push_intersecting(stack, bounds)
    return result


def _range_query_traced(
    tree: "BVTree", rect: Rect, tracer: Tracer
) -> QueryResult:
    """The range traversal with per-block visit/prune events.

    Visits exactly the pages :func:`range_query` would (same cut-offs,
    same stack discipline); a pruned block's event carries the dimension
    whose bitgrid cut-off fired (:func:`key_prune_dim` runs the same
    comparisons as the boolean test).
    """
    result = QueryResult()
    space = tree.space
    bounds = query_cell_bounds(space, rect)
    ndim = space.ndim
    resolution = space.resolution
    read = tree.store.read
    contains = rect.contains_point
    stack = [tree.root_entry()]
    while stack:
        entry = stack.pop()
        key = entry.key
        dim = key_prune_dim(key.value, key.nbits, ndim, resolution, bounds)
        if dim is not None:
            tracer.emit(
                QUERY_PRUNE,
                level=entry.level,
                key=key.bit_string(),
                page=entry.page,
                dim=dim,
            )
            continue
        result.pages_visited += 1
        tracer.emit(
            QUERY_VISIT,
            level=entry.level,
            key=key.bit_string(),
            page=entry.page,
        )
        if entry.level == 0:
            result.data_pages_visited += 1
            page: DataPage = read(entry.page)
            for point, value in page.records.values():
                if contains(point):
                    result.records.append((point, value))
        else:
            node: IndexNode = read(entry.page)
            stack.extend(node.entries)
    return result


def range_query_rectpath(tree: "BVTree", rect: Rect) -> QueryResult:
    """The seed float-rect range query, kept for benchmark comparison.

    Decodes every visited block into a fresh float :class:`Rect`
    (:meth:`~repro.geometry.space.DataSpace.decode_rect`, deliberately
    uncached — the seed had no decode cache) and prunes with
    :meth:`Rect.intersects` — the pre-optimisation hot path.  It visits
    exactly the same pages as :func:`range_query` (the perf harness and
    the tests both assert this), just slower; keeping it callable is
    what lets the ``BENCH_*.json`` trajectory quantify the bit-native
    speedup instead of asserting it.
    """
    if rect.ndim != tree.space.ndim:
        raise GeometryError(
            f"query box is {rect.ndim}-d, space is {tree.space.ndim}-d"
        )
    result = QueryResult()
    space = tree.space
    stack = [tree.root_entry()]
    while stack:
        entry = stack.pop()
        if not space.decode_rect(entry.key).intersects(rect):
            continue
        result.pages_visited += 1
        if entry.level == 0:
            result.data_pages_visited += 1
            page: DataPage = tree.store.read(entry.page)
            for point, value in page.records.values():
                if rect.contains_point(point):
                    result.records.append((point, value))
        else:
            node: IndexNode = tree.store.read(entry.page)
            stack.extend(node.entries)
    return result


def partial_match(tree: "BVTree", constraints: dict[int, float]) -> QueryResult:
    """Records with exact values on a subset of dimensions (paper §1).

    The match granularity is one grid cell of the space's resolution:
    records whose constrained coordinates fall in the same cell as the
    given values match.  Unconstrained dimensions span their full domain.
    """
    space = tree.space
    # Validate the constraint keys before any interval math: a caller
    # constraining a dimension that does not exist must hear about that
    # first, not about whichever per-dimension range problem the loop
    # happens to trip over earlier.
    unknown = set(constraints) - set(range(space.ndim))
    if unknown:
        raise GeometryError(f"constraints on unknown dimensions {sorted(unknown)}")
    if not constraints:
        return range_query(tree, space.whole_rect())
    cells = 1 << space.resolution
    lows: list[float] = []
    highs: list[float] = []
    for dim, (lo, hi) in enumerate(space.bounds):
        if dim in constraints:
            value = constraints[dim]
            if not lo <= value <= hi:
                raise GeometryError(
                    f"constraint {value} on dimension {dim} outside "
                    f"[{lo}, {hi}]"
                )
            span = hi - lo
            g = min(int((value - lo) / span * cells), cells - 1)
            lows.append(lo + g / cells * span)
            highs.append(lo + (g + 1) / cells * span)
        else:
            lows.append(lo)
            highs.append(hi)
    return range_query(tree, Rect(lows, highs))
