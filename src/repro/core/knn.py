"""k-nearest-neighbour search over a BV-tree.

Classic best-first (branch-and-bound) traversal: a priority queue holds
entries ordered by the minimum distance from the query point to their
*block*.  Because every record is stored in exactly one page, visiting an
entry whenever its block could still beat the current k-th best distance
is correct even though enclosing blocks overlap the blocks nested inside
them (holey regions only determine ownership, not placement of blocks).

Not part of the paper's evaluation — an extension the symmetric index
makes natural (the same traversal on a Z-order B-tree would have to
decompose the growing search ball into intervals).
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

from repro.errors import GeometryError, ReproError, TreeInvariantError
from repro.core.node import DataPage, IndexNode
from repro.geometry.bitgrid import key_min_dist_sq
from repro.geometry.rect import Rect
from repro.obs.events import QUERY_PRUNE, QUERY_VISIT

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.tree import BVTree


@dataclass
class Neighbour:
    """One k-NN result."""

    point: tuple[float, ...]
    value: Any
    distance: float


@dataclass
class KNNResult:
    """k-NN results plus the traversal's page-access cost."""

    neighbours: list[Neighbour]
    pages_visited: int

    def points(self) -> list[tuple[float, ...]]:
        """The neighbour points, nearest first."""
        return [n.point for n in self.neighbours]

    def __len__(self) -> int:
        return len(self.neighbours)


def _min_dist_sq(point: Sequence[float], rect: Rect) -> float:
    """Reference lower bound via a decoded ``Rect`` (tests compare the
    bit-native :func:`~repro.geometry.bitgrid.key_min_dist_sq` against it)."""
    total = 0.0
    for x, lo, hi in zip(point, rect.lows, rect.highs):
        if x < lo:
            total += (lo - x) ** 2
        elif x > hi:
            total += (x - hi) ** 2
    return total


def nearest_neighbours(
    tree: "BVTree", point: Sequence[float], k: int = 1
) -> KNNResult:
    """The ``k`` stored records nearest to ``point`` (Euclidean).

    Ties at equal distance are broken arbitrarily; fewer than ``k``
    results are returned when the tree holds fewer records.
    """
    if k < 1:
        raise ReproError(f"k must be at least 1, got {k}")
    if len(point) != tree.space.ndim:
        raise GeometryError(
            f"query point has {len(point)} dimensions, space has "
            f"{tree.space.ndim}"
        )
    query = tuple(float(x) for x in point)
    if tree.layout == "columnar" and not tree.tracer.enabled:
        # Separate loop (same pattern as the traced/untraced range
        # split): distance evaluation runs over the packed coordinate
        # columns, child bounds over the cached integer origins — the
        # exact floats of key_min_dist_sq, so visits and prunes match
        # the object layout's.
        return _nearest_columnar(tree, query, k)
    counter = itertools.count()  # tie-breaker: heap entries stay orderable
    heap: list[tuple[float, int, Any]] = [(0.0, next(counter), tree.root_entry())]
    best: list[tuple[float, int, Neighbour]] = []  # max-heap via negation
    pages_visited = 0
    tracer = tree.tracer
    tracing = tracer.enabled

    while heap:
        dist_sq, _, entry = heapq.heappop(heap)
        if len(best) == k and dist_sq > -best[0][0]:
            break
        pages_visited += 1
        if tracing:
            tracer.emit(
                QUERY_VISIT,
                level=entry.level,
                key=entry.key.bit_string(),
                page=entry.page,
                dist=math.sqrt(dist_sq),
            )
        node = tree.store.read(entry.page)
        if isinstance(node, DataPage):
            for stored, value in node.records.values():
                d = sum((a - b) ** 2 for a, b in zip(stored, query))
                if len(best) < k:
                    heapq.heappush(
                        best,
                        (-d, next(counter), Neighbour(stored, value, math.sqrt(d))),
                    )
                elif d < -best[0][0]:
                    heapq.heapreplace(
                        best,
                        (-d, next(counter), Neighbour(stored, value, math.sqrt(d))),
                    )
            continue
        if not isinstance(node, IndexNode):
            raise TreeInvariantError(
                f"page {entry.page} holds neither a data page nor an "
                f"index node: {type(node).__name__}"
            )
        for child in node.entries:
            # Bit-native lower bound: identical floats to decoding the
            # block Rect first, without allocating it per visited entry.
            d = key_min_dist_sq(tree.space, child.key, query)
            if len(best) < k or d <= -best[0][0]:
                heapq.heappush(heap, (d, next(counter), child))
            elif tracing:
                tracer.emit(
                    QUERY_PRUNE,
                    level=child.level,
                    key=child.key.bit_string(),
                    page=child.page,
                    dist=math.sqrt(d),
                    radius=math.sqrt(-best[0][0]),
                )

    ordered = sorted((n for _, _, n in best), key=lambda n: n.distance)
    return KNNResult(neighbours=ordered, pages_visited=pages_visited)


def _nearest_columnar(
    tree: "BVTree", query: tuple[float, ...], k: int
) -> KNNResult:
    """Best-first k-NN over columnar pages (untraced hot path).

    The candidate max-heap holds ``(-dist_sq, tiebreak, point, value)``
    tuples — ``Neighbour`` objects are only materialised for the final
    result list.  The traversal order, visit count and pruning decisions
    are identical to :func:`nearest_neighbours` on an object-layout tree
    holding the same records (same bounds, same thresholds).
    """
    counter = itertools.count()
    heap: list[tuple[float, int, Any]] = [(0.0, next(counter), tree.root_entry())]
    best: list[tuple[float, int, tuple[float, ...], Any]] = []
    pages_visited = 0
    read = tree.store.read
    space = tree.space
    while heap:
        dist_sq, _, entry = heapq.heappop(heap)
        if len(best) == k and dist_sq > -best[0][0]:
            break
        pages_visited += 1
        node = read(entry.page)
        if entry.level == 0:
            node.accumulate_nearest(query, k, best, counter)
        else:
            node.expand_nearest(heap, best, k, query, space, counter)
    ordered = sorted(
        (
            Neighbour(stored, value, math.sqrt(-neg_d))
            for neg_d, _, stored, value in best
        ),
        key=lambda n: n.distance,
    )
    return KNNResult(neighbours=ordered, pages_visited=pages_visited)
