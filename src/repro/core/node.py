"""Node payloads: index nodes and data pages.

Nodes are stored as live objects in a :class:`~repro.storage.PageStore`;
see that package's docstring for why no byte serialisation is simulated.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.errors import DuplicateKeyError, TreeInvariantError
from repro.core.entry import Entry
from repro.geometry.region import RegionKey


class IndexNode:
    """An index node at a fixed index level.

    Entries of partition level ``index_level - 1`` are native; entries of
    lower levels are guards (paper §2).  The node does not know its own
    region key — that is held by the entry pointing at it, exactly as in a
    B-tree, and passed in by the algorithms that need it.
    """

    __slots__ = ("index_level", "entries", "_keyset")

    def __init__(self, index_level: int, entries: Sequence[Entry] = ()):
        if index_level < 1:
            raise TreeInvariantError(
                f"index levels start at 1, got {index_level}"
            )
        self.index_level = index_level
        self.entries: list[Entry] = list(entries)
        self._keyset: set[tuple[int, RegionKey]] = {
            (e.level, e.key) for e in self.entries
        }
        for entry in self.entries:
            self._check_level(entry)

    def _check_level(self, entry: Entry) -> None:
        if entry.level > self.index_level - 1:
            raise TreeInvariantError(
                f"entry of level {entry.level} cannot live in a node of "
                f"index level {self.index_level}"
            )

    # ------------------------------------------------------------------
    # Entry management
    # ------------------------------------------------------------------

    def add(self, entry: Entry) -> None:
        """Insert an entry (no capacity check — the tree enforces that).

        The duplicate check is set-backed: filling a node of ``n`` entries
        is O(n), not the O(n²) a linear scan per add would cost (the
        bulk-load replay and node splits both fill nodes entry by entry;
        docs/PERFORMANCE.md has the micro-benchmark).
        """
        self._check_level(entry)
        token = (entry.level, entry.key)
        if token in self._keyset:
            raise TreeInvariantError(
                f"duplicate level-{entry.level} key {entry.key!r} in node"
            )
        self._keyset.add(token)
        self.entries.append(entry)

    def remove(self, entry: Entry) -> None:
        """Remove an entry object from the node."""
        try:
            self.entries.remove(entry)
        except ValueError:
            raise TreeInvariantError(f"{entry!r} not present in node") from None
        self._keyset.discard((entry.level, entry.key))

    def natives(self) -> list[Entry]:
        """The unpromoted entries (level ``index_level - 1``)."""
        level = self.index_level - 1
        return [e for e in self.entries if e.level == level]

    def guards(self) -> list[Entry]:
        """The promoted entries (level below ``index_level - 1``)."""
        level = self.index_level - 1
        return [e for e in self.entries if e.level < level]

    def native_count(self) -> int:
        """Number of unpromoted entries."""
        level = self.index_level - 1
        return sum(1 for e in self.entries if e.level == level)

    def guard_count(self) -> int:
        """Number of promoted entries."""
        return len(self.entries) - self.native_count()

    def find(self, key: RegionKey, level: int) -> Entry | None:
        """The entry with exactly this key and level, if present."""
        for entry in self.entries:
            if entry.level == level and entry.key == key:
                return entry
        return None

    def entries_of_level(self, level: int) -> Iterator[Entry]:
        """Iterate the entries labelled with one partition level."""
        return (e for e in self.entries if e.level == level)

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------

    def best_native_match(self, path: int, path_bits: int) -> Entry | None:
        """Longest-prefix native entry containing the path, if any."""
        best: Entry | None = None
        level = self.index_level - 1
        for entry in self.entries:
            if entry.level != level:
                continue
            if not entry.matches_path(path, path_bits):
                continue
            if best is None or entry.key.nbits > best.key.nbits:
                best = entry
        return best

    def matching_guards(self, path: int, path_bits: int) -> list[Entry]:
        """All guard entries whose block contains the path."""
        level = self.index_level - 1
        return [
            e
            for e in self.entries
            if e.level < level and e.matches_path(path, path_bits)
        ]

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        return (
            f"IndexNode(level={self.index_level}, "
            f"natives={self.native_count()}, guards={self.guard_count()})"
        )


class DataPage:
    """A data page: at most ``P`` records keyed by their full bit paths.

    Two points with identical bit paths at the space's resolution are the
    same key to the index; the page therefore maps ``path -> (point, value)``.
    """

    __slots__ = ("records",)

    def __init__(self) -> None:
        self.records: dict[int, tuple[tuple[float, ...], Any]] = {}

    def insert(
        self,
        path: int,
        point: tuple[float, ...],
        value: Any,
        replace: bool = False,
    ) -> None:
        """Store a record; duplicates raise unless ``replace`` is set."""
        if not replace and path in self.records:
            raise DuplicateKeyError(
                f"a record with the bit path of point {point} already exists"
            )
        self.records[path] = (point, value)

    def delete(self, path: int) -> tuple[tuple[float, ...], Any]:
        """Remove and return the record with this path (KeyError if absent)."""
        return self.records.pop(path)

    def get(self, path: int) -> tuple[tuple[float, ...], Any] | None:
        """The (point, value) stored under this path, or None."""
        return self.records.get(path)

    def paths(self) -> Iterator[int]:
        """Iterate the bit paths stored in the page."""
        return iter(self.records)

    def extract_block(self, key: RegionKey, path_bits: int) -> "DataPage":
        """Split out the records inside ``key``'s block into a new page.

        Used by data-page splits; the moved records keep their relative
        order.  The columnar subclass overrides this with a contiguous
        slice of its sorted path column.
        """
        inner = DataPage()
        for p in [p for p in self.records if key.contains_path(p, path_bits)]:
            inner.records[p] = self.records.pop(p)
        return inner

    def absorb(self, other: "DataPage") -> None:
        """Take over every record of ``other`` (merge / absorb path)."""
        self.records.update(other.records)

    def fill_sorted(
        self, items: Iterable[tuple[int, tuple[float, ...], Any]]
    ) -> None:
        """Bulk-append ``(path, point, value)`` records in ascending path
        order onto an empty page (the bulk loader's contract)."""
        records = self.records
        for path, point, value in items:
            records[path] = (point, value)

    def __contains__(self, path: int) -> bool:
        return path in self.records

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return f"DataPage({len(self.records)} records)"
