"""Index entries: (region key, partition level, page pointer) triples.

Every entry in a BV-tree index node is labelled with the *partition level*
of the region it identifies (paper §2).  The label is what tells guards
apart from unpromoted entries: in a node at index level ``L``, entries of
level ``L - 1`` are *native* (unpromoted) and entries of any lower level are
*guards* that were promoted into the node.  A region's level never changes;
promotion and demotion only change which node the entry is stored in.
"""

from __future__ import annotations

from repro.errors import TreeInvariantError
from repro.geometry.region import RegionKey


class Entry:
    """One region entry in an index node.

    ``level == 0`` entries point at data pages; entries of level ``x >= 1``
    point at index nodes of index level ``x`` (the roots of their subtrees,
    which travel with them on promotion — paper §2).
    """

    __slots__ = ("key", "level", "page")

    def __init__(self, key: RegionKey, level: int, page: int):
        if level < 0:
            raise TreeInvariantError(f"negative partition level {level}")
        self.key = key
        self.level = level
        self.page = page

    def is_native_in(self, index_level: int) -> bool:
        """True if this entry is unpromoted in a node of ``index_level``."""
        return self.level == index_level - 1

    def matches_path(self, path: int, path_bits: int) -> bool:
        """True if the entry's block contains the given bit path.

        A path shorter than the key (a region key used as a path, e.g.
        during demotion descents) is never contained: containment of a
        block requires the entry's key to be a prefix of it.
        """
        return path_bits >= self.key.nbits and self.key.contains_path(
            path, path_bits
        )

    def __repr__(self) -> str:
        key = self.key.bit_string() or "ε"
        return f"Entry({key!r}, level={self.level}, page={self.page})"
