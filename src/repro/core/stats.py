"""Operation counters and structural statistics of a BV-tree."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.node import DataPage, IndexNode

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.tree import BVTree


@dataclass
class OpCounters:
    """Counts of structural events since the tree was created.

    ``deferred_splits``/``deferred_merges`` count the conservative escapes
    documented in DESIGN.md (an all-guard node too small to split, a merge
    skipped for lack of a safe partner); they are zero in every workload
    the benchmarks run, and the invariant checker reports them.
    """

    inserts: int = 0
    deletes: int = 0
    #: Records loaded through :meth:`~repro.core.tree.BVTree.bulk_load`
    #: (which plans splits up front, so they are *not* counted as
    #: ``inserts``; its planned page splits do count as ``data_splits``).
    bulk_loaded: int = 0
    data_splits: int = 0
    index_splits: int = 0
    promotions: int = 0
    demotions: int = 0
    merges: int = 0
    redistributions: int = 0
    deferred_splits: int = 0
    deferred_merges: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)

    def snapshot(self) -> "OpCounters":
        """An independent copy of the current counter values.

        Mirrors :meth:`repro.storage.stats.IOStats.snapshot`, so perf
        scenarios and the metrics registry can diff counters between two
        samples without a destructive :meth:`reset` in between.
        """
        return OpCounters(
            **{name: getattr(self, name) for name in self.__dataclass_fields__}
        )

    def delta(self, since: "OpCounters") -> "OpCounters":
        """Counters accumulated since an earlier :meth:`snapshot`.

        A ``reset()`` between the snapshot and this call yields negative
        components — the same semantics as :meth:`IOStats.delta`; diff
        only monotone samples.
        """
        return OpCounters(
            **{
                name: getattr(self, name) - getattr(since, name)
                for name in self.__dataclass_fields__
            }
        )

    def to_dict(self) -> dict[str, int]:
        """The counters as a plain mapping (JSON-ready)."""
        return {
            name: getattr(self, name) for name in self.__dataclass_fields__
        }


@dataclass
class TreeStats:
    """A structural snapshot of a BV-tree (see :func:`collect`)."""

    height: int
    n_points: int
    data_pages: int
    index_nodes: int
    index_nodes_by_level: dict[int, int]
    guards_by_level: dict[int, int]
    total_guards: int
    #: Smallest data-page/index-node population, excluding the root —
    #: the paper's occupancy guarantee never applies to the root (a
    #: B-tree's root is exempt for the same reason).
    min_data_occupancy: int
    avg_data_occupancy: float
    min_index_occupancy: int
    avg_index_occupancy: float
    index_bytes: int
    data_bytes: int
    data_occupancies: list[int] = field(repr=False, default_factory=list)
    index_occupancies: list[int] = field(repr=False, default_factory=list)
    #: Raw node populations keyed by level: level 0 lists every data
    #: page's record count (root included), level ``k`` lists every
    #: level-``k`` index node's entry count.  The monitor's audit oracle
    #: compares its incremental histograms against these.
    occupancies_by_level: dict[int, list[int]] = field(
        repr=False, default_factory=dict
    )
    #: Guard entries counted by the index level of the *node holding*
    #: them (``guards_by_level`` keys by the guard's own level instead).
    guards_by_node_level: dict[int, int] = field(default_factory=dict)

    @property
    def data_fill_factor(self) -> float:
        """Average data-page occupancy as a fraction of capacity."""
        return self.avg_data_occupancy

    @property
    def pages_total(self) -> int:
        """Data pages plus index nodes."""
        return self.data_pages + self.index_nodes

    @property
    def pages_by_level(self) -> dict[int, int]:
        """Node counts per level (level 0 = data pages)."""
        return {
            level: len(occ)
            for level, occ in sorted(self.occupancies_by_level.items())
        }

    def level_occupancy(self) -> dict[int, dict[str, float]]:
        """Per-level occupancy summary: node count, min and mean.

        Includes the root (the occupancy *guarantee* exempts it — that
        exemption belongs to the health evaluator and the checker, not to
        the descriptive statistics).  Levels are sorted ascending.
        """
        out: dict[int, dict[str, float]] = {}
        for level, occ in sorted(self.occupancies_by_level.items()):
            if not occ:
                continue
            out[level] = {
                "nodes": len(occ),
                "min": min(occ),
                "mean": sum(occ) / len(occ),
            }
        return out


def collect(tree: "BVTree") -> TreeStats:
    """Walk the tree and compute its structural statistics."""
    policy = tree.policy
    data_occ: list[int] = []
    index_occ: list[int] = []
    index_by_level: dict[int, int] = {}
    guards_by_level: dict[int, int] = {}
    guards_by_node_level: dict[int, int] = {}
    occ_by_level: dict[int, list[int]] = {}
    index_bytes = 0

    root_entry = tree.root_entry()
    nonroot_data: list[int] = []
    nonroot_index: list[int] = []
    stack = [root_entry]
    while stack:
        entry = stack.pop()
        is_root = entry.page == tree.root_page
        if entry.level == 0:
            page: DataPage = tree.store.read(entry.page)
            data_occ.append(len(page))
            occ_by_level.setdefault(0, []).append(len(page))
            if not is_root:
                nonroot_data.append(len(page))
            continue
        node: IndexNode = tree.store.read(entry.page)
        index_by_level[node.index_level] = (
            index_by_level.get(node.index_level, 0) + 1
        )
        index_occ.append(len(node))
        occ_by_level.setdefault(node.index_level, []).append(len(node))
        if not is_root:
            nonroot_index.append(len(node))
        index_bytes += policy.index_node_bytes(node.index_level)
        for child in node.entries:
            if child.level < node.index_level - 1:
                guards_by_level[child.level] = (
                    guards_by_level.get(child.level, 0) + 1
                )
                guards_by_node_level[node.index_level] = (
                    guards_by_node_level.get(node.index_level, 0) + 1
                )
            stack.append(child)

    n_index = sum(index_by_level.values())
    return TreeStats(
        height=tree.height,
        n_points=tree.count,
        data_pages=len(data_occ),
        index_nodes=n_index,
        index_nodes_by_level=dict(sorted(index_by_level.items())),
        guards_by_level=dict(sorted(guards_by_level.items())),
        total_guards=sum(guards_by_level.values()),
        min_data_occupancy=min(nonroot_data or data_occ) if data_occ else 0,
        avg_data_occupancy=(
            sum(data_occ) / (len(data_occ) * policy.data_capacity)
            if data_occ
            else 0.0
        ),
        min_index_occupancy=min(nonroot_index or index_occ) if index_occ else 0,
        avg_index_occupancy=(
            sum(index_occ) / (len(index_occ) * policy.fanout)
            if index_occ
            else 0.0
        ),
        index_bytes=index_bytes,
        data_bytes=len(data_occ) * policy.page_bytes,
        data_occupancies=data_occ,
        index_occupancies=index_occ,
        occupancies_by_level={
            level: occ_by_level[level] for level in sorted(occ_by_level)
        },
        guards_by_node_level=dict(sorted(guards_by_node_level.items())),
    )
