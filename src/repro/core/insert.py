"""Insertion: data/index splits, promotion, guard lodging, demotion.

The update algebra of the BV-tree (paper §§2, 4):

- A data page that exceeds ``P`` records splits by the balanced binary
  descent; the *outer* region keeps its key and page, the *inner* region is
  a new entry whose key extends the outer's.
- An index node that exceeds its capacity splits the same way over its
  native entries' keys.  Entries whose key is a proper prefix of the split
  key would straddle the new boundary; instead of splitting them — which
  would cascade — they are **promoted** into the parent node as guards.
- When a region that is itself stored as a guard splits (§4), the outer
  part keeps guarding; the inner part is **demoted** toward its unpromoted
  position by a single root descent, lodging as a guard at the first node
  where it directly encloses a higher-level region, and displacing any
  same-level guard it shadows (which then becomes the next demotion
  candidate).

Every placement decision is local to one node plus its parent; nothing
below a split is ever touched — the defining contrast with the K-D-B tree.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

from repro.errors import TreeInvariantError
from repro.core.descent import find_owner, locate, step
from repro.core.entry import Entry
from repro.core.guards import GuardSet
from repro.core.node import DataPage, IndexNode
from repro.core.placement import justified, placement_walk
from repro.core.split import choose_split
from repro.geometry.region import ROOT_KEY, RegionKey
from repro.obs.events import DATA_SPLIT, DEMOTION, INDEX_SPLIT, PROMOTION

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.tree import BVTree


def insert_point(
    tree: "BVTree",
    point: Sequence[float],
    value: Any,
    replace: bool = False,
) -> None:
    """Insert one record, splitting pages upward as needed."""
    pt = tuple(float(x) for x in point)
    path = tree.space.point_path(pt)
    found = locate(tree, path)
    page: DataPage = tree.store.read(found.entry.page)
    had_record = path in page
    page.insert(path, pt, value, replace=replace)
    tree.store.write(found.entry.page, page)
    tree.stats.inserts += 1
    if not had_record:
        tree.count += 1
    if tree.policy.data_overflows(len(page)):
        split_data_page(tree, found.entry)


# ----------------------------------------------------------------------
# Splitting
# ----------------------------------------------------------------------


def split_data_page(tree: "BVTree", entry: Entry) -> None:
    """Split an overflowing data page (paper §2, Figure 2-1b)."""
    page: DataPage = tree.store.read(entry.page)
    path_bits = tree.space.path_bits
    items = [(p, path_bits) for p in page.paths()]
    split_key = choose_split(entry.key, items)
    inner = page.extract_block(split_key, path_bits)
    inner_page = tree.alloc_data_page(inner)
    tree.store.write(entry.page, page)
    tree.stats.data_splits += 1
    tracer = tree.tracer
    if tracer.structural:
        # Every stats bump has a co-located event: replaying a trace's
        # structural events must reproduce the OpCounters delta exactly
        # (the integration tests assert this).  Structural sites guard on
        # ``structural`` so taps (the guarantee monitor) see them even
        # when full tracing is off.
        tracer.emit(
            DATA_SPLIT,
            key=split_key.bit_string(),
            outer_page=entry.page,
            inner_page=inner_page,
            moved=len(inner),
        )
    inner_entry = Entry(split_key, 0, inner_page)
    tree.register_entry(inner_entry)
    _place_split_inner(tree, inner_entry, entry)


def split_index_node(tree: "BVTree", node_page: int, entry: Entry) -> None:
    """Split an overflowing index node, promoting straddling entries.

    ``entry`` is the entry pointing at the node.  The split key is chosen
    over the native entries' keys, charging each candidate with the number
    of entries it would promote so the post-split balance is what is
    optimised.  Exactly one native (the longest proper prefix of the split
    key, if any) plus every guard that is a proper prefix of the split key
    move up to the parent (paper §2 and its generalised promotion rule).
    """
    node: IndexNode = tree.store.read(node_page)
    natives = node.natives()
    if len(natives) < 2:
        # With very small fan-outs a node can be all guards; it cannot be
        # split without at least two natives.  Leave it overfull — searches
        # stay correct — and record the anomaly.
        tree.stats.deferred_splits += 1
        return
    items = [(e.key.value, e.key.nbits) for e in natives]

    def promotion_cost(block: RegionKey) -> tuple[int, int]:
        guard_cost = sum(1 for g in node.guards() if g.key.encloses(block))
        native_cost = 1 if any(e.key.encloses(block) for e in natives) else 0
        return native_cost, guard_cost

    try:
        split_key = choose_split(entry.key, items, promotion_cost)
    except TreeInvariantError:
        # A nested chain of natives (every candidate boundary would
        # promote the whole outer side) cannot be split yet.  Leave the
        # node overfull — searches stay correct — and let a later
        # insertion resolve it once the population diversifies.  Only the
        # uniform policy reaches this (guards pushing the total over F
        # while few natives exist).
        tree.stats.deferred_splits += 1
        return

    promoted_native: Entry | None = None
    for e in natives:
        if e.key.encloses(split_key):
            if promoted_native is None or e.key.nbits > promoted_native.key.nbits:
                promoted_native = e

    inner_entries: list[Entry] = []
    promoted: list[Entry] = []
    for e in list(node.entries):
        if split_key.is_prefix_of(e.key):
            inner_entries.append(e)
        elif e is promoted_native:
            promoted.append(e)
        elif e.level < node.index_level - 1 and e.key.encloses(split_key):
            promoted.append(e)
        # everything else stays in the (outer) node
    for e in inner_entries + promoted:
        node.remove(e)
    inner_node = tree.make_index_node(node.index_level, inner_entries)
    inner_page = tree.alloc_index_node(inner_node)
    tree.store.write(node_page, node)
    tree.stats.index_splits += 1
    tree.stats.promotions += len(promoted)
    tracer = tree.tracer
    if tracer.structural:
        tracer.emit(
            INDEX_SPLIT,
            key=split_key.bit_string(),
            level=entry.level,
            outer_page=node_page,
            inner_page=inner_page,
            moved=len(inner_entries),
        )
        for g in promoted:
            tracer.emit(
                PROMOTION,
                key=g.key.bit_string(),
                level=g.level,
                from_page=node_page,
            )

    inner_entry = Entry(split_key, entry.level, inner_page)
    tree.register_entry(inner_entry)
    _place_split_inner(tree, inner_entry, entry)
    # Re-place highest level first: a lower-level guard's canonical
    # position depends on the higher-level regions that enclose it, so
    # those must be back in the index before the guard's descent runs
    # (placing the level-0 guard of a promoted pair first would demote it
    # along a path that stops existing once the level-1 entry returns).
    for g in sorted(promoted, key=lambda e: e.level, reverse=True):
        _place_guard(tree, g)


def _place_split_inner(tree: "BVTree", inner: Entry, outer: Entry) -> None:
    """Place the inner entry produced by splitting ``outer``'s page.

    If ``outer`` is unpromoted, the inner entry joins it in the same node
    (growing the root when ``outer`` is the tree root).  If ``outer`` is a
    guard, §4 applies: the outer part keeps guarding (its key is
    unchanged), while the inner part lodges as a guard only where it is
    justified, and is otherwise demoted.
    """
    owner_page = find_owner(tree, outer)
    if owner_page is None:
        owner_page = _grow_root(tree)
    owner: IndexNode = tree.store.read(owner_page)
    if outer.level == owner.index_level - 1:
        owner.add(inner)
        tree.store.write(owner_page, owner)
        _check_overflow(tree, owner_page)
        return
    _place_guard(tree, inner)
    # §4's special case: the new inner key may shadow the outer's
    # justification ("dx'' replaces dx' as the guard"), in which case the
    # outer is demoted by the same single descent.
    owner_page = find_owner(tree, outer)
    owner = tree.store.read(owner_page)
    if outer.level < owner.index_level - 1 and not justified(
        tree, outer, owner
    ):
        owner.remove(outer)
        tree.store.write(owner_page, owner)
        _place_guard(tree, outer)
        _demote_unjustified(tree, owner_page)


def _grow_root(tree: "BVTree") -> int:
    """Create a new root one index level up, containing the old root.

    The old root's whole-space region stops being virtual: it becomes a
    stored entry, so it joins the key registry.
    """
    old = tree.root_entry()
    child = Entry(ROOT_KEY, old.level, old.page)
    tree.register_entry(child)
    new_root = tree.make_index_node(old.level + 1, [child])
    new_page = tree.alloc_index_node(new_root)
    tree.root_page = new_page
    tree.height += 1
    return new_page


def _demote_unjustified(tree: "BVTree", node_page: int) -> None:
    """Re-place guards whose justifying target left this node.

    Demoting or displacing an entry can orphan lower-level guards that
    straddled it; they are re-placed by the same §4 descent (each lands
    at its canonical node, which is at or below its current one, so the
    sweep terminates).
    """
    if node_page not in tree.store:
        return
    node = tree.store.read(node_page)
    if not isinstance(node, IndexNode):
        return
    stale = [g for g in node.guards() if not justified(tree, g, node)]
    if not stale:
        return
    for guard in stale:
        node.remove(guard)
    tree.store.write(node_page, node)
    # Highest level first, for the same reason as the promotion re-place
    # loop in split_index_node: lower-level guards canonically sit below
    # the higher-level regions enclosing them.
    stale.sort(key=lambda e: e.level, reverse=True)
    for guard in stale:
        _place_guard(tree, guard)


def _check_overflow(tree: "BVTree", node_page: int) -> None:
    """Split ``node_page`` if it exceeds capacity under the tree's policy."""
    node: IndexNode = tree.store.read(node_page)
    if not tree.policy.index_overflows(node):
        return
    entry = _entry_for_node(tree, node_page)
    split_index_node(tree, node_page, entry)


def _entry_for_node(tree: "BVTree", node_page: int) -> Entry:
    """The entry pointing at ``node_page`` (the virtual entry for the root)."""
    if node_page == tree.root_page:
        return tree.root_entry()
    node: IndexNode = tree.store.read(node_page)
    # Locate by descending for any key in the node: the node's own entry is
    # found as the winner one level above it.  We use the shortest native
    # key as the probe; the owner descent scans for the pointer by page.
    probe = min(
        (e.key for e in node.entries), key=lambda k: k.nbits, default=None
    )
    if probe is None:
        raise TreeInvariantError(f"cannot locate entry of empty node {node_page}")
    current = tree.root_entry()
    guards = GuardSet()
    while current.level > 0:
        if current.page == node_page:
            return current
        parent_node: IndexNode = tree.store.read(current.page)
        current, _ = step(
            parent_node, current.page, probe.value, probe.nbits, guards
        )
    raise TreeInvariantError(
        f"descent for node {node_page} reached a data page instead"
    )


# ----------------------------------------------------------------------
# Guard placement and demotion (paper §4)
# ----------------------------------------------------------------------


def _place_guard(tree: "BVTree", entry: Entry) -> None:
    """Place a detached entry at its canonical position (paper §4).

    A single root descent: the entry lodges as a guard in the first node
    where it straddles an unshadowed higher-level entry, and otherwise
    reaches index level ``entry.level + 1`` and is inserted as a native
    (fully demoted).  Any same-level guard the arrival shadows is
    displaced and recursively becomes the next placement candidate (§4's
    guard-replacement rule).
    """
    node_page, as_guard = placement_walk(tree, entry.key, entry.level)
    if as_guard:
        _lodge_guard(tree, entry, node_page)
        return
    node: IndexNode = tree.store.read(node_page)
    node.add(entry)
    tree.store.write(node_page, node)
    tree.stats.demotions += 1
    tracer = tree.tracer
    if tracer.structural:
        tracer.emit(
            DEMOTION,
            key=entry.key.bit_string(),
            level=entry.level,
            to_page=node_page,
        )
    _check_overflow(tree, node_page)


def _lodge_guard(tree: "BVTree", entry: Entry, node_page: int) -> None:
    """Add a guard to a node, displacing same-level guards it shadows."""
    node: IndexNode = tree.store.read(node_page)
    node.add(entry)
    displaced = [
        other
        for other in node.entries
        if other.level == entry.level
        and other is not entry
        and other.key.encloses(entry.key)
        and not justified(tree, other, node)
    ]
    for other in displaced:
        node.remove(other)
    tree.store.write(node_page, node)
    for other in displaced:
        _place_guard(tree, other)
    if displaced:
        _demote_unjustified(tree, node_page)
    _check_overflow(tree, node_page)
