"""The balanced binary split — the [LS89] argument the paper builds on.

Both data pages and index nodes split by descending the binary partition
sequence from the region's own block, always into the heavier half, until
the inner count first drops to at most two thirds of the population.  The
halving argument guarantees the stopping count is also above one third, so
**both sides of the split hold at least one third of the population** — the
source of the BV-tree's 1/3 occupancy guarantee.

The items being balanced are bit paths: full-resolution point paths when a
data page splits, native-entry region keys when an index node splits.  A
candidate inner block never coincides with an existing *hole* of the region
(an enclosed same-level region), because holes contain none of the items —
holey-region semantics keeps their population in other nodes — and the
descent only moves through blocks with a strictly positive count.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import ResolutionExhaustedError, TreeInvariantError
from repro.geometry.region import RegionKey

#: An item is a bit path with an explicit length: point paths are
#: ``(path, space.path_bits)``; region keys are ``(key.value, key.nbits)``.
PathItem = tuple[int, int]


def _count_inside(block: RegionKey, items: Sequence[PathItem]) -> int:
    """Number of items whose path lies inside (or equals) the block."""
    nbits, value = block.nbits, block.value
    return sum(
        1
        for path, path_bits in items
        if path_bits >= nbits and (path >> (path_bits - nbits)) == value
    )


def split_candidates(
    base: RegionKey, items: Sequence[PathItem]
) -> list[tuple[RegionKey, int]]:
    """Candidate inner blocks along the greedy heavy-half descent.

    Returns ``(block, inside_count)`` pairs with ``0 < inside_count < N``,
    deepest candidates last.  The list always contains at least one
    candidate with ``N/3 <= inside_count <= 2N/3`` rounding slack aside —
    see module docstring — unless the items cannot be separated within
    their bit resolution, in which case :class:`ResolutionExhaustedError`
    is raised.
    """
    total = len(items)
    if total < 2:
        raise TreeInvariantError(f"cannot split {total} item(s)")
    max_depth = max(path_bits for _, path_bits in items)
    candidates: list[tuple[RegionKey, int]] = []
    current = base
    count = _count_inside(base, items)
    if count != total:
        raise TreeInvariantError(
            f"{total - count} item(s) lie outside the base block {base!r}"
        )
    # Descend past the 2N/3 balance point down to pairs: the balanced
    # candidate is always collected on the way, and the deeper (less
    # balanced) candidates give callers with promotion costs a feasible
    # fallback when every balanced boundary would promote the whole
    # outer side (nested key chains).
    while count >= 2:
        if current.nbits >= max_depth:
            if count * 3 > 2 * total:
                raise ResolutionExhaustedError(
                    f"{count} items share the {current.nbits}-bit block "
                    f"{current!r}; cannot split within resolution"
                )
            break
        lower, upper = current.child(0), current.child(1)
        n_lower = _count_inside(lower, items)
        n_upper = _count_inside(upper, items)
        for block, n in ((lower, n_lower), (upper, n_upper)):
            if 0 < n < total:
                candidates.append((block, n))
        if n_lower == 0 and n_upper == 0:
            # All remaining items sit exactly on the current block's key.
            if count * 3 > 2 * total:
                raise ResolutionExhaustedError(
                    f"{count} items have paths equal to block {current!r}; "
                    f"cannot split within resolution"
                )
            break
        if n_upper > n_lower:
            current, count = upper, n_upper
        else:
            current, count = lower, n_lower
    if not candidates:
        raise TreeInvariantError(
            f"no split candidate found for {total} items under {base!r}"
        )
    return candidates


def choose_split(
    base: RegionKey,
    items: Sequence[PathItem],
    cost: Callable[[RegionKey], tuple[int, int]] | None = None,
) -> RegionKey:
    """Pick the inner block that best balances the split.

    ``cost(block)`` returns ``(native_promotions, guard_promotions)`` for
    index splits (paper §2): the one native directly enclosing the block
    that would be promoted, and the guards promoted with it.  Native
    promotions reduce the outer side's population (and an outer side left
    without items is infeasible); guard promotions only lower the score,
    so a split that promotes less is preferred at equal balance.  Ties
    prefer the shallower block (the earliest partition of the binary
    sequence), which keeps region keys short.

    The greedy-stop candidate of :func:`split_candidates` is always
    feasible for populations of five or more, so this never raises for
    capacities the policy allows.
    """
    total = len(items)
    best_block: RegionKey | None = None
    best_score: tuple[int, int, int] | None = None
    for block, inside in split_candidates(base, items):
        hard, soft = cost(block) if cost else (0, 0)
        outer = total - inside - hard
        if outer < 1:
            continue
        score = (min(inside, outer), -soft, -block.nbits)
        if best_score is None or score > best_score:
            best_block, best_score = block, score
    if best_block is None:
        raise TreeInvariantError(
            f"all split candidates for {total} items under {base!r} would "
            f"empty the outer side"
        )
    return best_block
