"""Extended spatial objects on the binary partition (paper §8 outlook).

The paper's conclusion sketches future work: combining the BV-tree with
the dual point/object representation of [Fre89b] to index *extended*
objects (rectangles) directly, without ever splitting an object — the
defect of the R+-tree and of linearisations discussed in §1.

This module implements the core of that representation on the same
geometric substrate as the BV-tree: every object is assigned to its
**minimal enclosing binary block** — the longest region key whose block
contains the object's rectangle.  Blocks from the recursive binary
partition are nested or disjoint, so an object is never split, and an
intersection query descends the partition trie visiting exactly the
blocks that intersect the query and hold objects.

The paper does not evaluate this layer (it is §8 future work), so no
benchmark reproduces it; it ships as a tested extension with the
occupancy/page machinery intentionally left out.
"""

from __future__ import annotations

import math
from typing import Any, Iterator, Sequence

from repro.errors import GeometryError, KeyNotFoundError
from repro.geometry.rect import Rect
from repro.geometry.region import ROOT_KEY, RegionKey
from repro.geometry.space import DataSpace


class SpatialIndex:
    """Rectangles indexed by their minimal enclosing binary block."""

    def __init__(self, space: DataSpace, max_depth: int | None = None):
        self.space = space
        self.max_depth = (
            space.path_bits if max_depth is None else min(max_depth, space.path_bits)
        )
        if self.max_depth < 0:
            raise GeometryError(f"negative max depth {self.max_depth}")
        self.count = 0
        self._buckets: dict[RegionKey, list[tuple[Rect, Any]]] = {}
        # Number of objects stored at or below each block — the pruning
        # structure for queries (a counted prefix trie over bucket keys).
        self._weights: dict[RegionKey, int] = {}

    # ------------------------------------------------------------------
    # Block assignment
    # ------------------------------------------------------------------

    def enclosing_block(self, rect: Rect) -> RegionKey:
        """The longest binary block containing ``rect``.

        Computed as the common prefix of the bit paths of the rectangle's
        two extreme corners (the max corner nudged inside the half-open
        boundary), capped at ``max_depth``.
        """
        if rect.ndim != self.space.ndim:
            raise GeometryError(
                f"rect is {rect.ndim}-d, space is {self.space.ndim}-d"
            )
        if not self.space.whole_rect().contains_rect(rect):
            raise GeometryError(f"{rect!r} exceeds the data space")
        low_grid = self.space.grid(rect.lows)
        # The box is half-open: its extreme inner corner is just below
        # ``highs``.  Nudging by one float ulp (not one grid cell — the
        # edge rarely falls exactly on a cell boundary) finds the last
        # cell the object actually reaches into.
        nudged = tuple(
            max(low_bound, math.nextafter(h, -math.inf))
            for h, (low_bound, _) in zip(rect.highs, self.space.bounds)
        )
        high_grid = self.space.grid(nudged)
        low_path = self.space.grid_path(low_grid)
        high_path = self.space.grid_path(high_grid)
        bits = self.space.path_bits
        low_key = RegionKey(bits, low_path).prefix(self.max_depth)
        high_key = RegionKey(bits, high_path).prefix(self.max_depth)
        return low_key.common_prefix(high_key)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def insert(self, rect: Rect, value: Any = None) -> None:
        """Store an object (duplicates of the same rect are allowed)."""
        key = self.enclosing_block(rect)
        self._buckets.setdefault(key, []).append((rect, value))
        for length in range(key.nbits + 1):
            prefix = key.prefix(length)
            self._weights[prefix] = self._weights.get(prefix, 0) + 1
        self.count += 1

    def delete(self, rect: Rect, value: Any = None) -> None:
        """Remove one object with this exact rectangle and value."""
        key = self.enclosing_block(rect)
        bucket = self._buckets.get(key, [])
        for i, (stored, stored_value) in enumerate(bucket):
            if stored == rect and stored_value == value:
                bucket.pop(i)
                break
        else:
            raise KeyNotFoundError(f"no object {rect!r} with value {value!r}")
        if not bucket:
            del self._buckets[key]
        for length in range(key.nbits + 1):
            prefix = key.prefix(length)
            self._weights[prefix] -= 1
            if not self._weights[prefix]:
                del self._weights[prefix]
        self.count -= 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def intersecting(self, rect: Rect) -> Iterator[tuple[Rect, Any]]:
        """All stored objects whose rectangle intersects ``rect``.

        Descends the counted trie: a block is visited only if it
        intersects the query and has objects at or below it, so empty
        space costs nothing — the contraction property linear orderings
        lack (§1).
        """
        stack = [ROOT_KEY]
        while stack:
            key = stack.pop()
            if key not in self._weights:
                continue
            if not self.space.key_rect(key).intersects(rect):
                continue
            for stored, value in self._buckets.get(key, ()):
                if stored.intersects(rect):
                    yield stored, value
            if key.nbits < self.max_depth:
                stack.append(key.child(0))
                stack.append(key.child(1))

    def containing_point(self, point: Sequence[float]) -> Iterator[tuple[Rect, Any]]:
        """All stored objects containing ``point`` (stabbing query)."""
        path = self.space.point_path(point)
        for length in range(self.max_depth + 1):
            key = RegionKey(length, path >> (self.space.path_bits - length))
            if key not in self._weights:
                break
            for stored, value in self._buckets.get(key, ()):
                if stored.contains_point(point):
                    yield stored, value

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return f"SpatialIndex({self.count} objects, {len(self._buckets)} blocks)"
