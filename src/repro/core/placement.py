"""Canonical placement: where an entry belongs in the index tree.

The key sets per partition level define region extents (BANG semantics): a
level-``x`` region is its block minus the blocks of same-level keys nested
inside it.  An entry's canonical position follows from its key alone:

- A region whose extent is contained in a single level-``x+1`` region sits
  **native** in that region's node.
- A region that *straddles* a higher-level region's boundary — its key is
  a proper prefix of the higher key and no same-level key **shadows** the
  pair — must sit as a **guard** at the straddled region's branch point or
  above (paper §2); placement walks from the root and lodges at the first
  node holding an unshadowed straddled entry, which is exactly that branch
  point.

Shadowing is global: ``u`` shadows the pair ``g ⊏ t`` when ``g ⊏ u ⊑ t``
at ``g``'s level, because ``u``'s block covers all of ``t``'s block and is
closer than ``g``, so ``g``'s extent has no points inside ``t``.  The
tree's key registry answers shadow queries with a prefix walk.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.errors import TreeInvariantError
from repro.core.descent import step
from repro.core.entry import Entry
from repro.core.guards import GuardSet
from repro.core.node import IndexNode
from repro.geometry.region import RegionKey

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.tree import BVTree

#: Keys treated as absent during a placement query (mid-merge drops).
Excluded = frozenset[RegionKey]

NO_EXCLUDE: Excluded = frozenset()


def shadowed(
    tree: "BVTree",
    level: int,
    lower: RegionKey,
    upper: RegionKey,
    exclude: Excluded = NO_EXCLUDE,
) -> bool:
    """Is any level-``level`` key strictly between ``lower ⊏ upper``?"""
    registry = tree.keys.get(level, {})
    for length in range(upper.nbits, lower.nbits, -1):
        candidate = upper.prefix(length)
        if candidate in registry and candidate not in exclude:
            return True
    return False


def canonical_encloser(
    tree: "BVTree",
    level: int,
    key: RegionKey,
    exclude: Excluded = NO_EXCLUDE,
) -> Entry | None:
    """The entry of the longest same-level proper prefix of ``key``."""
    registry = tree.keys.get(level, {})
    for length in range(key.nbits - 1, -1, -1):
        candidate = key.prefix(length)
        if candidate in registry and candidate not in exclude:
            return registry[candidate]
    return None


def justified(
    tree: "BVTree",
    entry: Entry,
    node: IndexNode,
    exclude: Excluded = NO_EXCLUDE,
) -> bool:
    """Does ``entry`` straddle a higher-level entry of this node?

    True when the node holds an entry of higher level whose key the
    entry's key properly prefixes, with no same-level key shadowing the
    pair anywhere in the tree.  This is the §2/§4 criterion for an entry
    to sit at this node as a guard.
    """
    for target in node.entries:
        if target.level <= entry.level:
            continue
        if not entry.key.encloses(target.key):
            continue
        if not shadowed(tree, entry.level, entry.key, target.key, exclude):
            return True
    return False


def placement_walk(
    tree: "BVTree",
    key: RegionKey,
    level: int,
    exclude: Excluded = NO_EXCLUDE,
) -> tuple[int, bool]:
    """The canonical node for a level-``level`` region with this key.

    Returns ``(node_page, as_guard)``: the first node from the root where
    the region straddles an unshadowed higher-level entry (guard
    position), or the node at index level ``level + 1`` on the key's
    descent (native position).  Read-only; ``exclude`` simulates keys
    about to be dropped by a merge.
    """
    current = tree.root_entry()
    guards = GuardSet()
    while True:
        node_page = current.page
        node: IndexNode = tree.store.read(node_page)
        if node.index_level == level + 1:
            return node_page, False
        probe = Entry(key, level, 0)
        if justified(tree, probe, node, exclude):
            return node_page, True
        current, _ = step(node, node_page, key.value, key.nbits, guards)
        if current.level < level + 1:
            raise TreeInvariantError(
                f"placement walk for level-{level} key {key!r} fell below "
                f"its level"
            )
