"""Bottom-up bulk loading of a BV-tree.

Building a tree by repeated :func:`~repro.core.insert.insert_point` pays a
full root descent, a page write and (amortised) a split scan *per record*.
For an initial load all of that is avoidable: the final set of data-page
regions depends only on the record population, so it can be planned over
the **sorted bit paths** up front — a region block is a path-prefix
interval, so every population count is two binary searches instead of a
scan — and the index levels constructed by replaying the planned splits
through the proven placement machinery, one operation per *page* instead
of per record.

The plan phase mirrors :mod:`repro.core.split` exactly (greedy heavy-half
descent, same scoring, same tie-breaks), so every planned split satisfies
the 1/3 balance argument and the resulting tree honours the same occupancy
guarantees as an incrementally built one.  The replay phase drives
:func:`~repro.core.insert._place_split_inner` — the same §2/§4 promotion,
guard-lodging and demotion code incremental splits use — so all index
invariants (canonical placement, justified guards, single-descent
ownership) hold by construction; ``tree.check(check_owners=True)`` passes
on the result and the property tests assert query-answer equivalence
against incremental construction.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.errors import (
    DuplicateKeyError,
    ReproError,
    ResolutionExhaustedError,
)
from repro.core import insert as _insert
from repro.core.entry import Entry
from repro.core.node import DataPage
from repro.geometry.region import ROOT_KEY, RegionKey
from repro.obs.events import DATA_SPLIT

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.tree import BVTree

#: Half-open index ranges into the sorted path array.  A region owns a
#: small list of them: contiguous runs of its block's paths minus the
#: runs carved out by the inner regions split off it (its holes).
Ranges = list[tuple[int, int]]


def bulk_load(
    tree: "BVTree",
    records: Iterable[tuple[Sequence[float], Any]],
    replace: bool = False,
) -> int:
    """Bulk-build an empty tree from ``(point, value)`` records.

    Returns the number of records loaded.  Records whose points coincide
    in the leading ``space.resolution`` bits of every coordinate are the
    same key to the index: with ``replace`` the last such record wins
    (matching ``insert(..., replace=True)`` applied in input order),
    otherwise :class:`DuplicateKeyError` is raised.

    The tree must be empty — bulk loading plans the whole partition from
    the record population; merging into existing regions is what
    :meth:`~repro.core.tree.BVTree.update_many` is for.
    """
    if tree.count:
        raise ReproError(
            f"bulk_load requires an empty tree, this one holds {tree.count} "
            f"records (use update_many to add to a populated tree)"
        )
    space = tree.space
    encoded = [
        (space.point_path(point), tuple(float(x) for x in point), value)
        for point, value in records
    ]
    encoded.sort(key=lambda item: item[0])
    deduped: list[tuple[int, tuple[float, ...], Any]] = []
    for item in encoded:
        if deduped and deduped[-1][0] == item[0]:
            if not replace:
                raise DuplicateKeyError(
                    f"two records share the bit path of point {item[1]}"
                )
            deduped[-1] = item  # stable sort: later input wins, as insert would
        else:
            deduped.append(item)
    if not deduped:
        return 0

    paths = [path for path, _, _ in deduped]
    capacity = tree.policy.data_capacity
    final_ranges, events = _plan_partition(
        paths, space.path_bits, capacity
    )

    def page_for(ranges: Ranges) -> DataPage:
        # Ranges are ascending disjoint runs into the sorted path array,
        # so their concatenation is already in path order — a columnar
        # page is built by straight appends, no per-record bisect.
        page = tree.make_data_page()
        page.fill_sorted(
            deduped[i] for start, end in ranges for i in range(start, end)
        )
        return page

    # Replay the planned splits oldest-first through the incremental
    # placement machinery.  Pages are created with their *final* record
    # sets (the plan already knows them), so no record is ever moved.
    tree.store.write(tree.root_page, page_for(final_ranges[0]))
    tracer = tree.tracer
    for outer_id, inner_id, split_key in events:
        inner_page = tree.alloc_data_page(page_for(final_ranges[inner_id]))
        inner_entry = Entry(split_key, 0, inner_page)
        tree.register_entry(inner_entry)
        tree.stats.data_splits += 1
        if tracer.structural:
            # Planned splits count (and trace) like incremental ones, so
            # a trace replay reproduces the OpCounters delta either way.
            tracer.emit(
                DATA_SPLIT,
                key=split_key.bit_string(),
                inner_page=inner_page,
                moved=sum(
                    end - start for start, end in final_ranges[inner_id]
                ),
                planned=True,
            )
        outer_key = ROOT_KEY if outer_id == 0 else events[outer_id - 1][2]
        outer_entry = tree.registered(0, outer_key)
        if outer_entry is None:
            outer_entry = tree.root_entry()
        _insert._place_split_inner(tree, inner_entry, outer_entry)
    tree.count = len(deduped)
    tree.stats.bulk_loaded += len(deduped)
    return len(deduped)


def _count_in_block(
    paths: Sequence[int], ranges: Ranges, path_bits: int, block: RegionKey
) -> int:
    """How many of the region's paths lie inside ``block``.

    A block is the path interval ``[value << s, (value + 1) << s)`` with
    ``s = path_bits - nbits``; counting per range is two binary searches.
    """
    shift = path_bits - block.nbits
    lo = block.value << shift
    hi = (block.value + 1) << shift
    total = 0
    for start, end in ranges:
        total += bisect_left(paths, hi, start, end) - bisect_left(
            paths, lo, start, end
        )
    return total


def _choose_split_sorted(
    base: RegionKey, ranges: Ranges, paths: Sequence[int], path_bits: int
) -> RegionKey:
    """:func:`repro.core.split.choose_split` over sorted paths.

    Identical greedy heavy-half descent, candidate set and scoring
    (maximise balance, tie-break on the shallower block) — only the
    counting is replaced by binary searches, turning each halving step
    from a population scan into ``O(holes · log n)``.
    """
    total = _count_in_block(paths, ranges, path_bits, base)
    candidates: list[tuple[RegionKey, int]] = []
    current = base
    count = total
    while count >= 2:
        if current.nbits >= path_bits:
            raise ResolutionExhaustedError(
                f"{count} items share the {current.nbits}-bit block "
                f"{current!r}; cannot split within resolution"
            )
        lower = current.child(0)
        n_lower = _count_in_block(paths, ranges, path_bits, lower)
        n_upper = count - n_lower
        upper = current.child(1)
        for block, n in ((lower, n_lower), (upper, n_upper)):
            if 0 < n < total:
                candidates.append((block, n))
        if n_upper > n_lower:
            current, count = upper, n_upper
        else:
            current, count = lower, n_lower
    best_block: RegionKey | None = None
    best_score: tuple[int, int] | None = None
    for block, inside in candidates:
        score = (min(inside, total - inside), -block.nbits)
        if best_score is None or score > best_score:
            best_block, best_score = block, score
    if best_block is None:  # pragma: no cover - distinct paths always split
        raise ResolutionExhaustedError(
            f"no split candidate for {total} paths under {base!r}"
        )
    return best_block


def _partition_ranges(
    ranges: Ranges, paths: Sequence[int], path_bits: int, block: RegionKey
) -> tuple[Ranges, Ranges]:
    """Split a region's ranges into (inside ``block``, outside ``block``)."""
    shift = path_bits - block.nbits
    lo = block.value << shift
    hi = (block.value + 1) << shift
    inner: Ranges = []
    outer: Ranges = []
    for start, end in ranges:
        i0 = bisect_left(paths, lo, start, end)
        i1 = bisect_left(paths, hi, start, end)
        if start < i0:
            outer.append((start, i0))
        if i0 < i1:
            inner.append((i0, i1))
        if i1 < end:
            outer.append((i1, end))
    return inner, outer


def _plan_partition(
    paths: Sequence[int], path_bits: int, capacity: int
) -> tuple[list[Ranges], list[tuple[int, int, RegionKey]]]:
    """Plan the data-page partition over sorted, duplicate-free paths.

    Returns ``(final_ranges, events)``: region 0 is the root (key ε);
    region ``i >= 1`` is created by ``events[i - 1]``, a tuple
    ``(outer_region_id, inner_region_id, split_key)`` in replay order —
    every region's creation event precedes all events that split it,
    exactly the order the incremental algorithm would have produced.
    """
    region_keys: list[RegionKey] = [ROOT_KEY]
    region_ranges: list[Ranges] = [[(0, len(paths))]]
    events: list[tuple[int, int, RegionKey]] = []
    pending = [0]
    while pending:
        rid = pending.pop()
        ranges = region_ranges[rid]
        while sum(end - start for start, end in ranges) > capacity:
            split_key = _choose_split_sorted(
                region_keys[rid], ranges, paths, path_bits
            )
            inner, outer = _partition_ranges(ranges, paths, path_bits, split_key)
            inner_id = len(region_keys)
            region_keys.append(split_key)
            region_ranges.append(inner)
            events.append((rid, inner_id, split_key))
            region_ranges[rid] = ranges = outer
            pending.append(inner_id)
    return region_ranges, events
