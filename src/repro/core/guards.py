"""Guard sets: the state carried down the tree by every descent (paper §3).

A guard set holds, per partition level, the best-matching guard entry seen
so far on the path from the root.  Two guards of the same level merge by
keeping the better (longer-prefix) match; the level-``x`` member is consumed
when the descent reaches index level ``x + 1``, where it competes with the
unpromoted entries of its original level — the "notional backtrack" of §3.1.

Each member remembers the page of the node it is physically stored in (its
*owner*): update operations need to know where an entry lives so that a
split of the page it points to can be propagated to the right node.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import TreeInvariantError
from repro.core.entry import Entry

#: A guard-set member: the entry plus the page id of the node storing it.
GuardRef = tuple[Entry, int]


class GuardSet:
    """Best-matching guard per partition level, carried during a descent."""

    __slots__ = ("_by_level",)

    def __init__(self) -> None:
        self._by_level: dict[int, GuardRef] = {}

    @classmethod
    def adopt(cls, by_level: dict[int, GuardRef]) -> "GuardSet":
        """Wrap an already-built level map without copying it.

        The fused columnar descent (:func:`~repro.core.columnar
        .locate_columnar`) maintains the map directly and hands it over
        here; the caller must not keep its own reference.
        """
        guards = cls()
        guards._by_level = by_level
        return guards

    def merge(self, entry: Entry, owner_page: int) -> None:
        """Add a matching guard, keeping the longer prefix on conflict.

        Two distinct regions of the same level that both contain the search
        path are necessarily nested, so "longer key" and "better match"
        coincide (paper §3: "two guards of the same level are merged by
        discarding the poorer match").
        """
        current = self._by_level.get(entry.level)
        if current is None or entry.key.nbits > current[0].key.nbits:
            self._by_level[entry.level] = (entry, owner_page)
        elif (
            entry.key.nbits == current[0].key.nbits
            and entry.key != current[0].key
        ):
            raise TreeInvariantError(
                f"two disjoint level-{entry.level} guards match one path: "
                f"{current[0]!r} vs {entry!r}"
            )

    def consume(self, level: int) -> GuardRef | None:
        """Remove and return the guard of this level, if present.

        Called when the descent reaches index level ``level + 1``, the point
        where the guard has returned to its original position in the
        partition hierarchy.
        """
        return self._by_level.pop(level, None)

    def peek(self, level: int) -> GuardRef | None:
        """The guard of this level without consuming it."""
        return self._by_level.get(level)

    def levels(self) -> Iterator[int]:
        """The partition levels currently represented."""
        return iter(sorted(self._by_level))

    def refs(self) -> Iterator[GuardRef]:
        """Iterate the (entry, owner page) members (unspecified order)."""
        return iter(self._by_level.values())

    def copy(self) -> "GuardSet":
        """An independent copy (descents may fork, e.g. during deletion)."""
        clone = GuardSet()
        clone._by_level.update(self._by_level)
        return clone

    def __len__(self) -> int:
        return len(self._by_level)

    def __contains__(self, level: int) -> bool:
        return level in self._by_level

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{level}: {ref[0].key.bit_string() or 'ε'}"
            for level, ref in sorted(self._by_level.items())
        )
        return f"GuardSet({{{inner}}})"
