"""Structural invariant checker.

Verifies, on demand, every invariant the BV-tree's guarantees rest on.
Used heavily by the test suite (including the property-based tests, which
call it after every batch of random operations); seeing it fail indicates a
bug in the library, never bad user input.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

from repro.errors import TreeInvariantError
from repro.core.descent import find_owner, locate
from repro.core.entry import Entry
from repro.core.placement import justified
from repro.core.node import DataPage, IndexNode

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.tree import BVTree


def check_tree(
    tree: "BVTree",
    sample_points: int = 0,
    check_occupancy: bool = True,
    check_owners: bool = False,
    check_justification: bool | None = None,
) -> None:
    """Raise :class:`TreeInvariantError` on any violated invariant.

    Checked invariants:

    1. every entry's key extends (or equals) the key of the region whose
       node stores it, and its level fits the node's index level;
    2. region keys are unique per partition level, tree-wide;
    3. every index node has at least one native entry; when
       ``check_justification`` is on (the default for trees that have never
       merged), every guard directly encloses a higher-level entry of its
       node — deletions may legitimately leave a guard that outlived its
       split boundary (see :mod:`repro.core.delete`), so the check is
       skipped once merges have happened;
    4. every node is reachable through exactly one entry and the page
       store contains no leaked or dangling pages belonging to the tree;
    5. data records lie inside their page's block, and the tree's record
       count matches the sum over pages;
    6. (``check_occupancy``) non-root pages meet the policy's minimum
       occupancy unless a merge was explicitly deferred;
    7. (``check_owners``) ``find_owner`` locates every entry — the descent
       property that makes updates single-descent operations;
    8. (``sample_points > 0``) stored records are re-found via the public
       exact-match search, which also re-verifies the path-length law
       ``nodes visited == height + 1``.
    """
    if check_justification is None:
        check_justification = tree.stats.merges == 0
    keys_by_level: dict[int, set] = {}
    referenced_pages: set[int] = set()
    total_records = 0
    path_bits = tree.space.path_bits
    sampled: list[tuple[float, ...]] = []

    root = tree.root_entry()
    stack: list[Entry] = [root]
    while stack:
        entry = stack.pop()
        if entry.page in referenced_pages:
            raise TreeInvariantError(
                f"page {entry.page} is referenced by more than one entry"
            )
        referenced_pages.add(entry.page)
        if entry.page not in tree.store:
            raise TreeInvariantError(
                f"entry {entry!r} references freed page {entry.page}"
            )
        if entry is not root:
            seen = keys_by_level.setdefault(entry.level, set())
            if entry.key in seen:
                raise TreeInvariantError(
                    f"duplicate level-{entry.level} region key {entry.key!r}"
                )
            seen.add(entry.key)

        if entry.level == 0:
            page = tree.store.read(entry.page)
            if not isinstance(page, DataPage):
                raise TreeInvariantError(
                    f"level-0 entry {entry!r} points at {type(page).__name__}"
                )
            total_records += len(page)
            for path, (point, _) in page.records.items():
                if not entry.key.contains_path(path, path_bits):
                    raise TreeInvariantError(
                        f"record {point} lies outside its page block "
                        f"{entry.key!r}"
                    )
            if sample_points and len(sampled) < sample_points and page.records:
                sampled.extend(
                    point
                    for point, _ in itertools.islice(
                        page.records.values(),
                        max(1, sample_points - len(sampled)),
                    )
                )
            continue

        node = tree.store.read(entry.page)
        if not isinstance(node, IndexNode):
            raise TreeInvariantError(
                f"level-{entry.level} entry {entry!r} points at "
                f"{type(node).__name__}"
            )
        if node.index_level != entry.level:
            raise TreeInvariantError(
                f"entry {entry!r} points at node of index level "
                f"{node.index_level}"
            )
        if node.native_count() == 0:
            raise TreeInvariantError(
                f"index node {entry.page} has no native entries"
            )
        for child in node.entries:
            if not entry.key.is_prefix_of(child.key):
                raise TreeInvariantError(
                    f"child key {child.key!r} does not extend node region "
                    f"{entry.key!r}"
                )
            if child.level > node.index_level - 1:
                raise TreeInvariantError(
                    f"level-{child.level} entry in index-level-"
                    f"{node.index_level} node"
                )
            if (
                check_justification
                and child.level < node.index_level - 1
                and not justified(tree, child, node)
            ):
                raise TreeInvariantError(
                    f"guard {child!r} in node {entry.page} encloses no "
                    f"higher-level entry directly"
                )
            stack.append(child)

    # Page-store reconciliation: nothing leaked, nothing dangling.  Only
    # meaningful when the store is not shared with other structures, which
    # the tree cannot know; a superset store is therefore tolerated but a
    # missing page never is.
    for page_id in referenced_pages:
        if page_id not in tree.store:
            raise TreeInvariantError(f"entry references freed page {page_id}")

    if total_records != tree.count:
        raise TreeInvariantError(
            f"tree.count is {tree.count} but pages hold {total_records}"
        )

    registered = {
        (level, key)
        for level, keys in tree.keys.items()
        for key in keys
    }
    stored = {
        (level, key)
        for level, keys in keys_by_level.items()
        for key in keys
    }
    if registered != stored:
        raise TreeInvariantError(
            f"key registry out of sync: only-registered="
            f"{sorted(registered - stored)[:5]}, only-stored="
            f"{sorted(stored - registered)[:5]}"
        )

    if check_occupancy:
        _check_occupancy(tree, root)

    if check_owners:
        _check_owners(tree, root)

    for point in sampled:
        found = locate(tree, tree.space.point_path(point))
        page = tree.store.read(found.entry.page)
        if tree.space.point_path(point) not in page.records:
            raise TreeInvariantError(f"stored record {point} not re-found")
        if found.nodes_visited != tree.height + 1:
            raise TreeInvariantError(
                f"search for {point} visited {found.nodes_visited} pages "
                f"in a tree of height {tree.height}"
            )


def _check_occupancy(tree: "BVTree", root: Entry) -> None:
    deferred = tree.stats.deferred_merges or tree.stats.deferred_splits
    min_data = tree.policy.min_data_occupancy()
    min_index = tree.policy.min_index_occupancy()
    stack = [root]
    while stack:
        entry = stack.pop()
        if entry.level == 0:
            page: DataPage = tree.store.read(entry.page)
            if entry is not root and len(page) < min_data and not deferred:
                raise TreeInvariantError(
                    f"data page {entry.page} holds {len(page)} records, "
                    f"minimum is {min_data}"
                )
            continue
        node: IndexNode = tree.store.read(entry.page)
        if entry is not root and len(node) < min_index and not deferred:
            raise TreeInvariantError(
                f"index node {entry.page} holds {len(node)} entries, "
                f"minimum is {min_index}"
            )
        stack.extend(node.entries)


def _check_owners(tree: "BVTree", root: Entry) -> None:
    stack = [root]
    while stack:
        entry = stack.pop()
        if entry.level == 0:
            continue
        node: IndexNode = tree.store.read(entry.page)
        for child in node.entries:
            owner = find_owner(tree, child)
            if owner != entry.page:
                raise TreeInvariantError(
                    f"find_owner located {child!r} in page {owner}, "
                    f"expected {entry.page}"
                )
            stack.append(child)
