"""The public BV-tree facade.

Example
-------
>>> from repro.geometry import DataSpace
>>> from repro.core import BVTree
>>> space = DataSpace.unit(2)
>>> tree = BVTree(space, data_capacity=4, fanout=8)
>>> tree.insert((0.1, 0.2), "a")
>>> tree.insert((0.8, 0.9), "b")
>>> tree.get((0.1, 0.2))
'a'
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Any, Iterator, Sequence

from repro.errors import KeyNotFoundError, ReproError, TreeInvariantError
from repro.core import bulk as _bulk
from repro.core import insert as _insert
from repro.core import delete as _delete
from repro.core import query as _query
from repro.core.columnar import (
    LAYOUTS,
    ColumnarDataPage,
    ColumnarIndexNode,
    locate_columnar,
)
from repro.core.descent import Locate, locate
from repro.core.entry import Entry
from repro.core.node import DataPage, IndexNode
from repro.core.policy import CapacityPolicy
from repro.core.stats import OpCounters, TreeStats, collect
from repro.geometry.rect import Rect
from repro.geometry.region import ROOT_KEY, RegionKey
from repro.geometry.space import DataSpace
from repro.obs.tracer import Tracer
from repro.storage import Storage, default_store

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.knn import KNNResult
    from repro.obs.explain import ExplainReport


class BVTree:
    """An n-dimensional index with B-tree characteristics (Freeston 1995).

    Parameters
    ----------
    space:
        The data space the indexed points live in.
    data_capacity:
        ``P`` — maximum records per data page.
    fanout:
        ``F`` — maximum unpromoted entries per index node.
    policy:
        ``"scaled"`` (default) gives index level ``x`` pages of ``x`` times
        the base size, which restores best-case capacity in the worst case
        (paper §7.3); ``"uniform"`` keeps one page size and accepts the
        §7.2 worst-case height growth.
    page_bytes:
        ``B`` — byte size of data pages and level-1 index pages (accounting
        only; pages store live objects).
    store:
        Optionally share a :class:`~repro.storage.Storage` backend (e.g.
        a :class:`~repro.storage.BufferPool` to measure cache behaviour,
        or a store co-located with other structures).  Core code depends
        only on the protocol, never on a concrete backend (lint rule R3).
    tracer:
        Optionally a pre-configured :class:`~repro.obs.Tracer`.  The tree
        shares its tracer with its store, so page-level and
        structure-level events interleave in one stream; by default the
        tracer is disabled (null sink) and the instrumented paths cost a
        single branch.  Attach a sink later with
        ``tree.tracer.attach(...)``.
    layout:
        ``"object"`` (default) stores pages as dicts and entry lists;
        ``"columnar"`` packs them into flat array columns
        (:mod:`repro.core.columnar`) — same answers, same page-access
        counts, faster hot loops.  ``None`` defers to the store's
        preference (:class:`~repro.storage.ColumnarStore` requests
        columnar pages); both layouts serve every query through the same
        code paths, which is what makes the object layout usable as a
        differential oracle for the columnar one.
    """

    def __init__(
        self,
        space: DataSpace,
        data_capacity: int = 16,
        fanout: int = 16,
        policy: str = "scaled",
        page_bytes: int = 1024,
        store: Storage | None = None,
        tracer: Tracer | None = None,
        layout: str | None = None,
    ):
        self.space = space
        if layout is None:
            layout = getattr(store, "layout", "object")
        if layout not in LAYOUTS:
            raise ReproError(
                f"unknown page layout {layout!r}; expected one of {LAYOUTS}"
            )
        self.layout = layout
        self.policy = CapacityPolicy(
            data_capacity=data_capacity,
            fanout=fanout,
            kind=policy,
            page_bytes=page_bytes,
        )
        self.store = store if store is not None else default_store(page_bytes)
        self.store.register_size_class(0, page_bytes)
        #: One tracer for the tree and its store (a caller-supplied store
        #: has its tracer replaced so events land in a single stream).
        self.tracer = tracer if tracer is not None else Tracer()
        self.store.tracer = self.tracer
        self.stats = OpCounters()
        self.count = 0
        self.height = 0
        self.root_page = self.store.allocate(self.make_data_page(), size_class=0)
        #: Per-level registry of live region keys — the canonical key sets
        #: that define region extents (BANG semantics: a region is its
        #: block minus the blocks of same-level keys nested inside it).
        #: Placement and merge decisions consult it for *global* shadow
        #: checks; it is an in-memory acceleration structure, not part of
        #: the paged representation.
        self.keys: dict[int, dict[RegionKey, Entry]] = {}
        #: Regions whose merge was deferred; retried on later deletions
        #: (see :mod:`repro.core.delete`).
        self.merge_retry: set[tuple[int, RegionKey]] = set()

    # ------------------------------------------------------------------
    # Structure plumbing
    # ------------------------------------------------------------------

    def root_entry(self) -> Entry:
        """The virtual entry for the root (the whole data space)."""
        return Entry(ROOT_KEY, self.height, self.root_page)

    def make_data_page(self) -> DataPage:
        """An empty data page in this tree's layout."""
        if self.layout == "columnar":
            return ColumnarDataPage(self.space.ndim, self.space.path_bits)
        return DataPage()

    def make_index_node(
        self, index_level: int, entries: Sequence[Entry] = ()
    ) -> IndexNode:
        """An index node in this tree's layout."""
        if self.layout == "columnar":
            return ColumnarIndexNode(
                index_level,
                entries,
                ndim=self.space.ndim,
                resolution=self.space.resolution,
                path_bits=self.space.path_bits,
            )
        return IndexNode(index_level, entries)

    def register_entry(self, entry: Entry) -> None:
        """Record a region key in the per-level registry (must be new)."""
        level_keys = self.keys.setdefault(entry.level, {})
        if entry.key in level_keys:
            raise TreeInvariantError(
                f"level-{entry.level} key {entry.key!r} registered twice"
            )
        level_keys[entry.key] = entry

    def unregister_entry(self, entry: Entry) -> None:
        """Remove a region key from the registry (must be present)."""
        level_keys = self.keys.get(entry.level)
        if level_keys is None or level_keys.get(entry.key) is not entry:
            raise TreeInvariantError(
                f"level-{entry.level} key {entry.key!r} not registered"
            )
        del level_keys[entry.key]

    def registered(self, level: int, key: RegionKey) -> Entry | None:
        """The live entry with exactly this level and key, if any."""
        return self.keys.get(level, {}).get(key)

    def alloc_index_node(self, node: IndexNode) -> int:
        """Allocate a page for an index node in its policy size class."""
        size_class = self.policy.size_class(node.index_level)
        self.store.register_size_class(
            size_class, self.policy.index_node_bytes(node.index_level)
        )
        return self.store.allocate(node, size_class=size_class)

    def alloc_data_page(self, page: DataPage) -> int:
        """Allocate a page for a data page (size class 0)."""
        return self.store.allocate(page, size_class=0)

    # ------------------------------------------------------------------
    # Point operations
    # ------------------------------------------------------------------

    def insert(
        self, point: Sequence[float], value: Any = None, replace: bool = False
    ) -> None:
        """Insert a record; raises DuplicateKeyError unless ``replace``.

        Two points identical in the leading ``space.resolution`` bits of
        every coordinate are the same key to the index.
        """
        # Update ops open spans under the wider ``structural`` guard so a
        # guarantee monitor (tap-only, no sink) can group split work per
        # operation; read ops stay on ``enabled``.
        tracer = self.tracer
        if not tracer.structural:
            _insert.insert_point(self, point, value, replace=replace)
            return
        with tracer.operation("insert", point=list(point)):
            _insert.insert_point(self, point, value, replace=replace)

    def get(self, point: Sequence[float]) -> Any:
        """The value stored at ``point`` (KeyNotFoundError if absent)."""
        # The untraced path is written out in full (not delegated to a
        # helper shared with the traced branch): exact match is the
        # tightest perf budget in the repo and one extra frame per get
        # would cost more than the whole tracing check.
        tracer = self.tracer
        if not tracer.enabled:
            # Second guard: a direct-call cost profiler (repro.obs.profile)
            # hooks the untraced read path here — the span machinery would
            # blow its overhead budget, one attribute load will not.  The
            # profiled body is written out inline (a third copy of the
            # lookup) for the same reason the fast path is: an extra
            # frame per get would eat a third of the profiler's own
            # overhead budget.  Latency and page deltas land in the
            # profiler, errors are counted without touching the
            # distributions, and the exception propagates unchanged.
            profiler = tracer.profiler
            if profiler is not None:
                rstats = profiler.rstats
                r0 = (
                    rstats.hits + rstats.misses
                    if profiler.buffered
                    else rstats.reads
                )
                t0 = perf_counter()
                try:
                    path = self.space.point_path(point)
                    if self.layout == "columnar" and self.height > 0:
                        entry = locate_columnar(self, path)[0]
                    else:
                        entry = locate(self, path).entry
                    page: DataPage = self.store.read(entry.page)
                    record = page.get(path)
                    if record is None:
                        raise KeyNotFoundError(f"no record at {tuple(point)}")
                except BaseException:
                    profiler.end_error("get")
                    raise
                profiler.end_get(t0, r0, point)
                return record[1]
            path = self.space.point_path(point)
            if self.layout == "columnar" and self.height > 0:
                # Fused column descent, and no Locate/GuardSet wrapper:
                # get only needs the winning entry.
                entry = locate_columnar(self, path)[0]
            else:
                entry = locate(self, path).entry
            page = self.store.read(entry.page)
            record = page.get(path)
            if record is None:
                raise KeyNotFoundError(f"no record at {tuple(point)}")
            return record[1]
        with tracer.operation("get", point=list(point)):
            path = self.space.point_path(point)
            found = locate(self, path)
            page = self.store.read(found.entry.page)
            record = page.get(path)
            if record is None:
                raise KeyNotFoundError(f"no record at {tuple(point)}")
            return record[1]

    def get_fast(self, point: Sequence[float]) -> Any:
        """Exact-match lookup through the key registry (O(path bits)).

        Canonical placement means the data page owning a point is the one
        whose key is the longest registered level-0 prefix of the point's
        path — no tree descent needed.  Returns the same answers as
        :meth:`get` (the property tests assert the equivalence, which
        doubles as a canonical-placement audit); unlike :meth:`get`, the
        cost does not model paged I/O, so benchmarks use :meth:`get`.
        """
        path = self.space.point_path(point)
        registry = self.keys.get(0, {})
        for length in range(self.space.path_bits, -1, -1):
            key = RegionKey(length, path >> (self.space.path_bits - length))
            entry = registry.get(key)
            if entry is not None:
                page: DataPage = self.store.read(entry.page)
                record = page.get(path)
                if record is None:
                    raise KeyNotFoundError(f"no record at {tuple(point)}")
                return record[1]
        # No level-0 key registered: the root is still a bare data page.
        page = self.store.read(self.root_page)
        record = page.get(path)
        if record is None:
            raise KeyNotFoundError(f"no record at {tuple(point)}")
        return record[1]

    def bulk_load(
        self,
        records: Iterator[tuple[Sequence[float], Any]] | Sequence[tuple[Sequence[float], Any]],
        replace: bool = False,
    ) -> int:
        """Bulk-build this (empty) tree from ``(point, value)`` records.

        Plans the final data-page partition over the sorted bit paths and
        replays the planned splits through the standard placement
        machinery — one structural operation per page instead of a full
        descent per record, several times faster than repeated
        :meth:`insert` at load scale (see ``docs/PERFORMANCE.md``).  The
        result satisfies every invariant of an incrementally built tree
        (:meth:`check` with ``check_owners=True`` passes) and answers all
        queries identically.  Returns the number of records loaded.

        Raises :class:`~repro.errors.ReproError` if the tree is not
        empty, and :class:`~repro.errors.DuplicateKeyError` on records
        with path-identical points unless ``replace`` is set (the last
        such record in input order then wins, as repeated
        ``insert(..., replace=True)`` would).
        """
        tracer = self.tracer
        if not tracer.structural:
            return _bulk.bulk_load(self, records, replace=replace)
        with tracer.operation("bulk_load"):
            return _bulk.bulk_load(self, records, replace=replace)

    def update_many(
        self,
        records: Iterator[tuple[Sequence[float], Any]] | Sequence[tuple[Sequence[float], Any]],
        replace: bool = True,
    ) -> int:
        """Insert many (point, value) records; returns how many were new."""
        before = self.count
        for point, value in records:
            self.insert(point, value, replace=replace)
        return self.count - before

    def clear(self) -> None:
        """Remove every record and page, resetting to an empty tree.

        The teardown traversal uses the store's uncounted
        :meth:`~repro.storage.Storage.peek`, so clearing a tree does not
        charge page reads — benchmarks that rebuild between runs start
        from clean I/O counters.
        """
        stack = [self.root_entry()]
        pages = []
        while stack:
            entry = stack.pop()
            content = self.store.peek(entry.page)
            pages.append(entry.page)
            if isinstance(content, IndexNode):
                stack.extend(content.entries)
        for page in pages:
            self.store.free(page)
        self.keys.clear()
        self.merge_retry.clear()
        self.count = 0
        self.height = 0
        self.root_page = self.store.allocate(self.make_data_page(), size_class=0)

    def contains(self, point: Sequence[float]) -> bool:
        """True if a record exists at ``point``."""
        try:
            self.get(point)
        except KeyNotFoundError:
            return False
        return True

    def search(self, point: Sequence[float]) -> Locate:
        """Exact-match descent diagnostics (visited pages, guard set size).

        Every descent visits exactly ``height + 1`` pages (paper §6); the
        benchmarks assert this.
        """
        return locate(self, self.space.point_path(point))

    def delete(self, point: Sequence[float]) -> Any:
        """Remove and return the record at ``point`` (KeyNotFoundError if absent)."""
        tracer = self.tracer
        if not tracer.structural:
            return _delete.delete_point(self, point)
        with tracer.operation("delete", point=list(point)):
            return _delete.delete_point(self, point)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def range_query(
        self, lows: Sequence[float], highs: Sequence[float]
    ) -> "_query.QueryResult":
        """All records in the half-open box ``[lows, highs)``."""
        tracer = self.tracer
        if not tracer.enabled:
            profiler = tracer.profiler
            if profiler is None:
                return _query.range_query(self, Rect(lows, highs))
            rstats = profiler.rstats
            r0 = (
                rstats.hits + rstats.misses
                if profiler.buffered
                else rstats.reads
            )
            t0 = perf_counter()
            try:
                result = _query.range_query(self, Rect(lows, highs))
            except BaseException:
                profiler.end_error("range")
                raise
            profiler.end_range(t0, r0, lows, highs)
            return result
        with tracer.operation("range", lows=list(lows), highs=list(highs)):
            return _query.range_query(self, Rect(lows, highs))

    def partial_match(
        self, constraints: dict[int, float]
    ) -> "_query.QueryResult":
        """Records matching exact values on a subset of dimensions.

        ``constraints`` maps dimension index to the required value; the
        match granularity is one grid cell of the space's resolution.  The
        BV-tree treats every combination of constrained dimensions
        symmetrically — the defining property asked of an n-dimensional
        B-tree (paper §1).
        """
        return _query.partial_match(self, constraints)

    def nearest(self, point: Sequence[float], k: int = 1) -> "KNNResult":
        """The ``k`` records nearest to ``point`` (Euclidean distance).

        Returns a :class:`~repro.core.knn.KNNResult` with the neighbours
        ordered nearest-first and the traversal's page-access count.
        """
        from repro.core.knn import nearest_neighbours

        tracer = self.tracer
        if not tracer.enabled:
            profiler = tracer.profiler
            if profiler is None:
                return nearest_neighbours(self, point, k=k)
            rstats = profiler.rstats
            r0 = (
                rstats.hits + rstats.misses
                if profiler.buffered
                else rstats.reads
            )
            t0 = perf_counter()
            try:
                result = nearest_neighbours(self, point, k=k)
            except BaseException:
                profiler.end_error("knn")
                raise
            profiler.end_knn(t0, r0, point, k)
            return result
        with tracer.operation("knn", point=list(point), k=k):
            return nearest_neighbours(self, point, k=k)

    def explain(
        self,
        point: Sequence[float] | None = None,
        *,
        rect: tuple[Sequence[float], Sequence[float]] | None = None,
        knn: Sequence[float] | None = None,
        k: int = 1,
    ) -> "ExplainReport":
        """EXPLAIN a query: what it visited, pruned, and why.

        Exactly one of ``point`` (exact match), ``rect=(lows, highs)``
        (range query) or ``knn`` (k-nearest, with ``k``) must be given.
        The query runs for real under a temporary capture tracer — the
        tree is read but not modified, and the caller's tracer is
        restored afterwards — and the captured event slice is folded
        into an :class:`~repro.obs.ExplainReport` (see
        :mod:`repro.obs.explain`).
        """
        from repro.obs import explain as _explain

        given = sum(1 for q in (point, rect, knn) if q is not None)
        if given != 1:
            raise ReproError(
                "explain() takes exactly one of point=..., rect=..., "
                f"knn=...; got {given}"
            )
        if point is not None:
            return _explain.explain_point(self, point)
        if rect is not None:
            lows, highs = rect
            return _explain.explain_range(self, lows, highs)
        if knn is not None:
            return _explain.explain_knn(self, knn, k=k)
        raise TreeInvariantError("explain() dispatch fell through")

    def items(self) -> Iterator[tuple[tuple[float, ...], Any]]:
        """Iterate all (point, value) records (unspecified order)."""
        stack = [self.root_entry()]
        while stack:
            entry = stack.pop()
            if entry.level == 0:
                page: DataPage = self.store.read(entry.page)
                yield from page.records.values()
            else:
                node: IndexNode = self.store.read(entry.page)
                stack.extend(node.entries)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def tree_stats(self) -> TreeStats:
        """Structural statistics (heights, occupancies, guard counts)."""
        return collect(self)

    def check(
        self,
        sample_points: int = 0,
        check_occupancy: bool = True,
        check_owners: bool = False,
        check_justification: bool | None = None,
    ) -> None:
        """Verify all structural invariants; raises TreeInvariantError.

        With ``sample_points > 0``, additionally re-locates that many
        stored records through the public search path; ``check_owners``
        verifies the single-descent owner-lookup property for every entry.
        """
        from repro.core.checker import check_tree

        check_tree(
            self,
            sample_points=sample_points,
            check_occupancy=check_occupancy,
            check_owners=check_owners,
            check_justification=check_justification,
        )

    def __len__(self) -> int:
        return self.count

    def __contains__(self, point: Sequence[float]) -> bool:
        return self.contains(point)

    def __repr__(self) -> str:
        return (
            f"BVTree({self.count} points, height={self.height}, "
            f"{self.policy!r})"
        )
