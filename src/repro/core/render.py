"""Human-readable renderings of a BV-tree.

Two views, both plain text:

- :func:`render_tree` — the index structure: one line per entry,
  indentation following the index tree, guards marked with ``*`` and
  every entry showing its partition level and region key (the notation
  of the paper's Figures 2-1a…2-1d).
- :func:`render_partition` — for 2-d spaces, a character raster of the
  level-0 partition: each cell shows which data page owns it, so
  enclosure (holey regions) is directly visible.

Used by ``python -m repro demo --show-tree`` and handy when debugging.
"""

from __future__ import annotations

import string
from typing import TYPE_CHECKING

from repro.errors import GeometryError, TreeInvariantError
from repro.core.descent import locate
from repro.core.node import DataPage, IndexNode

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.entry import Entry
    from repro.core.tree import BVTree


def render_tree(tree: "BVTree", max_depth: int | None = None) -> str:
    """The index structure as an indented outline.

    ``*`` marks guards (entries stored above their native level); data
    pages show their record counts.
    """
    lines: list[str] = []

    def visit(entry: Entry, depth: int) -> None:
        key = entry.key.bit_string() or "ε"
        content = tree.store.read(entry.page)
        indent = "  " * depth
        if isinstance(content, DataPage):
            lines.append(
                f"{indent}L0 '{key}' — data page {entry.page}, "
                f"{len(content)} record(s)"
            )
            return
        if not isinstance(content, IndexNode):
            raise TreeInvariantError(
                f"page {entry.page} holds neither a data page nor an "
                f"index node: {type(content).__name__}"
            )
        lines.append(
            f"{indent}L{entry.level} '{key}' — index node {entry.page} "
            f"(level {content.index_level}: {content.native_count()} native, "
            f"{content.guard_count()} guard)"
        )
        if max_depth is not None and depth >= max_depth:
            lines.append(f"{indent}  …")
            return
        ordered = sorted(
            content.entries, key=lambda e: (-e.level, e.key.bit_string())
        )
        for child in ordered:
            if child.level < content.index_level - 1:
                marker = "  " * (depth + 1) + "* guard:"
                lines.append(marker)
            visit(child, depth + 1)

    visit(tree.root_entry(), 0)
    return "\n".join(lines)


def render_partition(
    tree: "BVTree", width: int = 64, height: int = 24
) -> str:
    """A raster of the 2-d level-0 partition (one glyph per data page).

    Each raster cell is resolved through the real exact-match descent, so
    what you see is the partition the search actually uses — including
    the space owned by promoted (guard) pages.
    """
    if tree.space.ndim != 2:
        raise GeometryError(
            f"partition rendering needs a 2-d space, got {tree.space.ndim}-d"
        )
    glyphs = string.ascii_lowercase + string.ascii_uppercase + string.digits
    page_glyph: dict[int, str] = {}

    def glyph_for(page: int) -> str:
        if page not in page_glyph:
            page_glyph[page] = glyphs[len(page_glyph) % len(glyphs)]
        return page_glyph[page]

    (x_lo, x_hi), (y_lo, y_hi) = tree.space.bounds
    rows: list[str] = []
    for row in range(height):
        cells = []
        for col in range(width):
            x = x_lo + (col + 0.5) / width * (x_hi - x_lo)
            y = y_lo + (height - row - 0.5) / height * (y_hi - y_lo)
            found = locate(tree, tree.space.point_path((x, y)))
            cells.append(glyph_for(found.entry.page))
        rows.append("".join(cells))
    legend = ", ".join(
        f"{glyph}=page {page}" for page, glyph in list(page_glyph.items())[:12]
    )
    if len(page_glyph) > 12:
        legend += f", … ({len(page_glyph)} pages total)"
    return "\n".join(rows) + "\n" + legend
