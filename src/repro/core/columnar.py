"""Columnar, array-native page layout for the hot paths (ROADMAP item 3).

The object layout stores a data page as ``dict[path -> (point, value)]``
and an index node as a list of :class:`~repro.core.entry.Entry` objects;
every descent comparison and scan then walks Python objects.  This module
packs the same state into parallel flat columns:

Data pages (:class:`ColumnarDataPage`)::

    _c_paths   sorted bit paths        array('Q')  (list when > 64 bits)
    _c_coords  coordinates, flattened  array('d')  (ndim doubles / record)
    _c_values  payloads                list        (arbitrary objects)

    record i  =  (_c_paths[i],
                  tuple(_c_coords[i*ndim : (i+1)*ndim]),
                  _c_values[i])

Index nodes (:class:`ColumnarIndexNode`) keep the ``entries`` list — the
tree's update algorithms hold :class:`Entry` objects by *identity*
(``find_owner``, the registry, guard lodging), so entries stay the live
handles — and add derived columns:

    _c_org / _c_end    per-entry, per-dimension integer cell origins and
                       ends of the entry's block (entries order) — the
                       O(ndim) intersect / min-dist test that replaces
                       the O(nbits) per-key bit decode
    _c_nat_aligned     native keys aligned to the space's full path
    _c_nat_end           width (sorted; + block end, bit length, Entry)
    _c_nat_nbits         — longest-prefix match becomes one bisect plus
    _c_nat_entries       a short walk-back instead of a linear scan
    _c_g_aligned       guard keys as aligned path intervals (+ bit
    _c_g_end             length and Entry side columns; guards are rare,
    _c_g_nbits           so a tight scan with two integer compares per
    _c_g_entries         guard beats any clever structure)

:func:`locate_columnar` fuses the whole root-to-leaf exact-match descent
into one loop over these columns — same pages read, same winners, same
invariant errors as :func:`repro.core.descent.step` per level, without
the per-node method dispatch or the guard-list materialisation.

Aligned native keys sort so that every block containing a search path
precedes (or equals) the path's own aligned value, and the *longest*
matching prefix sorts last among the matches — ``bisect_right`` lands
just past it.  Blocks wholly left of the path (``end <= path``) and
natives longer than the query path (demotion descents search with
``path_bits < space.path_bits``) are skipped walking back.

Every column attribute is prefixed ``_c_`` and may be touched **only**
inside this module — lintkit rule R13 enforces the confinement, exactly
as R12 confines file I/O to the storage layer.  All other code goes
through the layout-agnostic methods (``insert``/``get``/``extract_block``
/``absorb``/``best_native_match``/…) shared with the object classes.

Equivalence with the object layout is exact by construction — the same
integer cut-offs, the same float expressions as
:func:`~repro.geometry.bitgrid.key_min_dist_sq` — and proven by the
hypothesis differential suite in
``tests/properties/test_columnar_equivalence.py``.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from heapq import heappush, heapreplace
from types import MappingProxyType
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.errors import DuplicateKeyError, TreeInvariantError
from repro.core.entry import Entry
from repro.core.node import DataPage, IndexNode
from repro.geometry.bitgrid import CellBounds, key_origins
from repro.geometry.rect import Rect
from repro.geometry.region import RegionKey

__all__ = [
    "ColumnarDataPage",
    "ColumnarIndexNode",
    "LAYOUTS",
    "locate_columnar",
]

#: The page layouts a tree can be built with.
LAYOUTS = ("object", "columnar")

#: Largest bit-path width that fits the packed unsigned column.
_PACKED_PATH_BITS = 64


def _path_column(path_bits: int) -> "array[int] | list[int]":
    """An empty sorted bit-path column.

    Packed unsigned 64-bit when the space's paths fit (they do at every
    benchmarked scale: ``ndim * resolution <= 64``); a plain list of
    Python ints otherwise — ``resolution`` may go up to 64 per dimension.
    """
    return array("Q") if path_bits <= _PACKED_PATH_BITS else []


class ColumnarDataPage(DataPage):
    """A data page stored as parallel sorted columns.

    Same contract as :class:`DataPage`; ``records`` is materialised on
    demand as a read-only mapping for the cold paths (checker, snapshot,
    durable codec) that want the dict view.
    """

    __slots__ = ("ndim", "path_bits", "_c_paths", "_c_coords", "_c_values")

    def __init__(self, ndim: int, path_bits: int) -> None:
        # Deliberately no super().__init__(): the base `records` dict slot
        # stays unset and is shadowed by the property below.
        self.ndim = ndim
        self.path_bits = path_bits
        self._c_paths = _path_column(path_bits)
        self._c_coords = array("d")
        self._c_values: list[Any] = []

    # ------------------------------------------------------------------
    # Record access
    # ------------------------------------------------------------------

    @property  # type: ignore[override]
    def records(self) -> Mapping[int, tuple[tuple[float, ...], Any]]:
        """A read-only dict view, materialised in path order.

        For the cold callers only (checker, snapshot, durable diff);
        writes must go through :meth:`insert`/:meth:`delete` — mutating
        the view raises.
        """
        coords = self._c_coords
        nd = self.ndim
        return MappingProxyType(
            {
                path: (tuple(coords[i * nd : (i + 1) * nd]), value)
                for i, (path, value) in enumerate(
                    zip(self._c_paths, self._c_values)
                )
            }
        )

    def insert(
        self,
        path: int,
        point: tuple[float, ...],
        value: Any,
        replace: bool = False,
    ) -> None:
        """Store a record; duplicates raise unless ``replace`` is set."""
        paths = self._c_paths
        i = bisect_left(paths, path)
        nd = self.ndim
        if i < len(paths) and paths[i] == path:
            if not replace:
                raise DuplicateKeyError(
                    f"a record with the bit path of point {point} "
                    f"already exists"
                )
            self._c_coords[i * nd : (i + 1) * nd] = array("d", point)
            self._c_values[i] = value
            return
        paths.insert(i, path)
        self._c_values.insert(i, value)
        self._c_coords[i * nd : i * nd] = array("d", point)

    def delete(self, path: int) -> tuple[tuple[float, ...], Any]:
        """Remove and return the record with this path (KeyError if absent)."""
        paths = self._c_paths
        i = bisect_left(paths, path)
        if i == len(paths) or paths[i] != path:
            raise KeyError(path)
        nd = self.ndim
        point = tuple(self._c_coords[i * nd : (i + 1) * nd])
        value = self._c_values[i]
        del paths[i]
        del self._c_values[i]
        del self._c_coords[i * nd : (i + 1) * nd]
        return point, value

    def get(self, path: int) -> tuple[tuple[float, ...], Any] | None:
        """The (point, value) stored under this path, or None."""
        paths = self._c_paths
        i = bisect_left(paths, path)
        if i == len(paths) or paths[i] != path:
            return None
        nd = self.ndim
        return tuple(self._c_coords[i * nd : (i + 1) * nd]), self._c_values[i]

    def paths(self) -> Iterator[int]:
        """Iterate the bit paths, in ascending path order."""
        return iter(self._c_paths)

    def __contains__(self, path: int) -> bool:
        paths = self._c_paths
        i = bisect_left(paths, path)
        return i < len(paths) and paths[i] == path

    def __len__(self) -> int:
        return len(self._c_paths)

    def __repr__(self) -> str:
        return f"ColumnarDataPage({len(self._c_paths)} records)"

    # ------------------------------------------------------------------
    # Block structure (splits, merges, bulk build)
    # ------------------------------------------------------------------

    def clone(self) -> "ColumnarDataPage":
        """A copy sharing no mutable column state with this page.

        Values are shared (they are opaque payloads the tree never
        mutates); the three columns themselves are fresh containers, so
        in-place edits to either page never show through the other.
        The snapshot layer's commit-time cloning depends on exactly
        this property.
        """
        page = ColumnarDataPage(self.ndim, self.path_bits)
        paths = self._c_paths
        page._c_paths = (
            array(paths.typecode, paths)
            if isinstance(paths, array)
            else list(paths)
        )
        page._c_coords = array("d", self._c_coords)
        page._c_values = list(self._c_values)
        return page

    def extract_block(self, key: RegionKey, path_bits: int) -> "ColumnarDataPage":
        """Split out the records inside ``key``'s block into a new page.

        A block is one aligned path interval, so on the sorted column the
        extraction is a single contiguous slice — no per-record key test.
        """
        shift = path_bits - key.nbits
        lo = key.value << shift
        i0 = bisect_left(self._c_paths, lo)
        i1 = bisect_left(self._c_paths, lo + (1 << shift))
        nd = self.ndim
        inner = ColumnarDataPage(nd, self.path_bits)
        inner._c_paths = self._c_paths[i0:i1]
        inner._c_coords = self._c_coords[i0 * nd : i1 * nd]
        inner._c_values = self._c_values[i0:i1]
        del self._c_paths[i0:i1]
        del self._c_coords[i0 * nd : i1 * nd]
        del self._c_values[i0:i1]
        return inner

    def absorb(self, other: DataPage) -> None:
        """Take over every record of ``other`` (merge / absorb path).

        Merged regions are disjoint path blocks, so the victim's sorted
        column lands in one contiguous gap of ours — a single splice.
        Falls back to per-record inserts if the inputs interleave.
        """
        if isinstance(other, ColumnarDataPage) and other._c_paths:
            opaths = other._c_paths
            paths = self._c_paths
            i = bisect_left(paths, opaths[0])
            if i == bisect_right(paths, opaths[-1], lo=i):
                nd = self.ndim
                if isinstance(paths, list) and not isinstance(opaths, list):
                    paths[i:i] = list(opaths)
                else:
                    paths[i:i] = opaths
                self._c_coords[i * nd : i * nd] = other._c_coords
                self._c_values[i:i] = other._c_values
                return
        for path, (point, value) in other.records.items():
            self.insert(path, point, value, replace=True)

    def fill_sorted(
        self, items: "Iterable[tuple[int, tuple[float, ...], Any]]"
    ) -> None:
        """Bulk-append ``(path, point, value)`` records in ascending path
        order onto an empty page — the bulk loader's plan emits exactly
        that, so no per-record search is needed."""
        paths = self._c_paths
        coords = self._c_coords
        values = self._c_values
        for path, point, value in items:
            paths.append(path)
            coords.extend(point)
            values.append(value)

    # ------------------------------------------------------------------
    # Query hot loops
    # ------------------------------------------------------------------

    def collect_in_rect(
        self, rect: Rect, out: list[tuple[tuple[float, ...], Any]]
    ) -> None:
        """Append this page's records inside the half-open box to ``out``."""
        coords = self._c_coords
        nd = self.ndim
        if nd == 2:
            (lo0, lo1) = rect.lows
            (hi0, hi1) = rect.highs
            i = 0
            for value in self._c_values:
                x0 = coords[i]
                x1 = coords[i + 1]
                i += 2
                if lo0 <= x0 < hi0 and lo1 <= x1 < hi1:
                    out.append(((x0, x1), value))
            return
        lows = rect.lows
        highs = rect.highs
        for j, value in enumerate(self._c_values):
            base = j * nd
            for dim in range(nd):
                x = coords[base + dim]
                if not lows[dim] <= x < highs[dim]:
                    break
            else:
                out.append((tuple(coords[base : base + nd]), value))

    def accumulate_nearest(
        self,
        query: tuple[float, ...],
        k: int,
        best: list[tuple[float, int, tuple[float, ...], Any]],
        counter: Iterator[int],
    ) -> None:
        """Feed this page's records into the k-NN candidate max-heap.

        ``best`` holds ``(-dist_sq, tiebreak, point, value)``; distances
        are the same left-to-right float sums the object layout computes,
        so the bound evolution (and hence the page visit set) matches.
        """
        coords = self._c_coords
        nd = self.ndim
        if nd == 2:
            q0, q1 = query
            i = 0
            for value in self._c_values:
                x0 = coords[i]
                x1 = coords[i + 1]
                i += 2
                d = (x0 - q0) ** 2 + (x1 - q1) ** 2
                if len(best) < k:
                    heappush(best, (-d, next(counter), (x0, x1), value))
                elif d < -best[0][0]:
                    heapreplace(best, (-d, next(counter), (x0, x1), value))
            return
        for j, value in enumerate(self._c_values):
            base = j * nd
            d = 0.0
            for dim in range(nd):
                d += (coords[base + dim] - query[dim]) ** 2
            if len(best) < k:
                heappush(
                    best,
                    (-d, next(counter), tuple(coords[base : base + nd]), value),
                )
            elif d < -best[0][0]:
                heapreplace(
                    best,
                    (-d, next(counter), tuple(coords[base : base + nd]), value),
                )


class ColumnarIndexNode(IndexNode):
    """An index node carrying flat search columns next to its entries.

    The ``entries`` list (and the base class's linear algorithms over it)
    stays authoritative for identity and ordering; the columns are
    derived state maintained by :meth:`add`/:meth:`remove` and consulted
    by the overridden matching methods.
    """

    __slots__ = (
        "ndim",
        "resolution",
        "path_bits",
        "_c_org",
        "_c_end",
        "_c_nat_aligned",
        "_c_nat_end",
        "_c_nat_nbits",
        "_c_nat_entries",
        "_c_g_aligned",
        "_c_g_end",
        "_c_g_nbits",
        "_c_g_entries",
    )

    def __init__(
        self,
        index_level: int,
        entries: Sequence[Entry] = (),
        *,
        ndim: int,
        resolution: int,
        path_bits: int,
    ):
        self.ndim = ndim
        self.resolution = resolution
        self.path_bits = path_bits
        self._c_org: list[int] = []
        self._c_end: list[int] = []
        self._c_nat_aligned: list[int] = []
        self._c_nat_end: list[int] = []
        self._c_nat_nbits: list[int] = []
        self._c_nat_entries: list[Entry] = []
        self._c_g_aligned: list[int] = []
        self._c_g_end: list[int] = []
        self._c_g_nbits: list[int] = []
        self._c_g_entries: list[Entry] = []
        super().__init__(index_level, ())
        for entry in entries:
            self.add(entry)

    # ------------------------------------------------------------------
    # Column maintenance
    # ------------------------------------------------------------------

    def _append_block(self, key: RegionKey) -> None:
        """Extend the per-entry origin/end columns with ``key``'s block."""
        resolution = self.resolution
        origins, halvings = key_origins(key.value, key.nbits, self.ndim, resolution)
        org = self._c_org
        end = self._c_end
        for dim, o in enumerate(origins):
            org.append(o)
            end.append(o + (1 << (resolution - halvings[dim])))

    def add(self, entry: Entry) -> None:
        """Insert an entry, keeping every derived column in step."""
        super().add(entry)
        self._append_block(entry.key)
        key = entry.key
        if entry.level == self.index_level - 1:
            aligned = key.value << (self.path_bits - key.nbits)
            col = self._c_nat_aligned
            i = bisect_right(col, aligned)
            # Equal origins mean nested blocks: keep ascending nbits so
            # the longest prefix sorts last among its containers.
            nbits_col = self._c_nat_nbits
            while i > 0 and col[i - 1] == aligned and nbits_col[i - 1] > key.nbits:
                i -= 1
            col.insert(i, aligned)
            self._c_nat_end.insert(
                i, aligned + (1 << (self.path_bits - key.nbits))
            )
            nbits_col.insert(i, key.nbits)
            self._c_nat_entries.insert(i, entry)
        else:
            aligned = key.value << (self.path_bits - key.nbits)
            self._c_g_aligned.append(aligned)
            self._c_g_end.append(
                aligned + (1 << (self.path_bits - key.nbits))
            )
            self._c_g_nbits.append(key.nbits)
            self._c_g_entries.append(entry)

    def remove(self, entry: Entry) -> None:
        """Remove an entry object and its column rows."""
        entries = self.entries
        for i, existing in enumerate(entries):
            if existing is entry:
                break
        else:
            raise TreeInvariantError(f"{entry!r} not present in node")
        super().remove(entry)
        nd = self.ndim
        del self._c_org[i * nd : (i + 1) * nd]
        del self._c_end[i * nd : (i + 1) * nd]
        if entry.level == self.index_level - 1:
            j = self._c_nat_entries.index(entry)
            del self._c_nat_aligned[j]
            del self._c_nat_end[j]
            del self._c_nat_nbits[j]
            del self._c_nat_entries[j]
        else:
            j = self._c_g_entries.index(entry)
            del self._c_g_aligned[j]
            del self._c_g_end[j]
            del self._c_g_nbits[j]
            del self._c_g_entries[j]

    def native_count(self) -> int:
        return len(self._c_nat_entries)

    def natives(self) -> list[Entry]:
        """The unpromoted entries, in entries order (like the base class)."""
        level = self.index_level - 1
        return [e for e in self.entries if e.level == level]

    def __repr__(self) -> str:
        return (
            f"ColumnarIndexNode(level={self.index_level}, "
            f"natives={self.native_count()}, guards={self.guard_count()})"
        )

    # ------------------------------------------------------------------
    # Matching (the descent hot path)
    # ------------------------------------------------------------------

    def best_native_match(self, path: int, path_bits: int) -> Entry | None:
        """Longest-prefix native containing the path: bisect + walk-back.

        ``path_bits`` may be shorter than the space's full width (update
        descents search along region keys), so natives longer than the
        query path are skipped — exactly :meth:`Entry.matches_path`.
        """
        aligned_col = self._c_nat_aligned
        if not aligned_col:
            return None
        q = path << (self.path_bits - path_bits)
        j = bisect_right(aligned_col, q) - 1
        end_col = self._c_nat_end
        nbits_col = self._c_nat_nbits
        while j >= 0:
            if end_col[j] > q and nbits_col[j] <= path_bits:
                return self._c_nat_entries[j]
            j -= 1
        return None

    def matching_guards(self, path: int, path_bits: int) -> list[Entry]:
        """All guard entries whose block contains the path.

        A guard matches iff its aligned interval contains the aligned
        query — two integer compares per guard, no per-guard shifting.
        The ``nbits`` filter only matters for update descents searching
        with a short path (``path_bits < space.path_bits``).
        """
        aligned_col = self._c_g_aligned
        if not aligned_col:
            return []
        q = path << (self.path_bits - path_bits)
        end_col = self._c_g_end
        nbits_col = self._c_g_nbits
        entries = self._c_g_entries
        return [
            entries[i]
            for i, aligned in enumerate(aligned_col)
            if aligned <= q < end_col[i] and nbits_col[i] <= path_bits
        ]

    # ------------------------------------------------------------------
    # Query hot loops
    # ------------------------------------------------------------------

    def push_intersecting(self, stack: list[Entry], bounds: CellBounds) -> None:
        """Append the children whose blocks intersect the query cut-offs.

        Children keep entries order, so the caller's LIFO traversal
        visits exactly the sequence the object layout's filter-at-pop
        produces.  The test per child is ``2 * ndim`` integer compares on
        the cached origin/end columns — no per-key bit decode.
        """
        org = self._c_org
        end = self._c_end
        if self.ndim == 2:
            (b0, a0), (b1, a1) = bounds
            i = 0
            for entry in self.entries:
                if (
                    org[i] <= a0
                    and end[i] > b0
                    and org[i + 1] <= a1
                    and end[i + 1] > b1
                ):
                    stack.append(entry)
                i += 2
            return
        nd = self.ndim
        for j, entry in enumerate(self.entries):
            base = j * nd
            for dim in range(nd):
                b, a = bounds[dim]
                if org[base + dim] > a or end[base + dim] <= b:
                    break
            else:
                stack.append(entry)

    def expand_nearest(
        self,
        heap: list[tuple[float, int, Entry]],
        best: list[tuple[float, int, tuple[float, ...], Any]],
        k: int,
        query: tuple[float, ...],
        space: Any,
        counter: Iterator[int],
    ) -> None:
        """Push the children that could still beat the k-th best distance.

        The lower bound per child reuses the cached integer origins/ends
        with the exact float expressions of
        :func:`~repro.geometry.bitgrid.key_min_dist_sq`, so bounds — and
        therefore the visit and prune sets — are bit-identical to the
        object layout's.
        """
        cells = 1 << self.resolution
        bounds = space.bounds
        spans = space.spans
        org = self._c_org
        end = self._c_end
        nd = self.ndim
        i = 0
        for entry in self.entries:
            total = 0.0
            for dim in range(nd):
                lo = bounds[dim][0]
                span = spans[dim]
                block_lo = lo + org[i + dim] / cells * span
                block_hi = lo + end[i + dim] / cells * span
                x = query[dim]
                if x < block_lo:
                    total += (block_lo - x) ** 2
                elif x > block_hi:
                    total += (x - block_hi) ** 2
            i += nd
            if len(best) < k or total <= -best[0][0]:
                heappush(heap, (total, next(counter), entry))


def locate_columnar(
    tree: Any, path: int
) -> tuple[Entry, int, dict[int, tuple[Entry, int]], int]:
    """Fused untraced exact-match descent over columnar index nodes.

    Returns ``(entry, owner_page, guard_map, max_guard_set)`` — the
    level-0 winner, the page of the node storing it, the surviving guard
    refs keyed by level (the shape :class:`~repro.core.guards.GuardSet`
    adopts) and the largest guard-set size seen.  Semantically this is
    :func:`repro.core.descent.step` applied ``height`` times: the same
    pages read in the same order, the same merge/consume/longer-key
    rules, the same invariant errors.  The win is structural — one loop
    over flat columns, no per-node dispatch, no guard-list building, and
    since the search path is full width the native bisect needs no
    alignment shift and no ``nbits`` filter.

    Callers guarantee ``tree.height > 0`` (a root-only tree has no index
    node to step through) and an untraced tree: the traced path must go
    through :func:`repro.core.descent.step`, the one ``guard_hit``
    emitter.
    """
    level = tree.height
    page = tree.root_page
    read = tree.store.read
    by_level: dict[int, tuple[Entry, int]] = {}
    max_guards = 0
    while level > 0:
        node = read(page)
        if node.index_level != level:
            raise TreeInvariantError(
                f"entry of level {level} points at node of index "
                f"level {node.index_level}"
            )
        g_aligned = node._c_g_aligned
        if g_aligned:
            g_end = node._c_g_end
            g_nbits = node._c_g_nbits
            g_entries = node._c_g_entries
            for i, aligned in enumerate(g_aligned):
                if aligned <= path < g_end[i]:
                    guard = g_entries[i]
                    lvl = guard.level
                    cur = by_level.get(lvl)
                    if cur is None or g_nbits[i] > cur[0].key.nbits:
                        by_level[lvl] = (guard, page)
                    elif (
                        g_nbits[i] == cur[0].key.nbits
                        and guard.key != cur[0].key
                    ):
                        raise TreeInvariantError(
                            f"two disjoint level-{lvl} guards match one "
                            f"path: {cur[0]!r} vs {guard!r}"
                        )
        aligned_col = node._c_nat_aligned
        native = None
        native_nbits = 0
        if aligned_col:
            j = bisect_right(aligned_col, path) - 1
            end_col = node._c_nat_end
            while j >= 0:
                if end_col[j] > path:
                    native = node._c_nat_entries[j]
                    native_nbits = node._c_nat_nbits[j]
                    break
                j -= 1
        carried = by_level.pop(level - 1, None) if by_level else None
        if carried is None:
            if native is None:
                raise TreeInvariantError(
                    f"no entry of level {level - 1} covers the search "
                    f"path at index level {level}"
                )
            chosen = native
            owner = page
        elif native is None:
            chosen, owner = carried
        else:
            guard_entry, guard_owner = carried
            guard_nbits = guard_entry.key.nbits
            if guard_nbits == native_nbits:
                raise TreeInvariantError(
                    f"native {native!r} and guard {guard_entry!r} have "
                    f"keys of equal length on one path: same-level keys "
                    f"must be unique"
                )
            if guard_nbits > native_nbits:
                chosen, owner = guard_entry, guard_owner
            else:
                chosen = native
                owner = page
        if len(by_level) > max_guards:
            max_guards = len(by_level)
        page = chosen.page
        level -= 1
    return chosen, owner, by_level, max_guards
