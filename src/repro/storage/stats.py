"""I/O counter bundles for the storage simulator."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class IOStats:
    """Mutable counters of page-level operations.

    ``reads``/``writes`` count every access through a :class:`PageStore`;
    when a :class:`~repro.storage.buffer.BufferPool` is interposed, its own
    hit/miss counters distinguish logical from physical reads.
    """

    reads: int = 0
    writes: int = 0
    allocations: int = 0
    frees: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.reads = 0
        self.writes = 0
        self.allocations = 0
        self.frees = 0

    def snapshot(self) -> "IOStats":
        """An independent copy of the current counter values."""
        return IOStats(self.reads, self.writes, self.allocations, self.frees)

    def delta(self, since: "IOStats") -> "IOStats":
        """Counters accumulated since an earlier :meth:`snapshot`."""
        return IOStats(
            self.reads - since.reads,
            self.writes - since.writes,
            self.allocations - since.allocations,
            self.frees - since.frees,
        )

    @property
    def total(self) -> int:
        """All page operations combined."""
        return self.reads + self.writes + self.allocations + self.frees


@dataclass
class BufferStats:
    """Hit/miss/eviction counters for a buffer pool."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    @property
    def logical_reads(self) -> int:
        """Reads served from cache plus reads that went to the store."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of logical reads served from the cache (0 if none)."""
        logical = self.logical_reads
        return self.hits / logical if logical else 0.0


@dataclass
class SizeClassStats:
    """Live-page accounting for one page size class."""

    page_bytes: int
    live_pages: int = 0
    peak_pages: int = 0
    total_allocated: int = 0

    @property
    def live_bytes(self) -> int:
        """Bytes currently occupied by live pages of this class."""
        return self.page_bytes * self.live_pages
