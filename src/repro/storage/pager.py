"""The page store: allocation, access and accounting of pages."""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import PageNotFoundError, StorageError
from repro.obs.events import PAGE_ALLOC, PAGE_FREE, PAGE_READ, PAGE_WRITE
from repro.obs.tracer import Tracer
from repro.storage.stats import IOStats, SizeClassStats


class PageStore:
    """A simulated page-based store with exact I/O accounting.

    Pages belong to *size classes* so that structures with level-scaled
    index pages (paper §7.3) can account for their true byte footprint.
    Size class ``k`` has ``page_bytes * (k + 1)`` bytes by default, matching
    the paper's "every page at index level x is of size B·x"; callers may
    instead register explicit byte sizes with :meth:`register_size_class`.

    Every counted access also emits a ``page_read``/``page_write`` trace
    event through ``self.tracer`` when tracing is enabled — one event per
    counted I/O, so a trace's page counts always equal :class:`IOStats`
    (a tree attaches its own tracer here; see
    :class:`~repro.core.tree.BVTree`).  The *mutating* accesses
    (``allocate``/``write``/``free``) are the choke point every tree
    structure change flows through, so they emit under the wider
    ``tracer.structural`` guard — a structural tap (e.g. the guarantee
    monitor) sees every mutation even when full tracing is off, while
    reads stay silent unless tracing is fully enabled.
    """

    #: The page layout a tree built on this store defaults to (see
    #: :class:`~repro.core.tree.BVTree`'s ``layout`` parameter and
    #: :class:`ColumnarStore`).  Purely advisory — the store itself holds
    #: live objects of either representation.
    layout = "object"

    def __init__(self, page_bytes: int = 4096):
        if page_bytes <= 0:
            raise StorageError(f"page size must be positive, got {page_bytes}")
        self.page_bytes = page_bytes
        self.stats = IOStats()
        #: Shared with the owning tree (and any buffer pool in front).
        self.tracer = Tracer()
        self._pages: dict[int, Any] = {}
        self._size_class: dict[int, int] = {}
        self._classes: dict[int, SizeClassStats] = {}
        self._next_id = 1

    # ------------------------------------------------------------------
    # Size classes
    # ------------------------------------------------------------------

    def register_size_class(self, size_class: int, page_bytes: int) -> None:
        """Declare the byte size of a size class explicitly."""
        if size_class < 0:
            raise StorageError(f"negative size class {size_class}")
        if page_bytes <= 0:
            raise StorageError(f"page size must be positive, got {page_bytes}")
        existing = self._classes.get(size_class)
        if existing is None:
            self._classes[size_class] = SizeClassStats(page_bytes=page_bytes)
        elif existing.live_pages and existing.page_bytes != page_bytes:
            raise StorageError(
                f"size class {size_class} already has live pages of "
                f"{existing.page_bytes} bytes"
            )
        else:
            existing.page_bytes = page_bytes

    def _class_stats(self, size_class: int) -> SizeClassStats:
        stats = self._classes.get(size_class)
        if stats is None:
            stats = SizeClassStats(page_bytes=self.page_bytes * (size_class + 1))
            self._classes[size_class] = stats
        return stats

    # ------------------------------------------------------------------
    # Page lifecycle
    # ------------------------------------------------------------------

    def allocate(self, content: Any = None, size_class: int = 0) -> int:
        """Allocate a new page, optionally with initial content."""
        if size_class < 0:
            raise StorageError(f"negative size class {size_class}")
        page_id = self._next_id
        self._next_id += 1
        self._pages[page_id] = content
        self._size_class[page_id] = size_class
        cls = self._class_stats(size_class)
        cls.live_pages += 1
        cls.total_allocated += 1
        cls.peak_pages = max(cls.peak_pages, cls.live_pages)
        self.stats.allocations += 1
        tracer = self.tracer
        if tracer.structural:
            tracer.emit(PAGE_ALLOC, page=page_id, size_class=size_class)
        return page_id

    def read(self, page_id: int) -> Any:
        """Read a page's content (counted as one page read)."""
        try:
            content = self._pages[page_id]
        except KeyError:
            raise PageNotFoundError(f"page {page_id} is not allocated") from None
        self.stats.reads += 1
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(PAGE_READ, page=page_id, physical=True)
        return content

    def peek(self, page_id: int) -> Any:
        """Read a page's content without counting a page read."""
        try:
            return self._pages[page_id]
        except KeyError:
            raise PageNotFoundError(f"page {page_id} is not allocated") from None

    def write(self, page_id: int, content: Any) -> None:
        """Overwrite a page's content (counted as one page write)."""
        if page_id not in self._pages:
            raise PageNotFoundError(f"page {page_id} is not allocated")
        self._pages[page_id] = content
        self.stats.writes += 1
        tracer = self.tracer
        if tracer.structural:
            tracer.emit(PAGE_WRITE, page=page_id)

    def free(self, page_id: int) -> None:
        """Release a page."""
        if page_id not in self._pages:
            raise PageNotFoundError(f"page {page_id} is not allocated")
        del self._pages[page_id]
        size_class = self._size_class.pop(page_id)
        self._classes[size_class].live_pages -= 1
        self.stats.frees += 1
        tracer = self.tracer
        if tracer.structural:
            tracer.emit(PAGE_FREE, page=page_id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    def size_class_of(self, page_id: int) -> int:
        """The size class a live page was allocated in."""
        try:
            return self._size_class[page_id]
        except KeyError:
            raise PageNotFoundError(f"page {page_id} is not allocated") from None

    def page_ids(self) -> Iterator[int]:
        """Iterate over the ids of all live pages."""
        return iter(tuple(self._pages))

    def live_pages(self, size_class: int | None = None) -> int:
        """Number of live pages, optionally restricted to one size class."""
        if size_class is None:
            return len(self._pages)
        stats = self._classes.get(size_class)
        return stats.live_pages if stats else 0

    def live_bytes(self) -> int:
        """Total bytes occupied by live pages across all size classes."""
        return sum(cls.live_bytes for cls in self._classes.values())

    def class_stats(self) -> dict[int, SizeClassStats]:
        """Per-size-class accounting (live view, do not mutate)."""
        return dict(self._classes)


class ColumnarStore(PageStore):
    """A page store whose trees default to the columnar page layout.

    Behaviourally identical to :class:`PageStore` — pages are live
    objects, I/O accounting is unchanged — but a
    :class:`~repro.core.tree.BVTree` built on it (without an explicit
    ``layout=``) packs its pages into the flat columns of
    :mod:`repro.core.columnar`.  Running the same workload against a
    ``PageStore``-backed tree gives the differential oracle the
    equivalence suite and the perf probe compare against.
    """

    layout = "columnar"
