"""The storage protocol: the surface index structures program against.

:class:`Storage` is the structural type shared by
:class:`~repro.storage.pager.PageStore` and
:class:`~repro.storage.buffer.BufferPool` (and any future backend —
sharded, async-fronted, on-disk).  The index algorithms in
:mod:`repro.core` depend only on this protocol, never on a concrete
backend, so a tree can be measured through a buffer pool or run over a
different engine without touching core code; lint rule R3 enforces the
direction of that dependency.

:func:`default_store` is the sanctioned way for the core layer to obtain
a backing store when the caller did not supply one.
"""

from __future__ import annotations

from typing import Any, Iterator, Protocol, runtime_checkable

from repro.obs.tracer import Tracer
from repro.storage.stats import SizeClassStats


@runtime_checkable
class Storage(Protocol):
    """Paged storage: allocation, access and accounting of pages."""

    #: The tracer counted accesses emit through (settable: a tree shares
    #: its own tracer with its store so page events join one stream).
    tracer: Tracer

    @property
    def page_bytes(self) -> int:
        """Base page size in bytes (size class 0)."""

    def allocate(self, content: Any = None, size_class: int = 0) -> int:
        """Allocate a new page, returning its id."""

    def read(self, page_id: int) -> Any:
        """Read a page's content (accounted)."""

    def peek(self, page_id: int) -> Any:
        """Read a page's content without touching any I/O counters.

        For maintenance traversals (teardown, diagnostics) that must not
        pollute the accounting the benchmarks read; never use it on a
        path whose cost is part of a measured claim.
        """

    def write(self, page_id: int, content: Any) -> None:
        """Overwrite a page's content (accounted)."""

    def free(self, page_id: int) -> None:
        """Release a page."""

    def register_size_class(self, size_class: int, page_bytes: int) -> None:
        """Declare the byte size of a size class."""

    def size_class_of(self, page_id: int) -> int:
        """The size class a live page was allocated in."""

    def page_ids(self) -> Iterator[int]:
        """Iterate the ids of all live pages."""

    def live_pages(self, size_class: int | None = None) -> int:
        """Number of live pages, optionally for one size class."""

    def live_bytes(self) -> int:
        """Total bytes occupied by live pages."""

    def class_stats(self) -> dict[int, SizeClassStats]:
        """Per-size-class accounting."""

    def __contains__(self, page_id: int) -> bool:
        """Whether a page id is currently allocated."""


def default_store(page_bytes: int = 4096) -> Storage:
    """The default backing store for a new index: a bare page store.

    Kept as a factory (rather than letting core construct ``PageStore``
    itself) so the default backend can change — e.g. to a buffer-pooled
    or sharded store — in exactly one place.
    """
    from repro.storage.pager import PageStore

    return PageStore(page_bytes)
