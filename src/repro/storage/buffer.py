"""An LRU buffer pool layered over a :class:`PageStore`."""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Iterator

from repro.errors import StorageError
from repro.obs.events import PAGE_READ
from repro.obs.tracer import Tracer
from repro.storage.pager import PageStore
from repro.storage.stats import BufferStats, SizeClassStats

#: Distinguishes "page not cached" from a cached ``None`` payload.
_ABSENT = object()


class BufferPool:
    """Read-through, write-through LRU cache of pages.

    The pool distinguishes *logical* reads (every :meth:`read` call) from
    *physical* reads (cache misses that hit the underlying store).  All
    writes go straight to the store so the store content is always
    authoritative; the cached copy is refreshed at the same time.

    The pool exposes the full :class:`PageStore` surface (allocation,
    freeing, size classes, accounting), so it can be passed anywhere a
    store is expected — e.g. ``BVTree(space, store=BufferPool(PageStore()))``
    to measure an index's cache behaviour.

    Tracing: the pool *shares* its store's tracer (the ``tracer``
    property delegates), and every logical read emits exactly one
    ``page_read`` event — a hit emits ``physical=False`` from the pool,
    a miss is covered by the single ``physical=True`` event the store's
    fault-in read emits.  Counting a trace's ``physical=True`` events
    therefore reproduces the store's ``IOStats.reads`` exactly, and the
    total ``page_read`` count reproduces ``BufferStats.logical_reads``
    (the integration tests assert both equalities).

    Thread safety: by default the pool is single-caller, like every
    store — the hit path is two dict operations plus two counter
    increments, and a mutex there would tax every buffered read of a
    single-threaded index.  Pass ``thread_safe=True`` when the pool is
    shared by concurrent readers (``cache.move_to_end`` racing an
    eviction corrupts the ``OrderedDict``; the stats counters lose
    increments): the cache and counter mutations then run under an
    internal lock.  Served trees do not need this — snapshot readers
    never touch the live store (see ``docs/SERVING.md``) — it exists for
    direct shared-tree readers, e.g. the reader-hammer regression test.
    """

    def __init__(
        self,
        store: PageStore,
        capacity: int = 64,
        *,
        thread_safe: bool = False,
    ):
        if capacity <= 0:
            raise StorageError(f"buffer capacity must be positive, got {capacity}")
        self.store = store
        self.capacity = capacity
        self.stats = BufferStats()
        self._cache: OrderedDict[int, Any] = OrderedDict()
        # None in the default single-caller mode: the hot read path
        # branches on it rather than entering a no-op context manager,
        # whose __enter__/__exit__ calls would more than double the cost
        # of a cache hit (measured; the hit path is ~190ns of dict work).
        self._lock: threading.Lock | None = (
            threading.Lock() if thread_safe else None
        )

    # ------------------------------------------------------------------
    # PageStore surface (decorator passthrough)
    # ------------------------------------------------------------------

    @property
    def tracer(self) -> Tracer:
        """The shared tracer (one stream for pool and store events)."""
        return self.store.tracer

    @tracer.setter
    def tracer(self, tracer: Tracer) -> None:
        self.store.tracer = tracer

    @property
    def page_bytes(self) -> int:
        """Base page size of the underlying store."""
        return self.store.page_bytes

    @property
    def layout(self) -> str:
        """The backing store's default page layout.

        Forwarded so ``BVTree(store=BufferPool(ColumnarStore()))`` picks
        the columnar layout exactly as the unwrapped store would.
        """
        return self.store.layout

    def allocate(self, content: Any = None, size_class: int = 0) -> int:
        """Allocate in the store; the fresh page starts out cached."""
        page_id = self.store.allocate(content, size_class=size_class)
        self._install_locked(page_id, content)
        return page_id

    def free(self, page_id: int) -> None:
        """Free in the store and drop any cached copy."""
        self.store.free(page_id)
        lock = self._lock
        if lock is None:
            self._cache.pop(page_id, None)
        else:
            with lock:
                self._cache.pop(page_id, None)

    def register_size_class(self, size_class: int, page_bytes: int) -> None:
        """Pass through to the store."""
        self.store.register_size_class(size_class, page_bytes)

    def size_class_of(self, page_id: int) -> int:
        """Pass through to the store."""
        return self.store.size_class_of(page_id)

    def page_ids(self) -> Iterator[int]:
        """Pass through to the store."""
        return self.store.page_ids()

    def live_pages(self, size_class: int | None = None) -> int:
        """Pass through to the store."""
        return self.store.live_pages(size_class)

    def live_bytes(self) -> int:
        """Pass through to the store."""
        return self.store.live_bytes()

    def class_stats(self) -> dict[int, SizeClassStats]:
        """Pass through to the store."""
        return self.store.class_stats()

    def __contains__(self, page_id: int) -> bool:
        return page_id in self.store

    def read(self, page_id: int) -> Any:
        """Read a page, from cache if resident.

        The hit path is deliberately lean — one dict probe plus the LRU
        touch — because every page access of a buffered index funnels
        through here.
        """
        lock = self._lock
        if lock is not None:
            with lock:
                return self._read_inner(page_id)
        return self._read_inner(page_id)

    def _read_inner(self, page_id: int) -> Any:
        cache = self._cache
        content = cache.get(page_id, _ABSENT)
        if content is not _ABSENT:
            cache.move_to_end(page_id)
            self.stats.hits += 1
            tracer = self.store.tracer
            if tracer.enabled:
                tracer.emit(PAGE_READ, page=page_id, physical=False)
            return content
        # The fault-in read below emits the miss's single page_read event
        # (physical=True) from the store — the pool must not emit its own
        # logical event here, or one miss would be traced twice and the
        # trace-derived counts would drift from IOStats.reads.
        content = self.store.read(page_id)
        self.stats.misses += 1
        self._install(page_id, content)
        return content

    def peek(self, page_id: int) -> Any:
        """Read a page without touching hit/miss counters or LRU order.

        Serves from the cache when resident (no recency update), and
        otherwise peeks the underlying store without installing the page.
        Lock-free even in thread-safe mode: the single dict probe is
        atomic under the GIL, and peek mutates nothing.
        """
        content = self._cache.get(page_id, _ABSENT)
        if content is not _ABSENT:
            return content
        return self.store.peek(page_id)

    def write(self, page_id: int, content: Any) -> None:
        """Write a page through to the store and refresh the cache."""
        self.store.write(page_id, content)
        self._install_locked(page_id, content)

    def invalidate(self, page_id: int) -> None:
        """Drop a page from the cache (e.g. after it is freed).

        Only an invalidation that actually dropped a cached copy is
        counted; a no-op call for a page that was never resident leaves
        the counters untouched.
        """
        lock = self._lock
        if lock is None:
            dropped = self._cache.pop(page_id, _ABSENT) is not _ABSENT
        else:
            with lock:
                dropped = self._cache.pop(page_id, _ABSENT) is not _ABSENT
        if dropped:
            self.stats.invalidations += 1

    def clear(self) -> None:
        """Empty the cache without touching the store."""
        lock = self._lock
        if lock is None:
            self._cache.clear()
        else:
            with lock:
                self._cache.clear()

    def resident(self, page_id: int) -> bool:
        """True if the page is currently cached."""
        return page_id in self._cache

    def __len__(self) -> int:
        return len(self._cache)

    def _install(self, page_id: int, content: Any) -> None:
        self._cache[page_id] = content
        self._cache.move_to_end(page_id)
        while len(self._cache) > self.capacity:
            self._cache.popitem(last=False)
            self.stats.evictions += 1

    def _install_locked(self, page_id: int, content: Any) -> None:
        lock = self._lock
        if lock is None:
            self._install(page_id, content)
        else:
            with lock:
                self._install(page_id, content)
