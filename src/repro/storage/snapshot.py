"""Snapshot persistence: save and load a BV-tree as JSON.

The paged representation serialises naturally: every page is either a
data page (records keyed by bit path) or an index node (level-labelled
entries).  Record values must be JSON-serialisable; everything else —
keys, paths, the registry — is rebuilt exactly.  The snapshot is a
faithful structural copy: heights, page populations, guard placement and
therefore all cost guarantees survive a round trip.

This is deliberately a *logical* format (human-inspectable, versioned),
not a byte-exact page image: the storage engine here is a simulator and
the interesting state is structural.
"""

from __future__ import annotations

import json
from typing import IO, Any

from repro.errors import ReproError
from repro.core.entry import Entry
from repro.core.node import DataPage, IndexNode
from repro.core.tree import BVTree
from repro.geometry.region import RegionKey
from repro.geometry.space import DataSpace
from repro.storage.pager import ColumnarStore, PageStore

FORMAT_VERSION = 1


def _entry_to_json(entry: Entry) -> dict[str, Any]:
    return {
        "key": entry.key.bit_string(),
        "level": entry.level,
        "page": entry.page,
    }


def _page_to_json(page_id: int, content: Any) -> dict[str, Any]:
    if isinstance(content, DataPage):
        return {
            "id": page_id,
            "kind": "data",
            "records": [
                {"point": list(point), "value": value}
                for point, value in content.records.values()
            ],
        }
    if isinstance(content, IndexNode):
        return {
            "id": page_id,
            "kind": "index",
            "index_level": content.index_level,
            "entries": [_entry_to_json(e) for e in content.entries],
        }
    raise ReproError(f"page {page_id} holds unserialisable {type(content).__name__}")


def dump_tree(tree: BVTree, fp: IO[str]) -> None:
    """Write a JSON snapshot of ``tree`` to a text file object."""
    pages = []
    stack = [tree.root_entry()]
    while stack:
        entry = stack.pop()
        content = tree.store.read(entry.page)
        pages.append(_page_to_json(entry.page, content))
        if isinstance(content, IndexNode):
            stack.extend(content.entries)
    snapshot = {
        "format": FORMAT_VERSION,
        "space": {
            "bounds": [list(b) for b in tree.space.bounds],
            "resolution": tree.space.resolution,
        },
        "policy": {
            "data_capacity": tree.policy.data_capacity,
            "fanout": tree.policy.fanout,
            "kind": tree.policy.kind,
            "page_bytes": tree.policy.page_bytes,
        },
        "layout": tree.layout,
        "height": tree.height,
        "root_page": tree.root_page,
        "count": tree.count,
        "pages": pages,
    }
    json.dump(snapshot, fp)


def dumps_tree(tree: BVTree) -> str:
    """The JSON snapshot of ``tree`` as a string."""
    import io

    buffer = io.StringIO()
    dump_tree(tree, buffer)
    return buffer.getvalue()


def load_tree(fp: IO[str]) -> BVTree:
    """Rebuild a BV-tree from a snapshot produced by :func:`dump_tree`."""
    snapshot = json.load(fp)
    return _from_snapshot(snapshot)


def loads_tree(text: str) -> BVTree:
    """Rebuild a BV-tree from a snapshot string."""
    return _from_snapshot(json.loads(text))


def _from_snapshot(snapshot: dict[str, Any]) -> BVTree:
    if snapshot.get("format") != FORMAT_VERSION:
        raise ReproError(
            f"unsupported snapshot format {snapshot.get('format')!r}; "
            f"this library reads version {FORMAT_VERSION}"
        )
    space = DataSpace(
        [tuple(b) for b in snapshot["space"]["bounds"]],
        resolution=snapshot["space"]["resolution"],
    )
    policy = snapshot["policy"]
    # Older snapshots predate the layout field; they are object-layout.
    layout = snapshot.get("layout", "object")
    store_cls = ColumnarStore if layout == "columnar" else PageStore
    tree = BVTree(
        space,
        data_capacity=policy["data_capacity"],
        fanout=policy["fanout"],
        policy=policy["kind"],
        page_bytes=policy["page_bytes"],
        store=store_cls(policy["page_bytes"]),
    )
    tree.store.free(tree.root_page)  # replace the fresh root

    # First pass: materialise pages under fresh ids.
    id_map: dict[int, int] = {}
    index_nodes: list[tuple[dict[str, Any], IndexNode]] = []
    for page in snapshot["pages"]:
        if page["kind"] == "data":
            content = tree.make_data_page()
            for record in page["records"]:
                point = tuple(record["point"])
                content.insert(
                    space.point_path(point), point, record["value"], replace=True
                )
            id_map[page["id"]] = tree.alloc_data_page(content)
        elif page["kind"] == "index":
            node = tree.make_index_node(page["index_level"])
            index_nodes.append((page, node))
            id_map[page["id"]] = tree.alloc_index_node(node)
        else:
            raise ReproError(f"unknown page kind {page['kind']!r}")

    # Second pass: wire entries through the id map and rebuild the registry.
    root_page = snapshot["root_page"]
    if root_page not in id_map:
        raise ReproError("snapshot root page missing from page list")
    for page, node in index_nodes:
        for raw in page["entries"]:
            child = raw["page"]
            if child not in id_map:
                raise ReproError(f"entry references missing page {child}")
            entry = Entry(
                RegionKey.from_bits(raw["key"]), raw["level"], id_map[child]
            )
            node.add(entry)
            tree.register_entry(entry)

    tree.root_page = id_map[root_page]
    tree.height = snapshot["height"]
    tree.count = snapshot["count"]
    tree.check(check_occupancy=False, check_justification=False)
    return tree
