"""Fault injection for the durable storage backend.

A :class:`FaultPlan` is a first-class description of *where a process
dies* and *what the operating system did to the tail of the files* when
it died.  The :mod:`repro.storage.durable` backend consults the plan at
every hazardous step — WAL appends, fsyncs, checkpoint writes — so the
crash-matrix suite, the ``repro recover`` CLI and the durability perf
probe all exercise recovery through exactly the hooks production code
runs, not through test-only monkeypatching.

Crash points
------------
``crash_after_appends=N``
    the process dies immediately after the N-th WAL record append (commit
    markers are appends too, so a crash can land on the marker itself);
``crash_in_checkpoint="mid_write"``
    the process dies halfway through writing the checkpoint's temporary
    page file (the live page file is untouched — atomic replace);
``crash_in_checkpoint="before_truncate"``
    the process dies after the new page file is atomically installed but
    before the WAL is reset (recovery must skip the already-checkpointed
    WAL prefix by sequence number).

Tail policies — what the OS page cache did at the crash
-------------------------------------------------------
``tail="keep"``
    every written byte survives (the OS happened to flush everything);
``tail="drop_unsynced"``
    bytes after the last *completed* fsync are lost (the honest model of
    a power cut; combine with ``drop_fsync=True`` to model an fsync that
    lies);
``tail="torn"``
    like ``keep``, but the final WAL record is cut mid-record at
    ``torn_fraction`` of its bytes — the torn-write case recovery's
    CRC scan must detect and discard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ReproError

__all__ = ["FaultPlan", "TAIL_DROP_UNSYNCED", "TAIL_KEEP", "TAIL_TORN"]

TAIL_KEEP = "keep"
TAIL_DROP_UNSYNCED = "drop_unsynced"
TAIL_TORN = "torn"

_TAILS = (TAIL_KEEP, TAIL_DROP_UNSYNCED, TAIL_TORN)
_CHECKPOINT_STAGES = ("mid_write", "before_truncate")


@dataclass
class FaultPlan:
    """An injectable crash scenario for a durable store.

    A plan fires *at most one* crash (``fired`` latches); a store whose
    plan fired is dead and must be reopened through recovery.  A default
    plan never crashes and never drops an fsync, so passing one is
    always safe.
    """

    #: Crash after this many WAL record appends (None = never).
    crash_after_appends: int | None = None
    #: Crash inside a checkpoint at the named stage (None = never).
    crash_in_checkpoint: str | None = None
    #: What survives of the WAL tail when the crash fires.
    tail: str = TAIL_KEEP
    #: Cut point of the final record under ``tail="torn"`` (0 < f < 1).
    torn_fraction: float = 0.5
    #: When True, fsync calls are silently dropped (never reach disk).
    drop_fsync: bool = False

    #: WAL appends observed so far (runtime state, not configuration).
    appends_seen: int = field(default=0, compare=False)
    #: Latches once a crash point has fired.
    fired: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.tail not in _TAILS:
            raise ReproError(
                f"unknown tail policy {self.tail!r}; one of {_TAILS}"
            )
        if (
            self.crash_in_checkpoint is not None
            and self.crash_in_checkpoint not in _CHECKPOINT_STAGES
        ):
            raise ReproError(
                f"unknown checkpoint stage {self.crash_in_checkpoint!r}; "
                f"one of {_CHECKPOINT_STAGES}"
            )
        if not 0.0 < self.torn_fraction < 1.0:
            raise ReproError(
                f"torn_fraction must be in (0, 1), got {self.torn_fraction}"
            )
        if self.crash_after_appends is not None and self.crash_after_appends < 1:
            raise ReproError(
                f"crash_after_appends must be >= 1, "
                f"got {self.crash_after_appends}"
            )

    # ------------------------------------------------------------------
    # Hooks consulted by the durable backend
    # ------------------------------------------------------------------

    def note_append(self) -> bool:
        """Record one WAL append; True when the crash point fires now."""
        self.appends_seen += 1
        if (
            not self.fired
            and self.crash_after_appends is not None
            and self.appends_seen >= self.crash_after_appends
        ):
            self.fired = True
            return True
        return False

    def note_fsync(self) -> bool:
        """Whether an fsync should actually reach disk."""
        return not self.drop_fsync

    def note_checkpoint(self, stage: str) -> bool:
        """Record reaching a checkpoint stage; True when the crash fires."""
        if not self.fired and self.crash_in_checkpoint == stage:
            self.fired = True
            return True
        return False

    # ------------------------------------------------------------------
    # CLI surface
    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a compact CLI spec.

        Comma-separated tokens: ``after-appends=N``,
        ``checkpoint=mid-write|before-truncate``,
        ``tail=keep|drop|torn``, ``torn-fraction=F``, ``drop-fsync``.

        >>> FaultPlan.parse("after-appends=40,tail=torn").crash_after_appends
        40
        """
        kwargs: dict[str, Any] = {}
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            key, _, value = token.partition("=")
            if key == "after-appends":
                kwargs["crash_after_appends"] = int(value)
            elif key == "checkpoint":
                kwargs["crash_in_checkpoint"] = value.replace("-", "_")
            elif key == "tail":
                kwargs["tail"] = {
                    "keep": TAIL_KEEP,
                    "drop": TAIL_DROP_UNSYNCED,
                    "drop_unsynced": TAIL_DROP_UNSYNCED,
                    "torn": TAIL_TORN,
                }.get(value, value)
            elif key == "torn-fraction":
                kwargs["torn_fraction"] = float(value)
            elif key == "drop-fsync":
                kwargs["drop_fsync"] = True
            else:
                raise ReproError(f"unknown fault token {token!r}")
        return cls(**kwargs)

    def describe(self) -> str:
        """A one-line human summary of the configured crash points."""
        parts = []
        if self.crash_after_appends is not None:
            parts.append(f"crash after {self.crash_after_appends} WAL appends")
        if self.crash_in_checkpoint is not None:
            parts.append(f"crash in checkpoint ({self.crash_in_checkpoint})")
        if not parts:
            parts.append("no crash point")
        parts.append(f"tail={self.tail}")
        if self.tail == TAIL_TORN:
            parts.append(f"torn_fraction={self.torn_fraction}")
        if self.drop_fsync:
            parts.append("fsync dropped")
        return ", ".join(parts)
