"""Crash recovery: ARIES-lite redo-only replay of the WAL.

Algorithm (:func:`recover_store`):

1. **Load the checkpoint.**  Parse ``pages.dat`` strictly (it was
   fsynced before it was installed, so damage is real corruption); a
   missing file means the store never checkpointed and the WAL is the
   whole story.  The header yields the page table, size classes,
   metadata, allocation cursor — and the *WAL floor*, the sequence
   number of the last record the checkpoint absorbed.
2. **Scan the WAL.**  Accept every record that frames and checksums,
   stop at the first that does not: a torn tail is the expected
   signature of a crash and is discarded silently
   (:func:`~repro.storage.durable.wal.scan_wal`).
3. **Pick the committed transactions.**  Every record carries its
   transaction id (``x``); a transaction counts only if its
   ``commit`` marker survived in the valid prefix.  Records of
   uncommitted transactions — typically the operation that was in
   flight when the process died — are discarded, so no partial
   operation is ever visible.
4. **Redo.**  Replay committed records with sequence number above the
   floor, in log order, over the checkpoint image: page allocs, writes,
   frees, size-class registrations, metadata.  Redo is idempotent at
   the store level because each record carries the full page content
   (physical redo), not a delta.
5. **Re-checkpoint.**  Write the recovered image as a fresh checkpoint,
   then open a fresh WAL whose sequence counter continues past
   everything ever logged.  Recovering an already-recovered directory
   is therefore a no-op on the state — recovery is idempotent, and the
   property suite proves it.

:func:`rebuild_tree` then reconstructs a live
:class:`~repro.core.tree.BVTree` over the recovered store: the root is
the unique live page no index entry references, the registry is rebuilt
by walking the entries, and the result must pass the structural checker
(with the same occupancy/justification relaxations a snapshot load uses
— those invariants depend on *operation history*, which a recovered
process no longer has).

Recovery narrates itself through an optional tracer —
``recovery_begin``, one ``wal_replay`` per redone record,
``recovery_end`` — so the observability layer (and ``repro recover
--trace``) can audit what replay did.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

from repro.core.node import DataPage, IndexNode
from repro.core.tree import BVTree
from repro.errors import RecoveryError
from repro.geometry.space import DataSpace
from repro.obs.events import RECOVERY_BEGIN, RECOVERY_END, WAL_REPLAY
from repro.obs.tracer import Tracer
from repro.storage.durable.pagefile import StoreState, load_state
from repro.storage.durable.store import (
    PAGEFILE_NAME,
    TMP_PAGEFILE_NAME,
    WAL_NAME,
    DurableStore,
)
from repro.storage.durable.wal import (
    REC_ALLOC,
    REC_CLASS,
    REC_COMMIT,
    REC_COMMIT_FLAG,
    REC_FREE,
    REC_META,
    REC_WRITE,
    RECORD_NAMES,
    base_type,
    scan_wal,
)
from repro.storage.durable import codec
from repro.storage.faults import FaultPlan

__all__ = [
    "RecoveryReport",
    "create_durable_tree",
    "open_durable_tree",
    "rebuild_tree",
    "recover_store",
]

#: Meta key under which :func:`create_durable_tree` persists the tree's
#: geometry and policy so :func:`rebuild_tree` can reconstruct it.
TREE_META_KEY = "tree"


@dataclass
class RecoveryReport:
    """What one recovery pass found and did."""

    directory: str
    #: WAL records that parsed (committed or not, stale or not).
    records_scanned: int = 0
    #: Records redone onto the checkpoint image.
    records_replayed: int = 0
    #: Parsed records discarded as uncommitted.
    records_uncommitted: int = 0
    #: Parsed records skipped as already absorbed by the checkpoint.
    records_stale: int = 0
    #: Torn/garbage bytes cut off the WAL tail (0 for a clean log).
    torn_bytes: int = 0
    #: Committed transactions replayed.
    committed_txns: int = 0
    #: Operation names of replayed commits, in commit order — the
    #: committed-op log the differential oracle replays.
    op_commits: list[str] = field(default_factory=list)
    #: The checkpoint's WAL floor (0 when there was no checkpoint).
    checkpoint_seq: int = 0
    #: Highest WAL sequence number seen (the new WAL continues above it).
    last_seq: int = 0
    #: Live pages in the recovered image.
    pages: int = 0
    #: Whether a checkpoint image existed.
    had_checkpoint: bool = False

    @property
    def torn_tail(self) -> bool:
        """True when a torn/garbage WAL tail was discarded."""
        return self.torn_bytes > 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (the CLI's ``--json`` output)."""
        return {
            "directory": self.directory,
            "records_scanned": self.records_scanned,
            "records_replayed": self.records_replayed,
            "records_uncommitted": self.records_uncommitted,
            "records_stale": self.records_stale,
            "torn_bytes": self.torn_bytes,
            "torn_tail": self.torn_tail,
            "committed_txns": self.committed_txns,
            "op_commits": list(self.op_commits),
            "checkpoint_seq": self.checkpoint_seq,
            "last_seq": self.last_seq,
            "pages": self.pages,
            "had_checkpoint": self.had_checkpoint,
        }

    def summary(self) -> str:
        """A compact human-readable account of the pass."""
        checkpoint = (
            f"checkpoint@{self.checkpoint_seq}"
            if self.had_checkpoint
            else "no checkpoint"
        )
        tail = f", {self.torn_bytes}B torn tail" if self.torn_tail else ""
        return (
            f"{checkpoint}; scanned {self.records_scanned} WAL records"
            f"{tail}; replayed {self.records_replayed} across "
            f"{self.committed_txns} committed txns "
            f"(discarded {self.records_uncommitted} uncommitted, "
            f"{self.records_stale} stale); {self.pages} live pages"
        )


def recover_store(
    directory: str | os.PathLike[str],
    *,
    faults: FaultPlan | None = None,
    sync: str = "commit",
    tracer: Tracer | None = None,
    default_page_bytes: int = 4096,
) -> tuple[DurableStore, RecoveryReport]:
    """Rebuild a :class:`DurableStore` from a crashed (or closed) directory.

    Returns the opened store and a :class:`RecoveryReport`.  The
    ``faults``/``sync`` options configure the *new* store, so a recovery
    can itself be crash-tested.  ``default_page_bytes`` only matters for
    the degenerate directory that has neither a checkpoint nor a single
    durable metadata record.
    """
    directory = os.fspath(directory)
    wal_path = os.path.join(directory, WAL_NAME)
    pagefile_path = os.path.join(directory, PAGEFILE_NAME)
    report = RecoveryReport(directory=directory)
    if tracer is not None:
        tracer.emit(RECOVERY_BEGIN, directory=directory)

    state = load_state(pagefile_path)
    report.had_checkpoint = state is not None
    if state is None:
        state = StoreState(page_bytes=default_page_bytes)
    report.checkpoint_seq = state.wal_seq

    scan = scan_wal(wal_path)
    report.records_scanned = len(scan.records)
    report.torn_bytes = scan.discarded_bytes
    report.last_seq = max(scan.last_seq, state.wal_seq)

    live = scan.records
    committed = {
        payload["x"]
        for seq, rtype, payload in live
        if seq > state.wal_seq
        and (rtype & REC_COMMIT_FLAG or rtype == REC_COMMIT)
    }
    report.committed_txns = len(committed)

    pages = dict(state.pages)
    classes = dict(state.classes)
    meta = dict(state.meta)
    next_id = state.next_id
    for seq, raw_type, payload in live:
        if seq <= state.wal_seq:
            report.records_stale += 1
            continue
        if payload.get("x") not in committed:
            report.records_uncommitted += 1
            continue
        rtype = base_type(raw_type)
        if raw_type & REC_COMMIT_FLAG or rtype == REC_COMMIT:
            report.op_commits.append(str(payload.get("op", "auto")))
            if rtype == REC_COMMIT:
                # A standalone marker carries no mutation to replay.
                continue
        if tracer is not None and tracer.structural:
            tracer.emit(
                WAL_REPLAY,
                seq=seq,
                record=RECORD_NAMES.get(rtype, str(rtype)),
            )
        if rtype == REC_ALLOC:
            page_id = payload["id"]
            if page_id in pages:
                raise RecoveryError(
                    f"WAL record {seq} allocates page {page_id}, "
                    f"which is already live"
                )
            pages[page_id] = (payload["sc"], codec.decode_content(payload["c"]))
            next_id = max(next_id, page_id + 1)
        elif rtype == REC_WRITE:
            page_id = payload["id"]
            if page_id not in pages:
                raise RecoveryError(
                    f"WAL record {seq} writes page {page_id}, "
                    f"which is not live"
                )
            size_class, content = pages[page_id]
            if "dk" in payload:
                # Data-page delta: apply on top of the image built so
                # far (checkpoint slot or earlier replayed records).
                content = codec.apply_data_delta(content, payload)
            else:
                content = codec.decode_content(payload["c"])
            pages[page_id] = (size_class, content)
        elif rtype == REC_FREE:
            page_id = payload["id"]
            if page_id not in pages:
                raise RecoveryError(
                    f"WAL record {seq} frees page {page_id}, "
                    f"which is not live"
                )
            del pages[page_id]
        elif rtype == REC_CLASS:
            classes[payload["sc"]] = payload["b"]
        elif rtype == REC_META:
            meta[payload["key"]] = payload["v"]
        else:
            raise RecoveryError(
                f"WAL record {seq} has unexpected type {rtype}"
            )
        report.records_replayed += 1

    page_bytes = classes.get(0, meta.get("__page_bytes__", state.page_bytes))
    recovered = StoreState(
        page_bytes=page_bytes,
        next_id=next_id,
        wal_seq=report.last_seq,
        meta=meta,
        classes=classes,
        pages=pages,
    )
    report.pages = len(pages)
    store = DurableStore._from_state(
        directory,
        recovered,
        faults=faults,
        sync=sync,
        start_seq=report.last_seq,
    )
    tmp_path = os.path.join(directory, TMP_PAGEFILE_NAME)
    if os.path.exists(tmp_path):
        os.remove(tmp_path)  # a checkpoint torn mid-write; never installed
    if tracer is not None:
        tracer.emit(
            RECOVERY_END,
            directory=directory,
            pages=report.pages,
            replayed=report.records_replayed,
            committed_txns=report.committed_txns,
            torn_tail=report.torn_tail,
        )
    return store, report


# ----------------------------------------------------------------------
# Tree-level convenience layer
# ----------------------------------------------------------------------


def create_durable_tree(
    directory: str | os.PathLike[str],
    space: DataSpace,
    *,
    data_capacity: int = 16,
    fanout: int = 16,
    policy: str = "scaled",
    page_bytes: int = 1024,
    layout: str = "object",
    faults: FaultPlan | None = None,
    sync: str = "commit",
) -> BVTree:
    """A fresh BV-tree over a fresh durable store in ``directory``.

    The tree's geometry, policy and page layout are persisted as durable
    metadata so :func:`open_durable_tree` can rebuild the same tree after
    a crash.
    """
    store = DurableStore(directory, page_bytes, faults=faults, sync=sync)
    store.set_meta("__page_bytes__", page_bytes)
    store.set_meta(
        TREE_META_KEY,
        {
            "space": {
                "bounds": [list(b) for b in space.bounds],
                "resolution": space.resolution,
            },
            "policy": {
                "data_capacity": data_capacity,
                "fanout": fanout,
                "kind": policy,
                "page_bytes": page_bytes,
            },
            "layout": layout,
        },
    )
    return BVTree(
        space,
        data_capacity=data_capacity,
        fanout=fanout,
        policy=policy,
        page_bytes=page_bytes,
        store=store,
        layout=layout,
    )


def rebuild_tree(store: DurableStore) -> BVTree:
    """Reconstruct a live :class:`BVTree` over a recovered store.

    The store must carry the metadata :func:`create_durable_tree` wrote.
    The rebuilt tree passes the structural checker with the occupancy
    and justification checks relaxed, exactly as a snapshot load does:
    both invariants are statements about operation *history* (deferred
    merges, escape hatches) that a recovered process no longer has.
    """
    tree_meta = store.meta.get(TREE_META_KEY)
    if tree_meta is None:
        raise RecoveryError(
            f"store in {store.directory} carries no tree metadata "
            f"({TREE_META_KEY!r}); was it created with create_durable_tree?"
        )
    space = DataSpace(
        [tuple(b) for b in tree_meta["space"]["bounds"]],
        resolution=tree_meta["space"]["resolution"],
    )
    policy = tree_meta["policy"]
    existing = set(store.page_ids())
    tree = BVTree(
        space,
        data_capacity=policy["data_capacity"],
        fanout=policy["fanout"],
        policy=policy["kind"],
        page_bytes=policy["page_bytes"],
        store=store,
        # Metadata written before the layout field existed is object-layout.
        layout=tree_meta.get("layout", "object"),
    )
    if not existing:
        return tree  # the store was empty; keep the fresh root
    store.free(tree.root_page)

    referenced: set[int] = set()
    for page_id in existing:
        content = store.peek(page_id)
        if isinstance(content, IndexNode):
            referenced.update(entry.page for entry in content.entries)
    roots = existing - referenced
    if len(roots) != 1:
        raise RecoveryError(
            f"recovered image has {len(roots)} root candidates "
            f"({sorted(roots)}); a consistent tree has exactly one"
        )
    root_page = roots.pop()

    count = 0
    visited: set[int] = set()
    stack = [root_page]
    while stack:
        page_id = stack.pop()
        if page_id in visited:
            raise RecoveryError(
                f"recovered image reaches page {page_id} twice"
            )
        visited.add(page_id)
        content = store.peek(page_id)
        if isinstance(content, IndexNode):
            for entry in content.entries:
                tree.register_entry(entry)
                stack.append(entry.page)
        elif isinstance(content, DataPage):
            count += len(content)
        else:
            raise RecoveryError(
                f"recovered page {page_id} holds "
                f"{type(content).__name__}, not a tree node"
            )
    if visited != existing:
        raise RecoveryError(
            f"recovered image has {len(existing - visited)} orphan pages "
            f"unreachable from root {root_page}"
        )

    root_content = store.peek(root_page)
    tree.root_page = root_page
    tree.height = (
        root_content.index_level
        if isinstance(root_content, IndexNode)
        else 0
    )
    tree.count = count
    tree.check(check_occupancy=False, check_justification=False)
    return tree


def open_durable_tree(
    directory: str | os.PathLike[str],
    *,
    faults: FaultPlan | None = None,
    sync: str = "commit",
    tracer: Tracer | None = None,
) -> tuple[BVTree, RecoveryReport]:
    """Recover ``directory`` and rebuild its tree in one call."""
    store, report = recover_store(
        directory, faults=faults, sync=sync, tracer=tracer
    )
    tree = rebuild_tree(store)
    return tree, report
