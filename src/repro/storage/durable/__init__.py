"""Crash-safe durable storage: WAL-backed page store and recovery.

The in-memory :class:`~repro.storage.pager.PageStore` makes the paper's
page-count guarantees observable; this subpackage makes them *durable*.
A :class:`DurableStore` is a drop-in :class:`~repro.storage.Storage`
backend (it subclasses the page store, so accounting and trace emission
are identical) that shadows every mutation into a write-ahead log and
periodically compacts the log into a checksummed page-file checkpoint.
After a crash — real or injected through a
:class:`~repro.storage.faults.FaultPlan` — :func:`recover_store`
replays the committed WAL suffix over the checkpoint and reopens the
store; :func:`open_durable_tree` additionally rebuilds the live
:class:`~repro.core.tree.BVTree` and re-verifies its invariants.

Module map:

- :mod:`~repro.storage.durable.codec` — JSON content codec for pages;
- :mod:`~repro.storage.durable.wal` — record framing, the append-side
  log, the tolerant scanner;
- :mod:`~repro.storage.durable.pagefile` — the checkpoint image format
  and its strict loader;
- :mod:`~repro.storage.durable.store` — :class:`DurableStore` and the
  tracer-tap transaction plumbing;
- :mod:`~repro.storage.durable.recovery` — redo replay, tree rebuild,
  the :class:`RecoveryReport`.

See ``docs/DURABILITY.md`` for the formats, the recovery algorithm and
a fault-plan cookbook.
"""

from repro.storage.durable.store import DurableStore
from repro.storage.durable.recovery import (
    RecoveryReport,
    create_durable_tree,
    open_durable_tree,
    rebuild_tree,
    recover_store,
)

__all__ = [
    "DurableStore",
    "RecoveryReport",
    "create_durable_tree",
    "open_durable_tree",
    "rebuild_tree",
    "recover_store",
]
