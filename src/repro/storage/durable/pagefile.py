"""The checkpointed page file: the store's base image between WAL replays.

A page file is the durable snapshot a checkpoint writes: one
:data:`~repro.storage.durable.wal.REC_HEADER` record (store-wide state)
followed by one :data:`~repro.storage.durable.wal.REC_PAGE` record per
live page, all using the WAL's framing (length, sequence field — here
carrying the page id — type byte, JSON payload, CRC32).  The file opens
with its own magic (``BVPAGE01``) so a WAL and a page file can never be
mistaken for each other.

The header carries the *WAL floor*: the sequence number of the last WAL
record the checkpoint absorbed.  Recovery replays only records above the
floor, which makes the crash window between "new page file installed"
and "WAL truncated" safe — stale records are skipped by comparison, not
by hoping the truncate happened.

Checkpoints are written to a temporary file and installed with
``os.replace`` (atomic on POSIX), then the directory is fsynced, so the
live page file is either the complete old image or the complete new one
— never a torn hybrid.  A crash mid-write (fault stage ``mid_write``)
only ever tears the temporary file, which recovery ignores and removes.

Unlike the WAL, a page file is never legitimately torn: it is fsynced
before it is installed.  :func:`load_state` therefore treats *any*
framing or checksum failure as :class:`~repro.errors.WalCorruptionError`
rather than a discardable tail.

This module is the second of the two sanctioned raw-file writers in the
storage layer (lint rule R12).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SimulatedCrashError, WalCorruptionError
from repro.storage.durable import codec
from repro.storage.durable.wal import (
    REC_HEADER,
    REC_PAGE,
    iter_frames,
    pack_record,
)
from repro.storage.faults import FaultPlan

__all__ = ["PAGEFILE_MAGIC", "StoreState", "dump_state", "fsync_dir", "load_state"]

PAGEFILE_MAGIC = b"BVPAGE01"

FORMAT_VERSION = 1


@dataclass
class StoreState:
    """Everything a durable store must carry across a restart."""

    page_bytes: int
    #: Allocation cursor: the next page id to hand out.
    next_id: int = 1
    #: WAL floor — last WAL sequence number absorbed into this image.
    wal_seq: int = 0
    #: Application metadata (e.g. the owning tree's geometry and policy).
    meta: dict[str, Any] = field(default_factory=dict)
    #: Size class -> page bytes, for explicitly registered classes.
    classes: dict[int, int] = field(default_factory=dict)
    #: Page id -> (size class, live content object).
    pages: dict[int, tuple[int, Any]] = field(default_factory=dict)


def fsync_dir(directory: str | os.PathLike[str]) -> None:
    """fsync a directory so a rename inside it is durable."""
    fd = os.open(os.fspath(directory), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def dump_state(
    path: str | os.PathLike[str],
    state: StoreState,
    faults: FaultPlan | None = None,
) -> None:
    """Write a complete page file (not atomic — write to a temp path).

    The ``mid_write`` fault stage fires after half the page records are
    on disk, leaving a torn temporary file behind, exactly what a crash
    during a checkpoint produces.
    """
    header = {
        "v": FORMAT_VERSION,
        "page_bytes": state.page_bytes,
        "next_id": state.next_id,
        "wal_seq": state.wal_seq,
        "meta": state.meta,
        "classes": {str(sc): size for sc, size in state.classes.items()},
    }
    page_items = sorted(state.pages.items())
    crash_at = len(page_items) // 2
    with open(path, "wb") as fp:
        fp.write(PAGEFILE_MAGIC)
        fp.write(pack_record(0, REC_HEADER, header))
        for index, (page_id, (size_class, content)) in enumerate(page_items):
            if (
                faults is not None
                and index == crash_at
                and faults.note_checkpoint("mid_write")
            ):
                _tear_and_raise(fp, path, faults)
            payload = {
                "sc": size_class,
                "c": codec.encode_content(content),
            }
            fp.write(pack_record(page_id, REC_PAGE, payload))
        if (
            not page_items
            and faults is not None
            and faults.note_checkpoint("mid_write")
        ):
            _tear_and_raise(fp, path, faults)
        fp.flush()
        os.fsync(fp.fileno())


def _tear_and_raise(fp: Any, path: str | os.PathLike[str], faults: FaultPlan) -> None:
    """Cut the in-progress checkpoint mid-frame and die.

    The cut lands *inside* the last written record, never on a frame
    boundary, so a torn temporary file can never parse as a complete
    (smaller) checkpoint — :func:`load_state` always detects it.
    """
    fp.flush()
    fp.truncate(max(len(PAGEFILE_MAGIC), fp.tell() - 7))
    fp.close()
    raise SimulatedCrashError(
        f"simulated crash writing checkpoint {os.fspath(path)}: "
        f"{faults.describe()}"
    )


def load_state(path: str | os.PathLike[str]) -> StoreState | None:
    """Parse a page file strictly; ``None`` when the file does not exist.

    Any framing, checksum or structural failure raises
    :class:`WalCorruptionError` — a checkpoint was fsynced before it was
    installed, so a damaged one is real corruption, not a crash tail.
    """
    try:
        with open(path, "rb") as fp:
            buf = fp.read()
    except FileNotFoundError:
        return None
    if buf[: len(PAGEFILE_MAGIC)] != PAGEFILE_MAGIC:
        raise WalCorruptionError(f"{path}: not a page file (bad magic)")
    offset = len(PAGEFILE_MAGIC)
    records = list(iter_frames(buf, offset))
    consumed = records[-1][3] if records else offset
    if consumed != len(buf):
        raise WalCorruptionError(
            f"{path}: page file damaged ({len(buf) - consumed} trailing "
            f"bytes fail their checksums)"
        )
    if not records or records[0][1] != REC_HEADER:
        raise WalCorruptionError(f"{path}: page file is missing its header")
    header = records[0][2]
    if header.get("v") != FORMAT_VERSION:
        raise WalCorruptionError(
            f"{path}: unsupported page file version {header.get('v')!r}"
        )
    state = StoreState(
        page_bytes=header["page_bytes"],
        next_id=header["next_id"],
        wal_seq=header["wal_seq"],
        meta=header["meta"],
        classes={int(sc): size for sc, size in header["classes"].items()},
    )
    for page_id, rtype, payload, _ in records[1:]:
        if rtype != REC_PAGE:
            raise WalCorruptionError(
                f"{path}: unexpected record type {rtype} in page file"
            )
        if page_id in state.pages:
            raise WalCorruptionError(
                f"{path}: page {page_id} appears twice in page file"
            )
        state.pages[page_id] = (
            payload["sc"],
            codec.decode_content(payload["c"]),
        )
    return state
