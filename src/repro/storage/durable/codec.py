"""Serialisation of page contents for the durable backend.

The in-memory :class:`~repro.storage.pager.PageStore` holds *live
objects* — :class:`~repro.core.node.DataPage`,
:class:`~repro.core.node.IndexNode`, or ``None`` for a freshly
allocated page.  The durable backend must put those on disk and get the
same objects back after a crash, so this module defines a small JSON
content codec:

========  ============================================================
``k``     payload
========  ============================================================
``data``  columnar record arrays: ``p`` (bit paths), ``v`` (values),
          ``pts`` (all coordinates as little-endian IEEE-754 doubles,
          hex-encoded) and ``d`` (dimensionality)
``index`` ``lvl`` (index level) + ``entries``: list of
          ``[bit_string, level, page]`` triples
``none``  an allocated-but-unwritten page
``raw``   ``v``: any other JSON-representable content (tests use this)
========  ============================================================

Coordinates travel as ``struct``-packed doubles rather than JSON
numbers: packing sixteen floats is one C call where ``repr`` ing them is
sixteen, and ``<d`` is bit-exact for every double including the ones
JSON cannot spell (infinities, NaN).  Region keys travel as their
canonical bit strings (:meth:`RegionKey.bit_string` /
:meth:`RegionKey.from_bits`); record values stay JSON, which round
-trips floats via ``repr`` (shortest form) bit-for-bit.  The logical
snapshot format in :mod:`repro.storage.snapshot` made the same choices;
this codec differs in being *per page* (the unit of WAL records and
checkpoint slots) rather than per tree.

Besides full images the codec speaks *deltas* for data pages
(:func:`encode_data_delta` / :func:`apply_data_delta`): the difference
between two record maps as added/replaced records plus removed paths.
The durable store logs a delta whenever it has already logged the page
once this incarnation, which turns the WAL hot path from O(page) to
O(change) — the difference between re-encoding sixteen records per
insert and encoding one.
"""

from __future__ import annotations

import json
import struct
from typing import Any

from repro.core.columnar import ColumnarDataPage, ColumnarIndexNode
from repro.core.entry import Entry
from repro.core.node import DataPage, IndexNode
from repro.errors import WalCorruptionError
from repro.geometry.region import RegionKey

__all__ = [
    "apply_data_delta",
    "decode_content",
    "diff_records",
    "encode_content",
    "encode_data_delta",
    "encode_data_delta_body",
    "encode_delta_body",
]


def _pack_points(
    points: list[tuple[float, ...]],
) -> tuple[int, str]:
    """``(dims, hex)`` of the concatenated coordinate array."""
    if not points:
        return 0, ""
    flat = [coord for point in points for coord in point]
    return len(points[0]), struct.pack(f"<{len(flat)}d", *flat).hex()


def _unpack_points(
    dims: int, raw: str, count: int
) -> list[tuple[float, ...]]:
    """Inverse of :func:`_pack_points` (``count`` points of ``dims``)."""
    if count == 0:
        return []
    try:
        flat = struct.unpack(f"<{dims * count}d", bytes.fromhex(raw))
    except (struct.error, ValueError) as exc:
        raise WalCorruptionError(
            f"undecodable coordinate array: {exc}"
        ) from None
    return [tuple(flat[i * dims : (i + 1) * dims]) for i in range(count)]


def encode_content(content: Any) -> dict[str, Any]:
    """Encode one page's content as a JSON-ready dict."""
    if content is None:
        return {"k": "none"}
    if isinstance(content, DataPage):
        records = content.records
        paths = list(records)
        dims, pts = _pack_points([records[p][0] for p in paths])
        payload = {
            "k": "data",
            "d": dims,
            "p": paths,
            "v": [records[p][1] for p in paths],
            "pts": pts,
        }
        if isinstance(content, ColumnarDataPage):
            # The layout tag plus the construction parameters ``d``
            # cannot carry (an empty page has no points to infer them
            # from) let recovery rebuild the same subclass.
            payload["c"] = 1
            payload["nd"] = content.ndim
            payload["pb"] = content.path_bits
        return payload
    if isinstance(content, IndexNode):
        payload = {
            "k": "index",
            "lvl": content.index_level,
            "entries": [
                [entry.key.bit_string(), entry.level, entry.page]
                for entry in content.entries
            ],
        }
        if isinstance(content, ColumnarIndexNode):
            payload["c"] = 1
            payload["nd"] = content.ndim
            payload["res"] = content.resolution
            payload["pb"] = content.path_bits
        return payload
    return {"k": "raw", "v": content}


def decode_content(data: dict[str, Any]) -> Any:
    """Rebuild a page's content from its :func:`encode_content` form."""
    kind = data.get("k")
    if kind == "none":
        return None
    if kind == "data":
        if data.get("c"):
            page: DataPage = ColumnarDataPage(data["nd"], data["pb"])
        else:
            page = DataPage()
        paths = data["p"]
        values = data["v"]
        if len(paths) != len(values):
            raise WalCorruptionError(
                "data-page record arrays disagree on length"
            )
        points = _unpack_points(data["d"], data["pts"], len(paths))
        for path, point, value in zip(paths, points, values):
            page.insert(path, point, value)
        return page
    if kind == "index":
        if data.get("c"):
            node: IndexNode = ColumnarIndexNode(
                data["lvl"],
                ndim=data["nd"],
                resolution=data["res"],
                path_bits=data["pb"],
            )
        else:
            node = IndexNode(data["lvl"])
        for bits, level, page_id in data["entries"]:
            # Through add(), not a raw entries.append: add keeps the
            # node's duplicate-key set (and the columnar side columns)
            # consistent with the entry list.
            node.add(Entry(RegionKey.from_bits(bits), level, page_id))
        return node
    if kind == "raw":
        return data["v"]
    raise WalCorruptionError(f"unknown page content kind {kind!r}")


def diff_records(
    base: dict[int, tuple[tuple[float, ...], Any]],
    current: dict[int, tuple[tuple[float, ...], Any]],
) -> tuple[list[tuple[int, tuple[tuple[float, ...], Any]]], list[int]]:
    """``(added_or_replaced, removed_paths)`` from ``base`` to ``current``."""
    base_get = base.get
    # Unchanged records are the *same* objects (the base starts as a
    # shallow copy of a map whose entries are replaced, never mutated),
    # so one identity sweep narrows the page to the few suspects and
    # the classification loop below runs over those alone.
    suspects = [
        (path, record)
        for path, record in current.items()
        if base_get(path) is not record
    ]
    if not suspects and len(base) == len(current):
        return [], []
    added = []
    new_paths = 0
    for path, record in suspects:
        previous = base_get(path)
        if previous is None:
            new_paths += 1
            added.append((path, record))
        elif previous != record:
            added.append((path, record))
    # |base ∩ current| == len(current) - new_paths, so this equality
    # holds exactly when nothing was removed — the common insert case
    # skips the O(page) scan of ``base``.
    if len(base) + new_paths == len(current):
        removed: list[int] = []
    else:
        removed = [path for path in base if path not in current]
    return added, removed


def encode_data_delta(
    base: dict[int, tuple[tuple[float, ...], Any]],
    current: dict[int, tuple[tuple[float, ...], Any]],
) -> dict[str, Any] | None:
    """The change from ``base`` to ``current`` as a delta payload.

    Returns ``None`` when the two record maps are equal (the store
    skips the WAL record entirely).  The payload mirrors the ``data``
    image shape for the added/replaced records and lists removed paths
    under ``r``.
    """
    added, removed = diff_records(base, current)
    if not added and not removed:
        return None
    dims, pts = _pack_points([record[0] for _, record in added])
    return {
        "dk": 1,
        "d": dims,
        "p": [path for path, _ in added],
        "v": [record[1] for _, record in added],
        "pts": pts,
        "r": removed,
    }


def encode_delta_body(
    page_id: int,
    txn: int,
    added: list[tuple[int, tuple[tuple[float, ...], Any]]],
    removed: list[int],
) -> bytes:
    """A complete delta-record payload as JSON bytes (the hot path).

    Semantically ``dumps(encode_data_delta(...) + id/x)`` for an
    already-computed diff, but the JSON is assembled by hand: one
    insert logs one record with a couple of integers, a short hex
    string and one value, and going through the generic encoder costs
    more than the whole diff.  Only the value list — the one slot
    holding arbitrary caller data — is delegated to :mod:`json`.
    """
    dims, pts = _pack_points([record[0] for _, record in added])
    value_list = [record[1] for _, record in added]
    if all(type(value) is int for value in value_list):
        # Plain ints (the common record value) serialise as themselves;
        # json.dumps is only needed for arbitrary payloads.  ``bool`` is
        # excluded by the exact type check (json spells it differently).
        values = f'[{",".join(map(str, value_list))}]'
    else:
        values = json.dumps(value_list, separators=(",", ":"))
    return (
        f'{{"d":{dims},"dk":1,"id":{page_id}'
        f',"p":[{",".join(str(path) for path, _ in added)}]'
        f',"pts":"{pts}"'
        f',"r":[{",".join(map(str, removed))}]'
        f',"v":{values},"x":{txn}}}'
    ).encode("ascii")


def encode_data_delta_body(
    page_id: int,
    txn: int,
    base: dict[int, tuple[tuple[float, ...], Any]],
    current: dict[int, tuple[tuple[float, ...], Any]],
) -> bytes | None:
    """Diff ``base`` against ``current`` and encode the delta record.

    ``None`` when the maps are equal (nothing to log).  The store's
    write path runs :func:`diff_records` and :func:`encode_delta_body`
    separately — it needs the diff to advance its delta base — so this
    convenience wrapper mostly serves tests and tooling.
    """
    added, removed = diff_records(base, current)
    if not added and not removed:
        return None
    return encode_delta_body(page_id, txn, added, removed)


def apply_data_delta(content: Any, payload: dict[str, Any]) -> DataPage:
    """Replay one :func:`encode_data_delta` payload onto ``content``."""
    if not isinstance(content, DataPage):
        raise WalCorruptionError(
            "delta record targets a page that is not a data page "
            f"({type(content).__name__})"
        )
    paths = payload["p"]
    values = payload["v"]
    if len(paths) != len(values):
        raise WalCorruptionError(
            "data-page delta arrays disagree on length"
        )
    points = _unpack_points(payload["d"], payload["pts"], len(paths))
    for path, point, value in zip(paths, points, values):
        content.insert(path, point, value, replace=True)
    for path in payload["r"]:
        if path not in content:
            raise WalCorruptionError(
                f"delta removes path {path} absent from the page"
            )
        content.delete(path)
    return content


def dumps(data: dict[str, Any]) -> bytes:
    """Canonical byte form of a record payload (compact, sorted keys)."""
    return json.dumps(
        data, separators=(",", ":"), sort_keys=True, ensure_ascii=True
    ).encode("ascii")


def loads(raw: bytes) -> dict[str, Any]:
    """Inverse of :func:`dumps`; corruption raises, never propagates."""
    try:
        data = json.loads(raw)
    except (ValueError, UnicodeDecodeError) as exc:
        raise WalCorruptionError(f"undecodable record payload: {exc}") from None
    if not isinstance(data, dict):
        raise WalCorruptionError(
            f"record payload must be an object, got {type(data).__name__}"
        )
    return data
