"""The write-ahead log: append-only, checksummed, crash-truncatable.

Record framing (shared with the checkpoint page file, which reuses it):

.. code-block:: text

    +----------------+---------+---------+-----------------+---------+
    | payload_len u32| seq u32 | type u8 | payload (JSON)  | crc u32 |
    +----------------+---------+---------+-----------------+---------+
     <------- little-endian header ------>                  CRC32 of
                                                            header+payload

The file opens with an 8-byte magic (``BVWAL001``).  Sequence numbers
are assigned by the writer, strictly increasing across the life of a
store — a checkpoint resets the *file* but not the counter, and stores
the last sequence number in the page-file header so recovery can skip
records the checkpoint already absorbed (an LSN floor, ARIES-style).

Torn tails are a *scan* concern, not a write concern: :func:`scan_wal`
accepts any prefix of a valid log, stopping at the first record whose
frame is short or whose CRC fails, and reports what it discarded.  Only
a bad magic in a non-empty file is corruption — that file was never a
WAL of ours.

Commits piggyback on records: the high bit of the type byte
(``REC_COMMIT_FLAG``) marks a record as the *last of its committed
transaction*, so a single-mutation transaction — the overwhelmingly
common case — costs exactly one record.  ``base_type`` strips the flag;
a standalone ``REC_COMMIT`` record also exists for transactions that
have nothing else to say (none are written today, but the scanner
accepts them).

Durability model: appends accumulate in the userspace buffer and reach
the OS (the simulated page cache) when the buffered writer spills,
on :meth:`WriteAheadLog.flush`, and before every fault action; only
:meth:`WriteAheadLog.sync` — an ``fsync`` — advances the *synced*
watermark.  A :class:`~repro.storage.faults.FaultPlan` decides what
survives a crash: ``tail="drop_unsynced"`` truncates back to the
watermark, ``tail="torn"`` cuts the final record mid-frame, and
``drop_fsync=True`` makes syncs lie (the watermark stays put).  This
module is one of the two sanctioned raw-file writers in the storage
layer (lint rule R12); everything else goes through it.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import SimulatedCrashError, StorageError, WalCorruptionError
from repro.storage.durable import codec
from repro.storage.faults import TAIL_DROP_UNSYNCED, TAIL_TORN, FaultPlan

__all__ = [
    "REC_ALLOC",
    "REC_CLASS",
    "REC_COMMIT",
    "REC_COMMIT_FLAG",
    "REC_FREE",
    "REC_HEADER",
    "REC_META",
    "REC_PAGE",
    "REC_WRITE",
    "WAL_MAGIC",
    "WalScan",
    "WalStats",
    "WriteAheadLog",
    "base_type",
    "iter_frames",
    "pack_record",
    "scan_wal",
]

WAL_MAGIC = b"BVWAL001"

_FRAME = struct.Struct("<IIB")  # payload_len, seq, record type
_CRC = struct.Struct("<I")

#: Record types.  1-6 appear in the WAL; 7-8 only in the page file
#: (which borrows this framing — see :mod:`repro.storage.durable.pagefile`).
REC_ALLOC = 1
REC_WRITE = 2
REC_FREE = 3
REC_CLASS = 4
REC_COMMIT = 5
REC_META = 6
REC_HEADER = 7
REC_PAGE = 8

#: High bit of the type byte: this record is the last of its committed
#: transaction (the commit marker piggybacks on the final mutation).
REC_COMMIT_FLAG = 0x80

RECORD_NAMES = {
    REC_ALLOC: "alloc",
    REC_WRITE: "write",
    REC_FREE: "free",
    REC_CLASS: "class",
    REC_COMMIT: "commit",
    REC_META: "meta",
    REC_HEADER: "header",
    REC_PAGE: "page",
}


def base_type(rtype: int) -> int:
    """The record type with the commit flag stripped."""
    return rtype & ~REC_COMMIT_FLAG


def frame_body(seq: int, rtype: int, body: bytes) -> bytes:
    """Frame an already-encoded payload (the hot-path entry point)."""
    header = _FRAME.pack(len(body), seq, rtype)
    crc = zlib.crc32(body, zlib.crc32(header)) & 0xFFFFFFFF
    return header + body + _CRC.pack(crc)


def pack_record(seq: int, rtype: int, payload: dict[str, Any]) -> bytes:
    """One framed, checksummed record as bytes."""
    return frame_body(seq, rtype, codec.dumps(payload))


def iter_frames(
    buf: bytes, offset: int = 0
) -> Iterator[tuple[int, int, dict[str, Any], int]]:
    """Yield ``(seq, rtype, payload, end_offset)`` for each valid record.

    Stops silently at the first short or checksum-failing frame — a torn
    tail is a normal crash artefact, not an error.  Callers that need to
    know *how much* was discarded compare the last ``end_offset`` against
    ``len(buf)``.
    """
    end = len(buf)
    while offset + _FRAME.size <= end:
        length, seq, rtype = _FRAME.unpack_from(buf, offset)
        frame_end = offset + _FRAME.size + length + _CRC.size
        if frame_end > end:
            return
        body = buf[offset + _FRAME.size : offset + _FRAME.size + length]
        (crc,) = _CRC.unpack_from(buf, frame_end - _CRC.size)
        want = zlib.crc32(body, zlib.crc32(buf[offset : offset + _FRAME.size]))
        if crc != (want & 0xFFFFFFFF):
            return
        try:
            payload = codec.loads(body)
        except WalCorruptionError:
            return
        yield seq, rtype, payload, frame_end
        offset = frame_end


@dataclass
class WalStats:
    """Counters for one WAL's life (reset by recovery, not checkpoints)."""

    appends: int = 0
    commits: int = 0
    syncs: int = 0
    syncs_dropped: int = 0
    bytes_written: int = 0
    resets: int = 0


@dataclass
class WalScan:
    """What :func:`scan_wal` found.

    ``records`` is every frame that parsed, in file order;
    ``discarded_bytes`` is the torn/garbage suffix length (0 for a clean
    log); ``last_seq`` is the highest sequence number seen.
    """

    records: list[tuple[int, int, dict[str, Any]]] = field(default_factory=list)
    discarded_bytes: int = 0
    last_seq: int = 0

    @property
    def torn(self) -> bool:
        """True when a torn/garbage tail was discarded."""
        return self.discarded_bytes > 0


def scan_wal(path: str | os.PathLike[str]) -> WalScan:
    """Parse a WAL file, tolerating any crash-torn tail.

    A missing or empty file is an empty log (the crash may have beaten
    even the magic to disk).  A non-empty file that does not start with
    the magic raises :class:`WalCorruptionError` — that is not our WAL.
    """
    try:
        with open(path, "rb") as fp:
            buf = fp.read()
    except FileNotFoundError:
        return WalScan()
    if not buf:
        return WalScan()
    if len(buf) < len(WAL_MAGIC):
        if WAL_MAGIC.startswith(buf):
            return WalScan(discarded_bytes=len(buf))
        raise WalCorruptionError(f"{path}: not a WAL file (bad magic)")
    if buf[: len(WAL_MAGIC)] != WAL_MAGIC:
        raise WalCorruptionError(f"{path}: not a WAL file (bad magic)")
    scan = WalScan()
    offset = len(WAL_MAGIC)
    for seq, rtype, payload, end in iter_frames(buf, offset):
        scan.records.append((seq, rtype, payload))
        scan.last_seq = max(scan.last_seq, seq)
        offset = end
    scan.discarded_bytes = len(buf) - offset
    return scan


class WriteAheadLog:
    """The append side of the log, with fault-plan crash points.

    One instance belongs to one
    :class:`~repro.storage.durable.store.DurableStore`.  ``append``
    writes and flushes a record to the OS and consults the fault plan;
    if the plan's crash point fires, the configured tail policy is
    applied to the file, the log closes, and
    :class:`~repro.errors.SimulatedCrashError` propagates — the owning
    store catches it to mark itself dead.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        faults: FaultPlan,
        start_seq: int = 0,
    ):
        self.path = os.fspath(path)
        self.faults = faults
        self.stats = WalStats()
        self._seq = start_seq
        self._file = open(self.path, "wb")
        self._file.write(WAL_MAGIC)
        self._file.flush()
        os.fsync(self._file.fileno())
        self._length = len(WAL_MAGIC)
        self._synced_length = self._length
        self._last_record_offset = self._length
        self._closed = False

    @property
    def seq(self) -> int:
        """The sequence number of the most recently appended record."""
        return self._seq

    @property
    def length(self) -> int:
        """Bytes written so far (magic included)."""
        return self._length

    def append(self, rtype: int, payload: dict[str, Any]) -> int:
        """Encode and buffer one record; returns its sequence number."""
        return self.append_body(rtype, codec.dumps(payload))

    def append_body(self, rtype: int, body: bytes) -> int:
        """Buffer one pre-encoded record for the log.

        Records sit in the userspace buffer until it spills (or
        :meth:`flush`/:meth:`sync`/a fault action pushes them out) —
        group commit must not pay a syscall per record.  The crash path
        flushes before applying its tail policy, so buffering is
        invisible to the fault machinery.
        """
        if self._closed:
            raise StorageError("write-ahead log is closed")
        self._seq += 1
        record = frame_body(self._seq, rtype, body)
        self._file.write(record)
        self._last_record_offset = self._length
        self._length += len(record)
        self.stats.appends += 1
        self.stats.bytes_written += len(record)
        if rtype & REC_COMMIT_FLAG or rtype == REC_COMMIT:
            self.stats.commits += 1
        if self.faults.note_append():
            self.crash()
        return self._seq

    def flush(self) -> None:
        """Push buffered records to the OS (no fsync)."""
        if self._closed:
            raise StorageError("write-ahead log is closed")
        self._file.flush()

    def sync(self) -> None:
        """fsync the log — unless the fault plan makes the fsync lie."""
        if self._closed:
            raise StorageError("write-ahead log is closed")
        self._file.flush()
        self.stats.syncs += 1
        if self.faults.note_fsync():
            os.fsync(self._file.fileno())
            self._synced_length = self._length
        else:
            self.stats.syncs_dropped += 1

    def crash(self) -> None:
        """Apply the plan's tail policy, close the file, and raise."""
        self._file.flush()
        tail = self.faults.tail
        if tail == TAIL_DROP_UNSYNCED:
            self._file.truncate(self._synced_length)
        elif tail == TAIL_TORN and self._length > self._last_record_offset:
            record_len = self._length - self._last_record_offset
            keep = max(1, int(record_len * self.faults.torn_fraction))
            if keep < record_len:
                self._file.truncate(self._last_record_offset + keep)
        self._file.flush()
        os.fsync(self._file.fileno())
        self._file.close()
        self._closed = True
        raise SimulatedCrashError(
            f"simulated crash in WAL {self.path}: {self.faults.describe()}"
        )

    def reset(self) -> None:
        """Truncate back to the magic (a checkpoint absorbed the log).

        The sequence counter is *not* reset — it keeps increasing across
        the store's life so the page-file header's floor stays a simple
        comparison.
        """
        if self._closed:
            raise StorageError("write-ahead log is closed")
        self._file.truncate(len(WAL_MAGIC))
        self._file.seek(len(WAL_MAGIC))
        self._file.flush()
        os.fsync(self._file.fileno())
        self._length = len(WAL_MAGIC)
        self._synced_length = self._length
        self._last_record_offset = self._length
        self.stats.resets += 1

    def close(self) -> None:
        """Flush, fsync honestly, and close (idempotent)."""
        if self._closed:
            return
        self._file.flush()
        os.fsync(self._file.fileno())
        self._file.close()
        self._closed = True

    @property
    def closed(self) -> bool:
        """True once the log has been closed (or crashed)."""
        return self._closed
