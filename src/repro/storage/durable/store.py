"""The durable store: a :class:`PageStore` whose mutations survive crashes.

:class:`DurableStore` subclasses the in-memory
:class:`~repro.storage.pager.PageStore` — the live page table, size-class
accounting, I/O counters and trace emission are inherited unchanged, so a
tree behaves *identically* over either backend (the equivalence tests
assert byte-identical query results and equal ``OpCounters`` deltas) —
and adds a durability shadow: every mutation is appended to a
:class:`~repro.storage.durable.wal.WriteAheadLog` before the call
returns, and a checkpoint compacts the log into a
:class:`~repro.storage.durable.pagefile` image.

Transactions ride the tracer
----------------------------
One *tree operation* is one WAL transaction.  The store does not ask the
tree to say when an operation starts — the tree already announces it:
``BVTree.insert``/``delete``/``bulk_load`` open tracer op spans whenever
``tracer.structural`` is true.  The store attaches a structural tap
(:class:`_OpSpanTap`) to whatever tracer it carries, watches
``op_begin``/``op_end``, and groups every mutation inside the span into
one transaction.  The transaction's records are buffered and written to
the log in one burst at ``op_end``, the commit marker riding the last
record's type byte (``REC_COMMIT_FLAG``, with the operation name in its
payload), followed in ``sync="commit"`` mode by a single fsync — group
commit, one transaction per tree operation, with zero changes to
:mod:`repro.core` (lint rule R3).  A span that exits with an error
writes nothing at all: the buffered records are dropped, so a failed
operation is invisible after a crash, same as it is in memory.
Mutations outside any span (tree construction, direct store use)
auto-commit individually.

Crash discipline
----------------
A fault-plan crash point raises
:class:`~repro.errors.SimulatedCrashError` and leaves the store *dead*:
the files keep exactly the bytes the simulated crash left, and every
further access raises :class:`~repro.errors.StorageError`.  Reopen the
directory with :func:`repro.storage.durable.recovery.recover_store`.
"""

from __future__ import annotations

import os
from typing import Any

from repro.core.node import DataPage
from repro.errors import SimulatedCrashError, StorageError
from repro.obs.events import CHECKPOINT, OP_BEGIN, OP_END, TraceEvent
from repro.obs.tracer import Tracer
from repro.storage.durable import codec
from repro.storage.durable.pagefile import (
    StoreState,
    dump_state,
    fsync_dir,
)
from repro.storage.durable.wal import (
    REC_ALLOC,
    REC_CLASS,
    REC_COMMIT_FLAG,
    REC_FREE,
    REC_META,
    REC_WRITE,
    WriteAheadLog,
)
from repro.storage.faults import FaultPlan
from repro.storage.pager import PageStore

__all__ = ["DurableStore", "PAGEFILE_NAME", "TMP_PAGEFILE_NAME", "WAL_NAME"]

WAL_NAME = "wal.log"
PAGEFILE_NAME = "pages.dat"
TMP_PAGEFILE_NAME = "pages.dat.tmp"

#: The tree operations that become WAL transactions (their spans carry
#: mutations; read spans like ``get``/``range`` never reach the WAL).
_TXN_OPS = frozenset({"insert", "delete", "bulk_load"})

_SYNC_MODES = ("commit", "os")


class _OpSpanTap:
    """A structural tracer tap that turns op spans into transactions.

    Declares ``kinds`` so a tracer in tap-only mode skips building the
    structural events the tap would discard (page writes, splits); see
    :mod:`repro.obs.tracer`.
    """

    __slots__ = ("_store",)

    #: The only event kinds this tap consumes.
    kinds = frozenset({OP_BEGIN, OP_END})

    def __init__(self, store: "DurableStore"):
        self._store = store

    def emit(self, event: TraceEvent) -> None:
        if event.kind == OP_BEGIN:
            if event.fields.get("name") in _TXN_OPS:
                self._store._begin_op(event.op)
        elif event.kind == OP_END:
            if event.fields.get("name") in _TXN_OPS:
                self._store._end_op(
                    event.op,
                    str(event.fields["name"]),
                    error=("error" in event.fields),
                )

    def close(self) -> None:
        """Nothing to release (the store owns all resources)."""


class _DeadPageTable(dict):
    """The page table of a dead or closed store: every access raises.

    :class:`PageStore`'s hot paths go straight at ``self._pages``, so
    swapping the table for this stand-in poisons *reads* without the
    durable store overriding :meth:`PageStore.read` — the hottest
    inherited path stays exactly the parent's, and the liveness check
    costs nothing until the store actually dies.
    """

    __slots__ = ("_store",)

    def __init__(self, store: "DurableStore"):
        super().__init__()
        self._store = store

    def _raise(self) -> Any:
        self._store._ensure_alive()
        raise StorageError("durable store page table poisoned")

    def __getitem__(self, key: Any) -> Any:
        return self._raise()

    def __setitem__(self, key: Any, value: Any) -> None:
        self._raise()

    def __delitem__(self, key: Any) -> None:
        self._raise()

    def __contains__(self, key: Any) -> bool:
        return self._raise()

    def __iter__(self) -> Any:
        return self._raise()

    def __len__(self) -> int:
        return self._raise()

    def get(self, key: Any, default: Any = None) -> Any:
        return self._raise()

    def items(self) -> Any:
        return self._raise()

    def keys(self) -> Any:
        return self._raise()

    def values(self) -> Any:
        return self._raise()


class DurableStore(PageStore):
    """A file-backed page store with WAL-based crash safety.

    Creates ``wal.log`` and (at the first checkpoint) ``pages.dat``
    inside ``directory``.  Refuses a directory that already holds either
    file — an existing store must be reopened through
    :func:`~repro.storage.durable.recovery.recover_store`, which is also
    the clean-shutdown reopen path (a cleanly closed store recovers from
    its final checkpoint with an empty WAL).

    ``sync="commit"`` (default) fsyncs the WAL at every commit marker;
    ``sync="os"`` leaves durability to the OS page cache — much faster,
    but a ``tail="drop_unsynced"`` crash loses everything unsynced.  The
    ``faults`` plan injects crash points; the default plan never fires.
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        page_bytes: int = 4096,
        *,
        faults: FaultPlan | None = None,
        sync: str = "commit",
    ):
        if sync not in _SYNC_MODES:
            raise StorageError(
                f"unknown sync mode {sync!r}; one of {_SYNC_MODES}"
            )
        # The tracer property (below) consults these; they must exist
        # before PageStore.__init__ assigns ``self.tracer``.
        self._op_tap: _OpSpanTap | None = None
        self._tracer = Tracer()
        self._wal: WriteAheadLog | None = None
        self._dead = False
        self._closed = False
        super().__init__(page_bytes)
        self.directory = os.fspath(directory)
        self.faults = faults if faults is not None else FaultPlan()
        self.sync = sync
        self._meta: dict[str, Any] = {}
        self._op_stack: list[int] = []
        self._txn = 1
        self._txn_dirty = False
        # Last record map logged per data page (the delta base) and the
        # pages whose base advanced inside the open transaction — an
        # abort rolls those bases back to "unknown" so the next write
        # logs a full image again (see ``write``).
        self._logged: dict[int, dict[int, tuple[tuple[float, ...], Any]]] = {}
        self._txn_touched: set[int] = set()
        self._txn_buf: list[tuple[int, bytes]] = []
        os.makedirs(self.directory, exist_ok=True)
        for name in (WAL_NAME, PAGEFILE_NAME):
            if os.path.exists(os.path.join(self.directory, name)):
                raise StorageError(
                    f"{self.directory} already holds a durable store "
                    f"({name} exists); reopen it with "
                    f"repro.storage.durable.recover_store"
                )
        self._wal = WriteAheadLog(self.wal_path, self.faults)
        self._op_tap = _OpSpanTap(self)
        self._tracer.add_tap(self._op_tap)

    # ------------------------------------------------------------------
    # Paths and stats
    # ------------------------------------------------------------------

    def _live_wal(self) -> WriteAheadLog:
        """The WAL, which outlives ``__init__`` for the store's whole
        life; absence means the store was never fully constructed."""
        wal = self._wal
        if wal is None:
            raise StorageError("durable store has no WAL (mid-construction)")
        return wal

    @property
    def wal_path(self) -> str:
        """Path of the write-ahead log file."""
        return os.path.join(self.directory, WAL_NAME)

    @property
    def pagefile_path(self) -> str:
        """Path of the checkpointed page file."""
        return os.path.join(self.directory, PAGEFILE_NAME)

    @property
    def wal_stats(self) -> Any:
        """The WAL's counters (appends, commits, fsyncs, bytes)."""
        return self._live_wal().stats

    @property
    def wal_seq(self) -> int:
        """Sequence number of the most recent WAL record."""
        return self._live_wal().seq

    # ------------------------------------------------------------------
    # Tracer rebinding: the op tap follows the tracer
    # ------------------------------------------------------------------

    @property
    def tracer(self) -> Tracer:
        """The shared tracer (the op-span tap moves with it)."""
        return self._tracer

    @tracer.setter
    def tracer(self, tracer: Tracer) -> None:
        tap = self._op_tap
        if tap is not None:
            self._tracer.remove_tap(tap)
        self._tracer = tracer
        if tap is not None:
            tracer.add_tap(tap)

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------

    def _ensure_alive(self) -> None:
        # Call sites on the hot path guard with the two attribute reads
        # inline (``if self._dead or self._closed:``) so the live case
        # costs no function call; this raiser only runs when one is set.
        if self._dead:
            raise StorageError(
                f"durable store in {self.directory} died in a simulated "
                f"crash; recover it with repro.storage.durable.recover_store"
            )
        if self._closed:
            raise StorageError(
                f"durable store in {self.directory} is closed"
            )

    def _mark_dead(self) -> None:
        """Mark the store dead and poison its page table (see above)."""
        self._dead = True
        self._pages = _DeadPageTable(self)

    @property
    def dead(self) -> bool:
        """True once a fault-plan crash point has fired."""
        return self._dead

    @property
    def closed(self) -> bool:
        """True once the store was cleanly closed."""
        return self._closed

    # ------------------------------------------------------------------
    # WAL transaction plumbing (driven by the tracer tap)
    # ------------------------------------------------------------------

    def _begin_op(self, op_id: int) -> None:
        if self._dead or self._closed:
            return
        self._op_stack.append(op_id)

    def _end_op(self, op_id: int, name: str, error: bool) -> None:
        stack = self._op_stack
        if not stack or stack[-1] != op_id:
            # A span we never saw open (tap attached mid-operation, or
            # the store died inside it and was reset) — ignore.
            if op_id in stack:
                del stack[stack.index(op_id) :]
            return
        stack.pop()
        if stack or self._dead or self._closed:
            return
        if error:
            self._abort()
        else:
            self._commit(name)

    def _log(self, rtype: int, payload: dict[str, Any]) -> None:
        payload["x"] = self._txn
        self._buffer(rtype, codec.dumps(payload))

    def _buffer(self, rtype: int, body: bytes) -> None:
        """Queue one encoded record on the open transaction.

        Records stay in the transaction buffer until the commit writes
        them to the WAL in one burst — so an *aborted* transaction
        never reaches the log at all, and the commit marker can ride
        the last record (``REC_COMMIT_FLAG``) instead of costing a
        record of its own.
        """
        if self._wal is None:
            return
        self._txn_buf.append((rtype, body))
        self._txn_dirty = True
        if not self._op_stack:
            self._commit("auto")

    def _commit(self, op_name: str) -> None:
        if not self._txn_dirty:
            return
        wal = self._wal
        buf = self._txn_buf
        if wal is None or not buf:
            raise StorageError("commit with no WAL or an empty burst")
        # Piggyback the commit marker and the operation name on the
        # final record of the burst (every payload is a JSON object, so
        # splicing before the closing brace is safe; "op" collides with
        # no mutation-payload key).
        rtype, body = buf[-1]
        buf[-1] = (
            rtype | REC_COMMIT_FLAG,
            body[:-1] + b',"op":"' + op_name.encode("ascii") + b'"}',
        )
        try:
            for rec_type, rec_body in buf:
                wal.append_body(rec_type, rec_body)
            if self.sync == "commit":
                wal.sync()
            # sync="os" leaves even the flush to the buffered writer:
            # records reach the OS in ~8 KiB batches (and immediately on
            # sync, close, checkpoint or a simulated crash, which flush
            # first — so the fault model never sees the buffering).
        except SimulatedCrashError:
            self._mark_dead()
            buf.clear()
            raise
        buf.clear()
        self._txn += 1
        self._txn_dirty = False
        self._txn_touched.clear()

    def _abort(self) -> None:
        # The buffered records are simply dropped — an aborted
        # transaction leaves no trace in the log.  The delta bases
        # advanced inside it are lies though; forget them and the next
        # write of those pages logs a full image.
        self._txn_buf.clear()
        for page_id in self._txn_touched:
            self._logged.pop(page_id, None)
        self._txn_touched.clear()
        if self._txn_dirty:
            self._txn += 1
            self._txn_dirty = False

    # ------------------------------------------------------------------
    # Storage protocol: mutations gain a WAL shadow
    # ------------------------------------------------------------------

    def allocate(self, content: Any = None, size_class: int = 0) -> int:
        if self._dead or self._closed:
            self._ensure_alive()
        page_id = super().allocate(content, size_class)
        if isinstance(content, DataPage):
            self._logged[page_id] = dict(content.records)
            self._txn_touched.add(page_id)
        self._log(
            REC_ALLOC,
            {"id": page_id, "sc": size_class, "c": codec.encode_content(content)},
        )
        return page_id

    def write(self, page_id: int, content: Any) -> None:
        if self._dead or self._closed:
            self._ensure_alive()
        super().write(page_id, content)
        if isinstance(content, DataPage):
            # Log the change, not the page: O(records touched) instead
            # of O(page).  The base is the record map as of the last
            # logged image of this page, advanced *in place* by exactly
            # the delta that was logged; an unchanged write (possible —
            # the tree rewrites pages it may not have modified) logs
            # nothing at all, which replay cannot distinguish anyway.
            base = self._logged.get(page_id)
            current = content.records
            self._txn_touched.add(page_id)
            if base is None:
                self._logged[page_id] = dict(current)
                self._log(
                    REC_WRITE,
                    {"id": page_id, "c": codec.encode_content(content)},
                )
                return
            added, removed = codec.diff_records(base, current)
            if added or removed:
                self._buffer(
                    REC_WRITE,
                    codec.encode_delta_body(
                        page_id, self._txn, added, removed
                    ),
                )
                for path, record in added:
                    base[path] = record
                for path in removed:
                    del base[path]
            return
        self._logged.pop(page_id, None)
        self._log(
            REC_WRITE, {"id": page_id, "c": codec.encode_content(content)}
        )

    def free(self, page_id: int) -> None:
        if self._dead or self._closed:
            self._ensure_alive()
        super().free(page_id)
        self._logged.pop(page_id, None)
        self._log(REC_FREE, {"id": page_id})

    def register_size_class(self, size_class: int, page_bytes: int) -> None:
        self._ensure_alive()
        existing = self._classes.get(size_class)
        changed = existing is None or existing.page_bytes != page_bytes
        super().register_size_class(size_class, page_bytes)
        if changed:
            self._log(REC_CLASS, {"sc": size_class, "b": page_bytes})

    # ``read`` is deliberately *not* overridden: a dead or closed store
    # swaps ``self._pages`` for a :class:`_DeadPageTable`, so the
    # inherited hot path raises on its first table access.

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------

    @property
    def meta(self) -> dict[str, Any]:
        """Durable application metadata (read-only view; use set_meta)."""
        return dict(self._meta)

    def set_meta(self, key: str, value: Any) -> None:
        """Store one durable metadata entry (JSON-representable value)."""
        self._ensure_alive()
        self._meta[key] = value
        self._log(REC_META, {"key": key, "v": value})

    # ------------------------------------------------------------------
    # Checkpointing and shutdown
    # ------------------------------------------------------------------

    def _state(self) -> StoreState:
        wal = self._wal
        return StoreState(
            page_bytes=self.page_bytes,
            next_id=self._next_id,
            wal_seq=wal.seq if wal is not None else 0,
            meta=dict(self._meta),
            classes={
                sc: stats.page_bytes for sc, stats in self._classes.items()
            },
            pages={
                pid: (self._size_class[pid], content)
                for pid, content in self._pages.items()
            },
        )

    def checkpoint(self) -> None:
        """Compact the WAL into a fresh page file (crash-atomic).

        Writes the complete image to a temporary file, installs it with
        an atomic rename, fsyncs the directory, then truncates the WAL.
        A crash anywhere in between leaves a recoverable pair of files:
        the header's WAL floor makes replay over either image correct.
        """
        self._ensure_alive()
        wal = self._live_wal()
        tmp_path = os.path.join(self.directory, TMP_PAGEFILE_NAME)
        state = self._state()
        try:
            dump_state(tmp_path, state, faults=self.faults)
        except SimulatedCrashError:
            self._die_with_wal()
            raise
        os.replace(tmp_path, self.pagefile_path)
        fsync_dir(self.directory)
        if self.faults.note_checkpoint("before_truncate"):
            self._die_with_wal()
            raise SimulatedCrashError(
                f"simulated crash after installing checkpoint in "
                f"{self.directory}: {self.faults.describe()}"
            )
        wal.reset()
        tracer = self._tracer
        if tracer.structural:
            tracer.emit(
                CHECKPOINT,
                pages=len(self._pages),
                wal_seq=state.wal_seq,
                bytes=self.live_bytes(),
            )

    def _die_with_wal(self) -> None:
        """A non-WAL crash point fired: tear the WAL too, mark dead."""
        self._mark_dead()
        if self._wal is not None and not self._wal.closed:
            try:
                self._wal.crash()
            except SimulatedCrashError:
                pass  # the caller raises its own crash error

    def close(self, checkpoint: bool = True) -> None:
        """Checkpoint (by default) and close the files (idempotent).

        ``checkpoint=False`` skips compaction, leaving the WAL as the
        only record of work since the previous checkpoint — the state a
        long-running process is in most of the time, and the interesting
        starting point for recovery tests.
        """
        if self._dead or self._closed:
            return
        if checkpoint:
            self.checkpoint()
        self._live_wal().close()
        self._closed = True
        self._pages = _DeadPageTable(self)

    # ------------------------------------------------------------------
    # Recovery back door
    # ------------------------------------------------------------------

    @classmethod
    def _from_state(
        cls,
        directory: str | os.PathLike[str],
        state: StoreState,
        *,
        faults: FaultPlan | None = None,
        sync: str = "commit",
        start_seq: int = 0,
    ) -> "DurableStore":
        """Materialise a store from recovered state (recovery use only).

        Writes the checkpoint *first*, then opens a fresh WAL — a crash
        between the two leaves the old WAL beside the new image, whose
        floor makes the stale records inert.
        """
        store = cls.__new__(cls)
        store._op_tap = None
        store._tracer = Tracer()
        store._wal = None
        store._dead = False
        store._closed = False
        PageStore.__init__(store, state.page_bytes)
        store.directory = os.fspath(directory)
        store.faults = faults if faults is not None else FaultPlan()
        store.sync = sync
        store._meta = dict(state.meta)
        store._op_stack = []
        store._txn = 1
        store._txn_dirty = False
        store._logged = {}
        store._txn_touched = set()
        store._txn_buf = []
        os.makedirs(store.directory, exist_ok=True)
        for size_class, page_bytes in sorted(state.classes.items()):
            PageStore.register_size_class(store, size_class, page_bytes)
        for page_id, (size_class, content) in state.pages.items():
            store._pages[page_id] = content
            store._size_class[page_id] = size_class
            stats = store._class_stats(size_class)
            stats.live_pages += 1
            stats.total_allocated += 1
            stats.peak_pages = max(stats.peak_pages, stats.live_pages)
        store._next_id = max(
            state.next_id, max(state.pages, default=0) + 1
        )
        state = store._state()
        state.wal_seq = start_seq
        tmp_path = os.path.join(store.directory, TMP_PAGEFILE_NAME)
        dump_state(tmp_path, state)
        os.replace(tmp_path, store.pagefile_path)
        fsync_dir(store.directory)
        store._wal = WriteAheadLog(
            store.wal_path, store.faults, start_seq=start_seq
        )
        store._op_tap = _OpSpanTap(store)
        store._tracer.add_tap(store._op_tap)
        return store
