"""Paged-storage simulator.

The paper's guarantees are stated in terms of *pages*: data pages holding at
most ``P`` points, index pages holding at most ``F`` entries (possibly
scaled with the index level, §7.3), and the number of pages touched by an
operation.  This subpackage provides a small storage engine that makes
those quantities observable:

- :class:`~repro.storage.pager.PageStore` — allocation, read, write and
  free of pages, with exact I/O counters and per-size-class accounting.
- :class:`~repro.storage.buffer.BufferPool` — an LRU read-through cache on
  top of a store, distinguishing logical from physical reads.
- :class:`~repro.storage.interface.Storage` — the protocol both
  implement, which is all the index structures in :mod:`repro.core` are
  allowed to depend on (lint rule R3); :func:`default_store` builds the
  default backend for callers that do not supply one.
- :class:`~repro.storage.stats.IOStats` — the counter bundle.
- :mod:`repro.storage.durable` — the crash-safe file-backed backend:
  :class:`~repro.storage.durable.DurableStore` (WAL + checkpointed page
  file behind the same protocol) and its recovery entry points.  It is
  imported explicitly, not re-exported here, so the in-memory simulator
  stays import-light; :class:`~repro.storage.faults.FaultPlan` — the
  injectable crash scenarios the durable backend honours — is re-exported
  because it is pure configuration.

Pages store live Python objects rather than serialised bytes: every claim
reproduced from the paper is about page *counts*, heights and occupancies,
which are identical either way, while byte-level serialisation would only
slow the simulator down.  Byte sizes enter through the declared size class
of a page (see §7.3 multiple page sizes) used by the analysis module.
"""

from repro.storage.buffer import BufferPool
from repro.storage.faults import FaultPlan
from repro.storage.interface import Storage, default_store
from repro.storage.pager import ColumnarStore, PageStore
from repro.storage.stats import BufferStats, IOStats, SizeClassStats

__all__ = [
    "BufferPool",
    "BufferStats",
    "ColumnarStore",
    "FaultPlan",
    "IOStats",
    "PageStore",
    "SizeClassStats",
    "Storage",
    "default_store",
]
