"""The guarantee monitor: incremental structural gauges from the trace.

A :class:`GuaranteeMonitor` watches a BV-tree's structure *live* — per
level occupancy histograms, guard counts, pages per level, height, and
split work per operation — without ever walking the tree.  It attaches
as a structural *tap* on the tree's tracer (see
:mod:`repro.obs.tracer`): every mutation the tree performs flows through
its store's ``allocate``/``write``/``free`` choke point and emits a
``page_alloc``/``page_write``/``page_free`` event, and the monitor folds
each into O(1) dictionary updates.  Exact-match reads stay on the
untraced fast path — a monitored tree's gets cost one extra boolean
check, nothing more (the perf probe holds the overhead under 3%).

The incremental state is *exact*, not approximate: :meth:`audit`
cross-checks it against a fresh :func:`repro.core.stats.collect` sweep
and the two must agree field-for-field (property-tested across random
insert/delete/bulk mixes).  Exactness is what lets the health evaluator
(:mod:`repro.obs.health`) score the paper's guarantees from the gauges
alone, with the sweep demoted to an audit oracle.

Layering: ``repro.obs`` sits below ``repro.core``, so this module never
imports core types.  It duck-types page content — an object with an
``index_level`` attribute and ``entries`` is an index node, anything
else with ``len()`` is a data page — and reads pages through the store's
uncounted ``peek`` so monitoring never perturbs the I/O accounting it
observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol

from repro.obs.events import (
    DATA_SPLIT,
    DEMOTION,
    INDEX_SPLIT,
    MERGE,
    OP_BEGIN,
    OP_END,
    PAGE_ALLOC,
    PAGE_FREE,
    PAGE_WRITE,
    PROMOTION,
    REDISTRIBUTE,
    TraceEvent,
)

__all__ = ["AuditReport", "GuaranteeMonitor", "MonitoredTree"]


class MonitoredTree(Protocol):
    """What the monitor needs from a tree (duck-typed, no core import)."""

    count: int
    height: int
    root_page: int

    @property
    def tracer(self) -> Any: ...

    @property
    def store(self) -> Any: ...

    def tree_stats(self) -> Any: ...


@dataclass
class AuditReport:
    """The outcome of cross-checking incremental state against a sweep.

    ``drift`` lists one human-readable line per disagreement; an empty
    list means the monitor's O(1) bookkeeping reproduced the full-sweep
    statistics exactly.
    """

    clean: bool
    drift: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.clean


def _is_index(content: Any) -> bool:
    return getattr(content, "index_level", 0) > 0


class GuaranteeMonitor:
    """Incrementally tracked structural gauges for one BV-tree.

    Attach with :meth:`attach` (which seeds the state with a one-time
    sweep of the current pages and registers the monitor as a tracer
    tap), detach with :meth:`detach`.  While attached, the gauges below
    are live after every operation:

    - ``occupancy(level)`` — histogram ``{population: page count}`` of
      every node at ``level`` (0 = data pages), root included;
    - ``pages_by_level`` / ``guards_by_level`` / ``points`` / ``height``;
    - ``max_splits_per_op`` — the worst split chain any single
      operation has caused (the no-cascade guarantee's witness);
    - ``max_height_seen`` — the high-water mark of the tree height.

    The monitor never calls counted store reads: page content is
    examined through ``store.peek`` only, and only for pages named in
    structural events.
    """

    def __init__(self, tree: MonitoredTree):
        self.tree = tree
        self.attached = False
        #: page id -> (level, population) for every live page.
        self._pages: dict[int, tuple[int, int]] = {}
        #: level -> {population: page count} (exact histogram).
        self._occ: dict[int, dict[int, int]] = {}
        #: page id -> {guard level: count} for index pages with guards.
        self._page_guards: dict[int, dict[int, int]] = {}
        #: guard entry level -> count, aggregated over all index pages.
        self.guards_by_level: dict[int, int] = {}
        #: structural event kind -> count since attach.
        self.event_counts: dict[str, int] = {}
        self.max_height_seen = 0
        self.max_splits_per_op = 0
        #: Splits caused by the currently open operation span(s).
        self._op_splits: dict[int, int] = {}
        #: Open bulk-load spans (exempt from the split-chain gauge).
        self._bulk_ops: set[int] = set()
        self.ops_seen = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def attach(self) -> "GuaranteeMonitor":
        """Seed state from the live pages and start tapping the tracer."""
        if self.attached:
            return self
        self._seed()
        self.tree.tracer.add_tap(self)
        self.attached = True
        return self

    def detach(self) -> None:
        """Stop tapping (the gauges freeze at their current values)."""
        if self.attached:
            self.tree.tracer.remove_tap(self)
            self.attached = False

    def __enter__(self) -> "GuaranteeMonitor":
        return self.attach()

    def __exit__(self, *exc_info: object) -> None:
        self.detach()

    def _seed(self) -> None:
        """One-time sweep of the live pages (uncounted peeks)."""
        self._pages.clear()
        self._occ.clear()
        self._page_guards.clear()
        self.guards_by_level.clear()
        store = self.tree.store
        for page_id in store.page_ids():
            self._track(page_id, store.peek(page_id))
        self.max_height_seen = self.tree.height

    # ------------------------------------------------------------------
    # TraceSink interface (tap)
    # ------------------------------------------------------------------

    def emit(self, event: TraceEvent) -> None:
        """Fold one trace event into the incremental state."""
        kind = event.kind
        if kind == PAGE_WRITE:
            page = event.fields["page"]
            self._untrack(page)
            self._track(page, self.tree.store.peek(page))
        elif kind == PAGE_ALLOC:
            page = event.fields["page"]
            self._track(page, self.tree.store.peek(page))
        elif kind == PAGE_FREE:
            self._untrack(event.fields["page"])
        elif kind in (DATA_SPLIT, INDEX_SPLIT):
            self.event_counts[kind] = self.event_counts.get(kind, 0) + 1
            if event.op and event.op not in self._bulk_ops:
                chain = self._op_splits.get(event.op, 0) + 1
                self._op_splits[event.op] = chain
                if chain > self.max_splits_per_op:
                    self.max_splits_per_op = chain
        elif kind == OP_BEGIN:
            if event.fields.get("name") == "bulk_load":
                # A bulk load is one span performing O(n / capacity)
                # planned splits; the no-cascade guarantee is about
                # *single-record* operations, so its chain is exempt.
                self._bulk_ops.add(event.op)
            else:
                self._op_splits.setdefault(event.op, 0)
        elif kind == OP_END:
            self.ops_seen += 1
            self._op_splits.pop(event.op, None)
            self._bulk_ops.discard(event.op)
            # Height only changes inside update operations; sampling the
            # high-water mark at op end keeps emit() branch-light.
            height = self.tree.height
            if height > self.max_height_seen:
                self.max_height_seen = height
        elif kind in (PROMOTION, DEMOTION, MERGE, REDISTRIBUTE):
            self.event_counts[kind] = self.event_counts.get(kind, 0) + 1

    def close(self) -> None:
        """Tap interface; nothing to release."""

    # ------------------------------------------------------------------
    # Incremental bookkeeping
    # ------------------------------------------------------------------

    def _track(self, page_id: int, content: Any) -> None:
        if content is None:
            # A page allocated without content carries no structure yet;
            # the write that fills it will track it.
            return
        if _is_index(content):
            level = content.index_level
            size = len(content)
            guards: dict[int, int] = {}
            for entry in content.entries:
                if entry.level < level - 1:
                    guards[entry.level] = guards.get(entry.level, 0) + 1
            if guards:
                self._page_guards[page_id] = guards
                agg = self.guards_by_level
                for glevel, n in guards.items():
                    agg[glevel] = agg.get(glevel, 0) + n
        else:
            level = 0
            size = len(content)
        self._pages[page_id] = (level, size)
        bucket = self._occ.setdefault(level, {})
        bucket[size] = bucket.get(size, 0) + 1

    def _untrack(self, page_id: int) -> None:
        tracked = self._pages.pop(page_id, None)
        if tracked is None:
            return
        level, size = tracked
        bucket = self._occ[level]
        remaining = bucket[size] - 1
        if remaining:
            bucket[size] = remaining
        else:
            del bucket[size]
            if not bucket:
                del self._occ[level]
        guards = self._page_guards.pop(page_id, None)
        if guards:
            agg = self.guards_by_level
            for glevel, n in guards.items():
                left = agg[glevel] - n
                if left:
                    agg[glevel] = left
                else:
                    del agg[glevel]

    # ------------------------------------------------------------------
    # Gauges
    # ------------------------------------------------------------------

    def occupancy(self, level: int) -> dict[int, int]:
        """Histogram ``{population: page count}`` at ``level`` (copy)."""
        return dict(self._occ.get(level, {}))

    @property
    def levels(self) -> list[int]:
        """The levels with at least one live page, ascending."""
        return sorted(self._occ)

    @property
    def pages_by_level(self) -> dict[int, int]:
        """Live node counts per level (level 0 = data pages)."""
        return {
            level: sum(bucket.values())
            for level, bucket in sorted(self._occ.items())
        }

    @property
    def height(self) -> int:
        """The tree's current height (live attribute, not derived)."""
        return self.tree.height

    @property
    def points(self) -> int:
        """Live record count (the tree's own O(1) attribute).

        Derivable from the level-0 occupancy histogram too — the audit
        checks that the histogram's weighted sum agrees.
        """
        return self.tree.count

    def min_occupancy(self, level: int, exempt_root: bool = True) -> int | None:
        """Smallest population at ``level``; ``None`` if no page there.

        With ``exempt_root`` (the default, matching the paper and the
        checker) the root page's population is excluded; if the root is
        the only page at its level the answer is ``None``.
        """
        bucket = self._occ.get(level)
        if not bucket:
            return None
        if exempt_root:
            root = self._pages.get(self.tree.root_page)
            if root is not None and root[0] == level:
                root_size = root[1]
                sizes = sorted(bucket)
                for size in sizes:
                    if size != root_size or bucket[size] > 1:
                        return size
                return None
        return min(bucket)

    def pages_below(
        self, level: int, minimum: int, limit: int | None = None
    ) -> tuple[int, ...]:
        """Ids of non-root pages at ``level`` under ``minimum`` entries.

        Sorted ascending; with ``limit``, at most that many (the health
        findings carry a bounded offender list).
        """
        root = self.tree.root_page
        out = sorted(
            page_id
            for page_id, (page_level, size) in self._pages.items()
            if page_level == level and size < minimum and page_id != root
        )
        return tuple(out if limit is None else out[:limit])

    def mean_occupancy(self, level: int) -> float | None:
        """Mean population at ``level``; ``None`` if no page there."""
        bucket = self._occ.get(level)
        if not bucket:
            return None
        pages = sum(bucket.values())
        return sum(size * n for size, n in bucket.items()) / pages

    def publish(self, registry: Any) -> None:
        """Write the gauges into a :class:`~repro.obs.MetricsRegistry`.

        The names form the ``monitor.*`` namespace sampled by the
        :class:`~repro.obs.TimeSeriesSink` (pass this method as its
        ``prepare`` hook so every sample sees current values).
        """
        registry.gauge("monitor.points").set(self.points)
        registry.gauge("monitor.height").set(self.height)
        registry.gauge("monitor.max_splits_per_op").set(self.max_splits_per_op)
        registry.gauge("monitor.guards_total").set(
            sum(self.guards_by_level.values())
        )
        for level, pages in self.pages_by_level.items():
            registry.gauge(f"monitor.pages.l{level}").set(pages)
            min_occ = self.min_occupancy(level)
            if min_occ is not None:
                registry.gauge(f"monitor.occ_min.l{level}").set(min_occ)
            mean_occ = self.mean_occupancy(level)
            if mean_occ is not None:
                registry.gauge(f"monitor.occ_mean.l{level}").set(mean_occ)

    # ------------------------------------------------------------------
    # Audit
    # ------------------------------------------------------------------

    def audit(self) -> AuditReport:
        """Cross-check the incremental state against a full sweep.

        Calls the tree's ``tree_stats()`` (a counted O(n) walk — this is
        the one deliberately expensive method here) and compares every
        quantity the monitor tracks incrementally.  Any disagreement is
        a monitor bug or an unobserved mutation path; the property tests
        assert ``clean`` across random workloads.
        """
        drift: list[str] = []
        stats = self.tree.tree_stats()

        swept: dict[int, dict[int, int]] = {}
        for level, occ in stats.occupancies_by_level.items():
            bucket: dict[int, int] = {}
            for size in occ:
                bucket[size] = bucket.get(size, 0) + 1
            swept[level] = bucket
        for level in sorted(set(swept) | set(self._occ)):
            mine = self._occ.get(level, {})
            theirs = swept.get(level, {})
            if mine != theirs:
                drift.append(
                    f"level {level} occupancy histogram: "
                    f"incremental {dict(sorted(mine.items()))} != "
                    f"sweep {dict(sorted(theirs.items()))}"
                )
        if self.guards_by_level != stats.guards_by_level:
            drift.append(
                f"guards_by_level: incremental {self.guards_by_level} != "
                f"sweep {stats.guards_by_level}"
            )
        histogram_points = sum(
            size * n for size, n in self._occ.get(0, {}).items()
        )
        if histogram_points != stats.n_points:
            drift.append(
                f"points: level-0 histogram sums to {histogram_points} != "
                f"sweep {stats.n_points}"
            )
        if self.height != stats.height:
            drift.append(
                f"height: incremental {self.height} != sweep {stats.height}"
            )
        n_tracked = len(self._pages)
        if n_tracked != stats.pages_total:
            drift.append(
                f"pages: tracking {n_tracked} != sweep {stats.pages_total}"
            )
        return AuditReport(clean=not drift, drift=drift)

    def to_dict(self) -> dict[str, Any]:
        """The gauges as one JSON-ready mapping."""
        return {
            "points": self.points,
            "height": self.height,
            "max_height_seen": self.max_height_seen,
            "max_splits_per_op": self.max_splits_per_op,
            "ops_seen": self.ops_seen,
            "pages_by_level": {
                str(level): n for level, n in self.pages_by_level.items()
            },
            "guards_by_level": {
                str(level): n
                for level, n in sorted(self.guards_by_level.items())
            },
            "occupancy_by_level": {
                str(level): {
                    str(size): n
                    for size, n in sorted(self._occ[level].items())
                }
                for level in sorted(self._occ)
            },
            "event_counts": dict(sorted(self.event_counts.items())),
        }
