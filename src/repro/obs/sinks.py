"""Trace sinks: where emitted events go.

A sink is anything with an ``emit(event)`` method (the
:class:`TraceSink` protocol).  Three implementations cover the standard
uses:

- :class:`NullSink` — discards everything; the default a disabled
  tracer carries, so the hot paths never pay for observability they did
  not ask for.
- :class:`RingSink` — a bounded in-memory ring buffer; the EXPLAIN
  facility and the replay tests capture through it, and long-running
  processes can keep "the last N events" for post-mortems without
  unbounded growth.
- :class:`JsonlSink` — appends one JSON object per event to a file,
  the interchange form external tooling reads (``repro trace`` writes
  it, CI uploads it as an artifact).
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import IO, Any, Protocol, runtime_checkable

from repro.errors import ReproError
from repro.obs.events import TraceEvent

__all__ = ["JsonlSink", "NullSink", "RingSink", "TraceSink", "read_jsonl"]


@runtime_checkable
class TraceSink(Protocol):
    """The surface a tracer writes to."""

    def emit(self, event: TraceEvent) -> None:
        """Accept one event.  Must not raise on well-formed events."""

    def close(self) -> None:
        """Release any resources; further ``emit`` calls are undefined."""


class NullSink:
    """Discards every event (the disabled tracer's sink)."""

    def emit(self, event: TraceEvent) -> None:
        """Drop the event."""

    def close(self) -> None:
        """Nothing to release."""


class RingSink:
    """Keeps the most recent ``capacity`` events in memory.

    ``dropped`` counts events that fell off the old end — a consumer can
    tell a complete capture from a truncated one.
    """

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ReproError(
                f"ring capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self.dropped = 0
        self._buffer: deque[TraceEvent] = deque(maxlen=capacity)

    def emit(self, event: TraceEvent) -> None:
        """Append, evicting the oldest event when full."""
        if len(self._buffer) == self.capacity:
            self.dropped += 1
        self._buffer.append(event)

    def close(self) -> None:
        """Nothing to release (the buffer stays readable)."""

    def events(self) -> list[TraceEvent]:
        """The retained events, oldest first."""
        return list(self._buffer)

    def publish(self, registry: Any, prefix: str = "trace.ring") -> None:
        """Expose the ring's state as registry gauges.

        Overflow used to be invisible unless a caller remembered to read
        ``dropped``; publishing ``<prefix>.dropped`` (plus ``retained``
        and ``capacity``) puts the truncation signal on the same
        dashboards as everything else — a Prometheus scrape or a
        :class:`~repro.obs.metrics.MetricsSnapshotter` line shows at a
        glance whether a capture is complete.  Call it whenever current
        values are wanted (e.g. as a :class:`~repro.obs.TimeSeriesSink`
        ``prepare`` hook); it is O(1).
        """
        registry.gauge(f"{prefix}.dropped").set(self.dropped)
        registry.gauge(f"{prefix}.retained").set(len(self._buffer))
        registry.gauge(f"{prefix}.capacity").set(self.capacity)

    def clear(self) -> None:
        """Forget all retained events (``dropped`` is reset too)."""
        self._buffer.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._buffer)


class JsonlSink:
    """Writes one JSON object per event to a file (JSON Lines).

    Usable as a context manager; :meth:`close` flushes and closes the
    underlying file.  ``count`` is the number of events written.
    """

    def __init__(self, path: Path | str):
        self.path = Path(path)
        self.count = 0
        try:
            self._file: IO[str] | None = self.path.open("w")
        except OSError as exc:
            raise ReproError(f"cannot open trace file {path}: {exc}") from None

    def emit(self, event: TraceEvent) -> None:
        """Serialise and append one event."""
        if self._file is None:
            raise ReproError(f"trace file {self.path} is already closed")
        self._file.write(json.dumps(event.to_dict(), sort_keys=False) + "\n")
        self.count += 1

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_jsonl(path: Path | str) -> list[TraceEvent]:
    """Load the events a :class:`JsonlSink` wrote, in file order."""
    events: list[TraceEvent] = []
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise ReproError(f"cannot read trace file {path}: {exc}") from None
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            events.append(TraceEvent.from_dict(json.loads(line)))
        except json.JSONDecodeError as exc:
            raise ReproError(
                f"{path}:{lineno}: malformed trace record: {exc}"
            ) from None
    return events
