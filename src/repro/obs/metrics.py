"""The metrics registry: counters, gauges and fixed-bucket histograms.

Where the tracer records *which* events happened, the registry records
*distributions*: per-operation nodes visited, guard checks per descent,
split fan-out, buffer hit ratio over time.  The perf harness snapshots a
registry into ``BENCH_<suite>.json`` next to the wall-clock samples, so
the behavioural figures travel with the timings they explain.

Instruments are deliberately minimal and JSON-ready:

- :class:`Counter` — a monotone total;
- :class:`Gauge` — a point-in-time value (last write wins);
- :class:`Histogram` — fixed upper-bound buckets plus count/total, so
  two snapshots can be diffed bucket-by-bucket (no dynamic rebinning).

:class:`MetricsSink` turns the registry into a
:class:`~repro.obs.sinks.TraceSink`: fed a tree's event stream it
derives the standard BV-tree metrics (see its docstring) — metrics are
a *view over the trace*, not a second instrumentation layer, so the two
can never disagree.
"""

from __future__ import annotations

import json
import re
from bisect import bisect_left, bisect_right
from pathlib import Path
from typing import Any, Sequence

from repro.errors import ReproError
from repro.obs.events import (
    DATA_SPLIT,
    DESCENT_STEP,
    GUARD_HIT,
    INDEX_SPLIT,
    OP_END,
    PAGE_READ,
    TraceEvent,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSink",
    "MetricsSnapshotter",
    "NODES_VISITED_BUCKETS",
    "SPLIT_FANOUT_BUCKETS",
    "TimeSeriesSink",
    "lint_prometheus",
    "to_prometheus",
]

#: Default buckets for per-descent page/guard counts: trees in this repo
#: are a handful of levels tall, so single-step resolution up to 8 then
#: coarser tails is the informative shape.
NODES_VISITED_BUCKETS = (1, 2, 3, 4, 5, 6, 8, 12, 16)

#: Default buckets for split fan-out (records or entries moved by one
#: split) — capacities in the benchmarks run 4..64.
SPLIT_FANOUT_BUCKETS = (2, 4, 8, 16, 24, 32, 48, 64)


class Counter:
    """A monotone total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ReproError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        self.value += amount

    def to_dict(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value; the last :meth:`set` wins.

    Empty-state contract: before the first :meth:`set`, ``value`` is
    ``None`` and :meth:`to_dict` carries ``"value": None`` — a gauge
    that was never written is distinguishable from one legitimately at
    0.0 (a hit ratio of zero and an unsampled hit ratio are different
    facts, and the doctor must not conflate them).
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value

    def to_dict(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram: counts of observations per upper bound.

    ``buckets`` are inclusive upper bounds in strictly increasing order;
    an implicit overflow bucket catches everything above the last bound.
    ``count``/``total`` give the observation count and sum, so mean and
    rate-per-op derive from one snapshot.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total")

    def __init__(self, name: str, buckets: Sequence[float]):
        bounds = tuple(buckets)
        if not bounds:
            raise ReproError(f"histogram {name!r} needs at least one bucket")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ReproError(
                f"histogram {name!r} buckets must strictly increase: {bounds}"
            )
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: overflow bucket
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value

    def observe_many(self, values: Sequence[float]) -> None:
        """Fold a whole batch of observations at once.

        Equivalent to calling :meth:`observe` per value but O(n log n +
        buckets) instead of n Python-level calls: one C-level sort, then
        one bisect per bucket bound turns the sorted batch into
        cumulative counts.  This is what makes sample buffering on the
        profiler's exact-match hot path pay off — the deferred fold
        costs a few nanoseconds per sample instead of a whole observe.
        """
        n = len(values)
        if not n:
            return
        ordered = sorted(values)
        counts = self.counts
        prev = 0
        # A value equal to a bound belongs to that bound's bucket
        # (observe uses bisect_left over the bounds), so the cumulative
        # count at each bound is bisect_right over the sorted values.
        for i, bound in enumerate(self.buckets):
            cumulative = bisect_right(ordered, bound)
            counts[i] += cumulative - prev
            prev = cumulative
            if cumulative == n:
                break
        counts[-1] += n - prev  # overflow bucket
        self.count += n
        self.total += sum(ordered)

    @property
    def mean(self) -> float | None:
        """Average observation; ``None`` when empty.

        Empty-state contract: an empty histogram has no mean — returning
        a made-up 0.0 would read as "observed values averaging zero".
        Callers rendering a snapshot print ``None`` as absent.
        """
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> float | None:
        """The upper bound of the bucket holding the ``q``-quantile.

        ``q`` must be in ``[0, 1]``.  Returns ``None`` when the
        histogram is empty, and ``None`` when the quantile falls in the
        overflow bucket (the histogram has no upper bound there — the
        caller knows only "above the last bound").  The answer is the
        bucket's inclusive upper bound, i.e. conservative to one bucket
        width, which is the best a fixed-bucket histogram can say.
        """
        if not 0.0 <= q <= 1.0:
            raise ReproError(
                f"quantile must be in [0, 1], got {q} "
                f"(histogram {self.name!r})"
            )
        if not self.count:
            return None
        rank = max(1, -(-self.count * q // 1))  # ceil(count * q), min 1
        cumulative = 0
        for bound, bucket_count in zip(self.buckets, self.counts):
            cumulative += bucket_count
            if cumulative >= rank:
                return float(bound)
        return None  # the quantile lies in the overflow bucket

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
        }


class MetricsRegistry:
    """A namespace of instruments, snapshot-able to JSON-ready dicts.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for a name returns the same instrument; asking for an existing name
    as a different instrument type is an error (it would silently fork
    the metric).
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Any] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, buckets: Sequence[float] | None = None
    ) -> Histogram:
        """The histogram under ``name`` (created with ``buckets``).

        ``buckets`` is required on first use and ignored afterwards (the
        fixed-bucket contract is what keeps snapshots diffable).
        """
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise ReproError(
                    f"metric {name!r} is a {type(existing).__name__}, "
                    f"not a Histogram"
                )
            return existing
        if buckets is None:
            raise ReproError(
                f"histogram {name!r} does not exist yet; pass its buckets"
            )
        created = Histogram(name, buckets)
        self._instruments[name] = created
        return created

    def names(self) -> list[str]:
        """Registered metric names, sorted."""
        return sorted(self._instruments)

    def get(self, name: str) -> Any:
        """The instrument registered under ``name``, or ``None``."""
        return self._instruments.get(name)

    def snapshot(self) -> dict[str, Any]:
        """Every instrument's current state, keyed by name (JSON-ready)."""
        return {
            name: instrument.to_dict()
            for name, instrument in sorted(self._instruments.items())
        }

    def reset(self) -> None:
        """Drop every instrument (names become free again)."""
        self._instruments.clear()

    def _get_or_create(self, name: str, cls: type, factory: Any) -> Any:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ReproError(
                    f"metric {name!r} is a {type(existing).__name__}, "
                    f"not a {cls.__name__}"
                )
            return existing
        created = factory()
        self._instruments[name] = created
        return created


class MetricsSink:
    """A trace sink that aggregates the event stream into a registry.

    Derived metrics (all prefixed to keep the namespace navigable):

    - ``events.<kind>`` counters — one per observed event kind;
    - ``descent.nodes_visited`` histogram — ``descent_step`` events per
      operation span (observed when the span closes);
    - ``descent.guard_checks`` histogram — ``guard_hit`` events per span;
    - ``split.fanout`` histogram — the ``moved`` field of every
      ``data_split``/``index_split`` event;
    - ``buffer.hit_ratio`` gauge — cumulative cache hits over logical
      reads, updated per ``page_read``;
    - ``buffer.hit_ratio_series`` gauge-like samples — the ratio sampled
      every ``sample_every`` logical reads (bounded list), the
      "hit ratio over time" curve.
    """

    #: Retain at most this many hit-ratio samples (oldest dropped).
    MAX_SAMPLES = 512

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        sample_every: int = 64,
    ):
        if sample_every <= 0:
            raise ReproError(
                f"sample_every must be positive, got {sample_every}"
            )
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sample_every = sample_every
        self.hit_ratio_series: list[tuple[int, float]] = []
        self._steps_by_op: dict[int, int] = {}
        self._guards_by_op: dict[int, int] = {}
        self._hits = 0
        self._reads = 0

    def emit(self, event: TraceEvent) -> None:
        """Fold one event into the registry."""
        registry = self.registry
        registry.counter(f"events.{event.kind}").inc()
        kind = event.kind
        if kind == DESCENT_STEP:
            self._steps_by_op[event.op] = self._steps_by_op.get(event.op, 0) + 1
        elif kind == GUARD_HIT:
            self._guards_by_op[event.op] = (
                self._guards_by_op.get(event.op, 0) + 1
            )
        elif kind == OP_END:
            steps = self._steps_by_op.pop(event.op, None)
            if steps is not None:
                registry.histogram(
                    "descent.nodes_visited", NODES_VISITED_BUCKETS
                ).observe(steps)
            guards = self._guards_by_op.pop(event.op, None)
            if guards is not None:
                registry.histogram(
                    "descent.guard_checks", NODES_VISITED_BUCKETS
                ).observe(guards)
        elif kind in (DATA_SPLIT, INDEX_SPLIT):
            moved = event.fields.get("moved")
            if moved is not None:
                registry.histogram(
                    "split.fanout", SPLIT_FANOUT_BUCKETS
                ).observe(moved)
        elif kind == PAGE_READ:
            self._reads += 1
            if event.fields.get("physical") is False:
                self._hits += 1
            ratio = self._hits / self._reads
            registry.gauge("buffer.hit_ratio").set(ratio)
            if self._reads % self.sample_every == 0:
                series = self.hit_ratio_series
                series.append((self._reads, ratio))
                if len(series) > self.MAX_SAMPLES:
                    del series[0]

    def close(self) -> None:
        """Nothing to release (the registry stays readable)."""

    def snapshot(self) -> dict[str, Any]:
        """The registry snapshot plus the hit-ratio time series."""
        out = self.registry.snapshot()
        if self.hit_ratio_series:
            out["buffer.hit_ratio_series"] = {
                "type": "series",
                "samples": [
                    {"reads": reads, "ratio": ratio}
                    for reads, ratio in self.hit_ratio_series
                ],
            }
        return out


class TimeSeriesSink:
    """Samples a :class:`MetricsRegistry` every N operations, columnar.

    The record is *columnar* — one list per metric plus one shared list
    of operation counts — rather than a dict per sample, so a whole
    100k-operation workload's health trajectory serialises to a compact
    JSON artifact (``len(metrics) + 1`` lists, not 100k/N dicts).

    Sampling is driven either by feeding the sink a trace stream (it
    counts ``op_end`` events; attach it as a tracer tap) or by calling
    :meth:`tick` per operation from a driver loop.  Each instrument
    contributes scalar columns: a counter or gauge its ``value``, a
    histogram its ``count`` and ``mean`` (as ``<name>.count`` /
    ``<name>.mean``).  A metric that first appears mid-run is backfilled
    with ``None`` for the samples it missed, and a gauge never set reads
    ``None`` — columns always share the length of ``ops``.

    ``prepare``, if given, is called with the registry immediately
    before each sample — the hook the guarantee monitor uses to publish
    its incremental gauges so the sampled registry is current.

    When the retained sample count would exceed ``max_samples`` the sink
    *compacts*: it drops every other sample and doubles the sampling
    stride, preserving the full time range at half resolution — a
    bounded artifact regardless of workload length.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        every: int = 100,
        max_samples: int = 512,
        prepare: Any = None,
    ):
        if every <= 0:
            raise ReproError(f"every must be positive, got {every}")
        if max_samples < 2:
            raise ReproError(
                f"max_samples must be at least 2, got {max_samples}"
            )
        self.registry = registry
        self.every = every
        self.max_samples = max_samples
        self.prepare = prepare
        #: Cumulative operation count at each sample.
        self.ops: list[int] = []
        #: One equal-length column per scalar metric.
        self.columns: dict[str, list[float | None]] = {}
        self._op_count = 0
        self._since_sample = 0

    def emit(self, event: TraceEvent) -> None:
        """Count operation ends from a trace stream (tap usage)."""
        if event.kind == OP_END:
            self.tick()

    def close(self) -> None:
        """Nothing to release (the samples stay readable)."""

    def tick(self) -> None:
        """Advance one operation; sample when the stride elapses."""
        self._op_count += 1
        self._since_sample += 1
        if self._since_sample >= self.every:
            self._since_sample = 0
            self.sample()

    def sample(self) -> None:
        """Take one sample of the registry right now."""
        if self.prepare is not None:
            self.prepare(self.registry)
        scalars = self._scalars()
        n_prior = len(self.ops)
        self.ops.append(self._op_count)
        for name, value in scalars.items():
            column = self.columns.get(name)
            if column is None:
                # Late-appearing metric: backfill the samples it missed.
                column = [None] * n_prior
                self.columns[name] = column
            column.append(value)
        for name, column in self.columns.items():
            if len(column) <= n_prior:
                column.append(None)
        if len(self.ops) > self.max_samples:
            self._compact()

    def to_dict(self) -> dict[str, Any]:
        """The JSON-ready columnar record."""
        return {
            "type": "timeseries",
            "every": self.every,
            "ops": list(self.ops),
            "metrics": {
                name: list(column)
                for name, column in sorted(self.columns.items())
            },
        }

    def _scalars(self) -> dict[str, float | None]:
        out: dict[str, float | None] = {}
        for name in self.registry.names():
            instrument = self.registry.get(name)
            if isinstance(instrument, Histogram):
                out[f"{name}.count"] = instrument.count
                out[f"{name}.mean"] = instrument.mean
            else:
                out[name] = instrument.value
        return out

    def _compact(self) -> None:
        # Keep every second sample, newest included, and double the
        # stride so future samples land at the new resolution.
        keep = slice((len(self.ops) - 1) % 2, None, 2)
        self.ops = self.ops[keep]
        for name, column in self.columns.items():
            self.columns[name] = column[keep]
        self.every *= 2


class MetricsSnapshotter:
    """Periodically appends full registry snapshots to a JSONL file.

    Where :class:`TimeSeriesSink` keeps a bounded *scalar* trajectory in
    memory, the snapshotter streams the complete registry state — every
    counter, gauge and histogram, buckets included — as one JSON line
    every ``every`` operations, the durable form a dashboard or a later
    analysis replays.  Drive it either as a tracer tap (it counts
    ``op_end`` events) or by calling :meth:`tick` per operation; the
    optional ``prepare`` hook runs against the registry right before
    each snapshot (pass ``monitor.publish`` so derived gauges are
    current, exactly as with the time-series sink).

    Each line is ``{"ops": N, "metrics": {...registry snapshot...}}``.
    ``count`` is the number of snapshots written.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        path: Path | str,
        every: int = 1000,
        prepare: Any = None,
    ):
        if every <= 0:
            raise ReproError(f"every must be positive, got {every}")
        self.registry = registry
        self.path = Path(path)
        self.every = every
        self.prepare = prepare
        self.count = 0
        self._op_count = 0
        try:
            self._file: Any = self.path.open("w")
        except OSError as exc:
            raise ReproError(
                f"cannot open metrics snapshot file {path}: {exc}"
            ) from None

    def emit(self, event: TraceEvent) -> None:
        """Count operation ends from a trace stream (tap usage)."""
        if event.kind == OP_END:
            self.tick()

    def tick(self) -> None:
        """Advance one operation; snapshot when the stride elapses."""
        self._op_count += 1
        if self._op_count % self.every == 0:
            self.snapshot()

    def snapshot(self) -> None:
        """Write one snapshot line right now."""
        if self._file is None:
            raise ReproError(
                f"metrics snapshot file {self.path} is already closed"
            )
        if self.prepare is not None:
            self.prepare(self.registry)
        record = {"ops": self._op_count, "metrics": self.registry.snapshot()}
        self._file.write(json.dumps(record, sort_keys=False) + "\n")
        self._file.flush()
        self.count += 1

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "MetricsSnapshotter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# Prometheus text-format exposition
# ----------------------------------------------------------------------

_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str, namespace: str) -> str:
    """Sanitise a registry name into a legal Prometheus metric name."""
    flat = _PROM_INVALID.sub("_", name)
    if namespace:
        flat = f"{namespace}_{flat}"
    if not flat or not (flat[0].isalpha() or flat[0] in "_:"):
        flat = f"_{flat}"
    return flat


def _prom_value(value: float) -> str:
    if isinstance(value, bool):  # bool is an int; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def to_prometheus(
    registry: MetricsRegistry, namespace: str = "repro"
) -> str:
    """Render the whole registry in the Prometheus text format.

    Counters expose as ``<ns>_<name>_total``, gauges as ``<ns>_<name>``
    (a gauge never set is *omitted* — its ``None`` state has no legal
    sample), histograms as the standard cumulative ``_bucket{le=...}``
    series plus ``_sum``/``_count`` with an explicit ``+Inf`` bucket.
    Dots in registry names become underscores; output is sorted by
    registry name so two snapshots diff cleanly.  The result passes
    :func:`lint_prometheus`, which CI asserts on the live exposition.
    """
    lines: list[str] = []
    for name in registry.names():
        instrument = registry.get(name)
        metric = _prom_name(name, namespace)
        if isinstance(instrument, Counter):
            lines.append(f"# HELP {metric}_total {name} (counter)")
            lines.append(f"# TYPE {metric}_total counter")
            lines.append(
                f"{metric}_total {_prom_value(instrument.value)}"
            )
        elif isinstance(instrument, Gauge):
            if instrument.value is None:
                continue
            lines.append(f"# HELP {metric} {name} (gauge)")
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_prom_value(instrument.value)}")
        elif isinstance(instrument, Histogram):
            lines.append(f"# HELP {metric} {name} (histogram)")
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for bound, bucket_count in zip(
                instrument.buckets, instrument.counts
            ):
                cumulative += bucket_count
                lines.append(
                    f'{metric}_bucket{{le="{_prom_value(float(bound))}"}}'
                    f" {cumulative}"
                )
            lines.append(
                f'{metric}_bucket{{le="+Inf"}} {instrument.count}'
            )
            lines.append(f"{metric}_sum {_prom_value(instrument.total)}")
            lines.append(f"{metric}_count {instrument.count}")
    return "\n".join(lines) + "\n" if lines else ""


_PROM_METRIC_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_PROM_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"  # metric name
    r"(\{[^{}]*\})?"  # optional label set
    r" (-?[0-9.eE+-]+|NaN|\+Inf|-Inf)$"  # value
)


def lint_prometheus(text: str) -> list[str]:
    """Validate Prometheus text-format exposition; return problem lines.

    An in-tree promtext lint (no external dependency): checks that every
    non-comment line parses as ``name[{labels}] value``, that metric
    names are legal, that each ``# TYPE`` appears once and before its
    metric's samples, that histograms carry a ``+Inf`` bucket with
    cumulative non-decreasing bucket counts matching ``_count``, and
    that no sample (name + labels) repeats.  An empty list means the
    exposition is clean; CI fails the obs-smoke job on any finding.
    """
    problems: list[str] = []
    typed: dict[str, str] = {}
    sampled_names: set[str] = set()
    seen_samples: set[str] = set()
    histograms: dict[str, dict[str, Any]] = {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            problems.append(f"line {lineno}: blank line in exposition")
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                problems.append(
                    f"line {lineno}: malformed comment {line!r} "
                    "(expected '# HELP name text' or '# TYPE name type')"
                )
                continue
            if parts[1] == "TYPE":
                name = parts[2]
                mtype = parts[3].strip() if len(parts) > 3 else ""
                if mtype not in (
                    "counter",
                    "gauge",
                    "histogram",
                    "summary",
                    "untyped",
                ):
                    problems.append(
                        f"line {lineno}: unknown metric type {mtype!r} "
                        f"for {name}"
                    )
                if name in typed:
                    problems.append(
                        f"line {lineno}: duplicate TYPE for {name}"
                    )
                if name in sampled_names:
                    problems.append(
                        f"line {lineno}: TYPE for {name} appears after "
                        "its samples"
                    )
                typed[name] = mtype
            continue
        match = _PROM_SAMPLE_RE.match(line)
        if match is None:
            problems.append(
                f"line {lineno}: unparseable sample line {line!r}"
            )
            continue
        name, labels, value_text = match.groups()
        if not _PROM_METRIC_RE.match(name):
            problems.append(
                f"line {lineno}: illegal metric name {name!r}"
            )
        key = f"{name}{labels or ''}"
        if key in seen_samples:
            problems.append(f"line {lineno}: duplicate sample {key}")
        seen_samples.add(key)
        sampled_names.add(name)
        try:
            value = float(value_text.replace("+Inf", "inf"))
        except ValueError:
            problems.append(
                f"line {lineno}: unparseable value {value_text!r}"
            )
            continue
        # Histogram bookkeeping: group by the base metric name.
        for suffix, field_name in (
            ("_bucket", "buckets"),
            ("_sum", "sum"),
            ("_count", "count"),
        ):
            if not name.endswith(suffix):
                continue
            base = name[: -len(suffix)]
            if typed.get(base) != "histogram":
                continue
            state = histograms.setdefault(
                base, {"buckets": [], "sum": None, "count": None}
            )
            if field_name == "buckets":
                le = None
                if labels:
                    le_match = re.search(r'le="([^"]*)"', labels)
                    if le_match:
                        le = le_match.group(1)
                if le is None:
                    problems.append(
                        f"line {lineno}: histogram bucket without an "
                        f"le label: {line!r}"
                    )
                else:
                    state["buckets"].append((lineno, le, value))
            else:
                state[field_name] = (lineno, value)
            break

    for base, state in sorted(histograms.items()):
        buckets = state["buckets"]
        if not buckets:
            continue
        les = [le for _, le, _ in buckets]
        if "+Inf" not in les:
            problems.append(f"histogram {base}: missing +Inf bucket")
        values = [value for _, _, value in buckets]
        if any(b > a for b, a in zip(values, values[1:])):
            problems.append(
                f"histogram {base}: bucket counts are not cumulative"
            )
        if state["count"] is not None and "+Inf" in les:
            inf_value = values[les.index("+Inf")]
            if inf_value != state["count"][1]:
                problems.append(
                    f"histogram {base}: +Inf bucket {inf_value} != "
                    f"_count {state['count'][1]}"
                )
        if state["sum"] is None:
            problems.append(f"histogram {base}: missing _sum sample")
        if state["count"] is None:
            problems.append(f"histogram {base}: missing _count sample")
    return problems
