"""The metrics registry: counters, gauges and fixed-bucket histograms.

Where the tracer records *which* events happened, the registry records
*distributions*: per-operation nodes visited, guard checks per descent,
split fan-out, buffer hit ratio over time.  The perf harness snapshots a
registry into ``BENCH_<suite>.json`` next to the wall-clock samples, so
the behavioural figures travel with the timings they explain.

Instruments are deliberately minimal and JSON-ready:

- :class:`Counter` — a monotone total;
- :class:`Gauge` — a point-in-time value (last write wins);
- :class:`Histogram` — fixed upper-bound buckets plus count/total, so
  two snapshots can be diffed bucket-by-bucket (no dynamic rebinning).

:class:`MetricsSink` turns the registry into a
:class:`~repro.obs.sinks.TraceSink`: fed a tree's event stream it
derives the standard BV-tree metrics (see its docstring) — metrics are
a *view over the trace*, not a second instrumentation layer, so the two
can never disagree.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Sequence

from repro.errors import ReproError
from repro.obs.events import (
    DATA_SPLIT,
    DESCENT_STEP,
    GUARD_HIT,
    INDEX_SPLIT,
    OP_END,
    PAGE_READ,
    TraceEvent,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSink",
    "NODES_VISITED_BUCKETS",
    "SPLIT_FANOUT_BUCKETS",
]

#: Default buckets for per-descent page/guard counts: trees in this repo
#: are a handful of levels tall, so single-step resolution up to 8 then
#: coarser tails is the informative shape.
NODES_VISITED_BUCKETS = (1, 2, 3, 4, 5, 6, 8, 12, 16)

#: Default buckets for split fan-out (records or entries moved by one
#: split) — capacities in the benchmarks run 4..64.
SPLIT_FANOUT_BUCKETS = (2, 4, 8, 16, 24, 32, 48, 64)


class Counter:
    """A monotone total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ReproError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        self.value += amount

    def to_dict(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value; the last :meth:`set` wins."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value

    def to_dict(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram: counts of observations per upper bound.

    ``buckets`` are inclusive upper bounds in strictly increasing order;
    an implicit overflow bucket catches everything above the last bound.
    ``count``/``total`` give the observation count and sum, so mean and
    rate-per-op derive from one snapshot.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total")

    def __init__(self, name: str, buckets: Sequence[float]):
        bounds = tuple(buckets)
        if not bounds:
            raise ReproError(f"histogram {name!r} needs at least one bucket")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ReproError(
                f"histogram {name!r} buckets must strictly increase: {bounds}"
            )
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: overflow bucket
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        """Average observation (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
        }


class MetricsRegistry:
    """A namespace of instruments, snapshot-able to JSON-ready dicts.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for a name returns the same instrument; asking for an existing name
    as a different instrument type is an error (it would silently fork
    the metric).
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Any] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, buckets: Sequence[float] | None = None
    ) -> Histogram:
        """The histogram under ``name`` (created with ``buckets``).

        ``buckets`` is required on first use and ignored afterwards (the
        fixed-bucket contract is what keeps snapshots diffable).
        """
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise ReproError(
                    f"metric {name!r} is a {type(existing).__name__}, "
                    f"not a Histogram"
                )
            return existing
        if buckets is None:
            raise ReproError(
                f"histogram {name!r} does not exist yet; pass its buckets"
            )
        created = Histogram(name, buckets)
        self._instruments[name] = created
        return created

    def names(self) -> list[str]:
        """Registered metric names, sorted."""
        return sorted(self._instruments)

    def snapshot(self) -> dict[str, Any]:
        """Every instrument's current state, keyed by name (JSON-ready)."""
        return {
            name: instrument.to_dict()
            for name, instrument in sorted(self._instruments.items())
        }

    def reset(self) -> None:
        """Drop every instrument (names become free again)."""
        self._instruments.clear()

    def _get_or_create(self, name: str, cls: type, factory: Any) -> Any:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ReproError(
                    f"metric {name!r} is a {type(existing).__name__}, "
                    f"not a {cls.__name__}"
                )
            return existing
        created = factory()
        self._instruments[name] = created
        return created


class MetricsSink:
    """A trace sink that aggregates the event stream into a registry.

    Derived metrics (all prefixed to keep the namespace navigable):

    - ``events.<kind>`` counters — one per observed event kind;
    - ``descent.nodes_visited`` histogram — ``descent_step`` events per
      operation span (observed when the span closes);
    - ``descent.guard_checks`` histogram — ``guard_hit`` events per span;
    - ``split.fanout`` histogram — the ``moved`` field of every
      ``data_split``/``index_split`` event;
    - ``buffer.hit_ratio`` gauge — cumulative cache hits over logical
      reads, updated per ``page_read``;
    - ``buffer.hit_ratio_series`` gauge-like samples — the ratio sampled
      every ``sample_every`` logical reads (bounded list), the
      "hit ratio over time" curve.
    """

    #: Retain at most this many hit-ratio samples (oldest dropped).
    MAX_SAMPLES = 512

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        sample_every: int = 64,
    ):
        if sample_every <= 0:
            raise ReproError(
                f"sample_every must be positive, got {sample_every}"
            )
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sample_every = sample_every
        self.hit_ratio_series: list[tuple[int, float]] = []
        self._steps_by_op: dict[int, int] = {}
        self._guards_by_op: dict[int, int] = {}
        self._hits = 0
        self._reads = 0

    def emit(self, event: TraceEvent) -> None:
        """Fold one event into the registry."""
        registry = self.registry
        registry.counter(f"events.{event.kind}").inc()
        kind = event.kind
        if kind == DESCENT_STEP:
            self._steps_by_op[event.op] = self._steps_by_op.get(event.op, 0) + 1
        elif kind == GUARD_HIT:
            self._guards_by_op[event.op] = (
                self._guards_by_op.get(event.op, 0) + 1
            )
        elif kind == OP_END:
            steps = self._steps_by_op.pop(event.op, None)
            if steps is not None:
                registry.histogram(
                    "descent.nodes_visited", NODES_VISITED_BUCKETS
                ).observe(steps)
            guards = self._guards_by_op.pop(event.op, None)
            if guards is not None:
                registry.histogram(
                    "descent.guard_checks", NODES_VISITED_BUCKETS
                ).observe(guards)
        elif kind in (DATA_SPLIT, INDEX_SPLIT):
            moved = event.fields.get("moved")
            if moved is not None:
                registry.histogram(
                    "split.fanout", SPLIT_FANOUT_BUCKETS
                ).observe(moved)
        elif kind == PAGE_READ:
            self._reads += 1
            if event.fields.get("physical") is False:
                self._hits += 1
            ratio = self._hits / self._reads
            registry.gauge("buffer.hit_ratio").set(ratio)
            if self._reads % self.sample_every == 0:
                series = self.hit_ratio_series
                series.append((self._reads, ratio))
                if len(series) > self.MAX_SAMPLES:
                    del series[0]

    def close(self) -> None:
        """Nothing to release (the registry stays readable)."""

    def snapshot(self) -> dict[str, Any]:
        """The registry snapshot plus the hit-ratio time series."""
        out = self.registry.snapshot()
        if self.hit_ratio_series:
            out["buffer.hit_ratio_series"] = {
                "type": "series",
                "samples": [
                    {"reads": reads, "ratio": ratio}
                    for reads, ratio in self.hit_ratio_series
                ],
            }
        return out
