"""Per-operation cost profiles: latency, I/O deltas, cascades, slow ops.

Where the :class:`~repro.obs.monitor.GuaranteeMonitor` watches a tree's
*structure*, an :class:`OpProfiler` watches its *cost*: for every
operation kind (``get``, ``range``, ``knn``, ``insert``, ``delete``,
``bulk_load``, ...) it aggregates a latency histogram, a pages-touched
histogram, split-cascade depth and total page I/O — the per-endpoint
figures the dynamic-indexability analysis (and the future serving
layer) argue about.  Everything lives in a
:class:`~repro.obs.metrics.MetricsRegistry` under the ``profile.*``
namespace, so one :func:`~repro.obs.metrics.to_prometheus` call (or a
:class:`~repro.obs.metrics.MetricsSnapshotter`) exports it verbatim.

Two collection paths, by design
-------------------------------
*Update* operations (``insert``/``delete``/``bulk_load``) already open
tracer spans under the ``structural`` guard, so the profiler attaches as
an ordinary tracer *tap* declaring ``kinds = {op_begin, op_end,
data_split, index_split}`` and folds each event in O(1) — exactly the
:class:`GuaranteeMonitor` discipline.

*Read* operations never open spans while the tracer is disabled: a span
plus :class:`~repro.obs.events.TraceEvent` construction costs more than
an entire exact-match descent's profiling budget (the perf probe holds
profiled gets within 5% of bare ones).  Instead the profiler registers
itself on ``tracer.profiler`` and the read paths take the before-op
marks inline (one ``perf_counter`` read, one logical-read count off
:attr:`OpProfiler.rstats`) and close with a single
:meth:`OpProfiler.end_get` (etc.) call — two ``perf_counter`` reads, one
I/O-counter delta and one raw-sample append per op (exact-match samples
fold into the histograms in :data:`GET_BATCH` batches), no event
machinery.  The two
paths are mutually exclusive per operation (a read either runs under a
full sink, where the span tap sees it, or on the direct path), so
nothing is double-counted.

Slow-op log
-----------
A :class:`SlowOpLog` captures any operation exceeding a latency or a
pages-touched threshold as a structured JSONL record (kind, latency,
pages, cascade, layout, query detail).  For query kinds the profiler
attaches a full ``tree.explain()`` report to the record — the query is
re-run under EXPLAIN's capture tracer, which carries no profiler, so the
re-run never recurses into the log.

Layering: like the rest of ``repro.obs`` this module never imports
``repro.core`` — the tree is duck-typed (``tracer``, ``store``,
``layout``, ``explain``) exactly as :class:`MonitoredTree` is.
"""

from __future__ import annotations

import json
from pathlib import Path
from time import perf_counter
from typing import Any, Sequence

from repro.errors import ReproError
from repro.obs.events import (
    DATA_SPLIT,
    INDEX_SPLIT,
    OP_BEGIN,
    OP_END,
    TraceEvent,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "CASCADE_BUCKETS",
    "GET_BATCH",
    "KindProfile",
    "LATENCY_BUCKETS_US",
    "OpProfiler",
    "PAGES_BUCKETS",
    "QUERY_KINDS",
    "SlowOpLog",
    "UPDATE_KINDS",
]

#: Exact-match samples buffered on the hot path between histogram folds
#: (see :meth:`OpProfiler.end_get`).
GET_BATCH = 512

#: Latency buckets in microseconds: fine resolution around the
#: single-descent regime (tens of us in-memory), coarse tails for range
#: scans and bulk loads.
LATENCY_BUCKETS_US = (
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1_000.0,
    2_500.0,
    5_000.0,
    10_000.0,
    25_000.0,
    50_000.0,
    100_000.0,
    250_000.0,
    1_000_000.0,
)

#: Pages-touched buckets: a descent reads ``height + 1`` pages, range
#: and k-NN traversals tens, bulk loads hundreds.
PAGES_BUCKETS = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 128, 256, 512)

#: Split-cascade buckets (0 = the common no-split case; the paper's
#: guarantee keeps single-record chains short).
CASCADE_BUCKETS = (0, 1, 2, 3, 4, 6, 8, 12)

#: Kinds whose slow-op records get an automatic EXPLAIN attachment.
QUERY_KINDS = frozenset({"get", "range", "knn"})

#: Kinds that mutate the tree; their profiles track split cascades.
UPDATE_KINDS = frozenset({"insert", "delete", "bulk_load"})


class KindProfile:
    """The aggregated cost profile of one operation kind.

    All instruments are owned by the profiler's registry (named
    ``profile.<kind>.*``), so a registry snapshot or a Prometheus
    exposition always reflects the live profile — ``record`` updates
    them in place, nothing is copied at publish time.  The latency
    histogram's ``count`` *is* the successful-operation count (errors
    are tallied separately and never pollute the distributions).
    """

    __slots__ = (
        "kind",
        "latency_us",
        "pages",
        "cascade",
        "errors",
        "pages_written",
        "max_latency_us",
        "max_cascade",
    )

    def __init__(self, kind: str, registry: MetricsRegistry):
        prefix = f"profile.{kind}"
        self.kind = kind
        self.latency_us: Histogram = registry.histogram(
            f"{prefix}.latency_us", LATENCY_BUCKETS_US
        )
        self.pages: Histogram = registry.histogram(
            f"{prefix}.pages", PAGES_BUCKETS
        )
        self.cascade: Histogram | None = (
            registry.histogram(f"{prefix}.cascade", CASCADE_BUCKETS)
            if kind in UPDATE_KINDS
            else None
        )
        self.errors: Counter = registry.counter(f"{prefix}.errors")
        # No pages_read counter: the pages histogram's sum *is* the
        # total logical reads (``_sum`` in the Prometheus exposition),
        # and the read hot path cannot afford a redundant counter.
        self.pages_written: Counter = registry.counter(
            f"{prefix}.pages_written"
        )
        self.max_latency_us: Gauge = registry.gauge(
            f"{prefix}.max_latency_us"
        )
        self.max_cascade = 0

    @property
    def ops(self) -> int:
        """Successful operations recorded (the latency histogram count)."""
        return self.latency_us.count

    def record(
        self, latency_us: float, reads: int, writes: int, cascade: int
    ) -> None:
        """Fold one completed operation into the profile (O(1))."""
        self.latency_us.observe(latency_us)
        self.pages.observe(reads)
        if self.cascade is not None:
            self.cascade.observe(cascade)
            if cascade > self.max_cascade:
                self.max_cascade = cascade
        if writes:
            self.pages_written.inc(writes)
        worst = self.max_latency_us.value
        if worst is None or latency_us > worst:
            self.max_latency_us.set(latency_us)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready summary (quantiles are bucket upper bounds)."""
        out: dict[str, Any] = {
            "ops": self.ops,
            "errors": self.errors.value,
            "latency_us": {
                "mean": self.latency_us.mean,
                "p50": self.latency_us.quantile(0.5),
                "p99": self.latency_us.quantile(0.99),
                "max": self.max_latency_us.value,
            },
            "pages": {
                "mean": self.pages.mean,
                "p99": self.pages.quantile(0.99),
                "total": self.pages.total,
            },
            "pages_written": self.pages_written.value,
        }
        if self.cascade is not None:
            out["cascade"] = {
                "mean": self.cascade.mean,
                "max": self.max_cascade,
            }
        return out


class SlowOpLog:
    """Structured capture of operations that crossed a cost threshold.

    An operation is *slow* when its latency reaches ``latency_us`` or
    its pages-touched count reaches ``pages`` (whichever thresholds are
    set; at least one is required — a log that can never trigger is a
    configuration error, not an empty log).  Records are JSON-ready
    dicts; the newest ``keep`` stay readable in :attr:`records`, and
    with ``path`` every record is also appended to a JSONL file as it
    happens (one ``json.dumps`` line, flushed — slow ops are rare by
    definition, so the write cost never sits on the common path).
    """

    def __init__(
        self,
        path: Any = None,
        *,
        latency_us: float | None = None,
        pages: int | None = None,
        keep: int = 64,
        explain_queries: bool = True,
    ):
        if latency_us is None and pages is None:
            raise ReproError(
                "SlowOpLog needs at least one threshold "
                "(latency_us=... or pages=...)"
            )
        if keep <= 0:
            raise ReproError(f"keep must be positive, got {keep}")
        self.latency_us = latency_us
        self.pages = pages
        self.keep = keep
        self.explain_queries = explain_queries
        #: The newest ``keep`` records, oldest first.
        self.records: list[dict[str, Any]] = []
        #: Total slow operations seen (including ones rotated out).
        self.count = 0
        self.path: Path | None = None
        self._file: Any = None
        if path is not None:
            self.path = Path(path)
            try:
                self._file = self.path.open("w")
            except OSError as exc:
                raise ReproError(
                    f"cannot open slow-op log {path}: {exc}"
                ) from None

    def matches(self, latency_us: float, pages: int) -> bool:
        """Whether a (latency, pages) pair crosses a threshold."""
        if self.latency_us is not None and latency_us >= self.latency_us:
            return True
        return self.pages is not None and pages >= self.pages

    def record(self, entry: dict[str, Any]) -> None:
        """Append one slow-op record (rotating the in-memory window)."""
        self.count += 1
        self.records.append(entry)
        if len(self.records) > self.keep:
            del self.records[0]
        if self._file is not None:
            self._file.write(json.dumps(entry, sort_keys=False) + "\n")
            self._file.flush()

    @property
    def last(self) -> dict[str, Any] | None:
        """The most recent slow-op record, if any."""
        return self.records[-1] if self.records else None

    def close(self) -> None:
        """Close the JSONL file, if one is open (idempotent)."""
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "SlowOpLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "latency_us": self.latency_us,
            "pages": self.pages,
            "records": list(self.records),
        }


class OpProfiler:
    """Live per-kind cost profiles for one BV-tree.

    Attach with :meth:`attach` (registers the profiler both as a
    structural tracer tap and as the tracer's direct-call ``profiler``
    hook), detach with :meth:`detach`.  While attached:

    - every update operation is profiled through its tracer span
      (latency from ``op_begin``/``op_end``, cascade depth from the
      split events in between, I/O from the store's counter deltas);
    - every read operation is profiled through the direct
      ``begin``/``end_*`` calls the tree's read paths make when they
      see ``tracer.profiler`` set — unless a full sink is enabled, in
      which case reads open spans too and the tap path covers them.

    The instruments live in :attr:`registry` under ``profile.<kind>.*``
    and update in place; failed operations only bump
    ``profile.<kind>.errors`` so the histograms hold successful-op
    distributions exactly (the consistency property tests compare their
    counts against :class:`~repro.core.stats.OpCounters` deltas).
    """

    #: Tap declaration: in tap-only mode the tracer skips constructing
    #: every other event kind entirely (see repro.obs.tracer).
    kinds = frozenset({OP_BEGIN, OP_END, DATA_SPLIT, INDEX_SPLIT})

    def __init__(
        self,
        tree: Any,
        registry: MetricsRegistry | None = None,
        slow_log: SlowOpLog | None = None,
    ):
        self.tree = tree
        self.registry = registry if registry is not None else MetricsRegistry()
        self.slow_log = slow_log
        self.layout: str = getattr(tree, "layout", "object")
        #: kind -> KindProfile (created on each kind's first operation).
        self.profiles: dict[str, KindProfile] = {}
        self.attached = False
        #: open span id -> (kind, t0, reads0, writes0, detail fields).
        self._open: dict[int, tuple[str, float, int, int, dict[str, Any]]] = {}
        #: open span id -> split chain length so far.
        self._splits: dict[int, int] = {}
        #: Read-side I/O stats and buffered-ness, resolved at attach
        #: time.  Public on purpose: the tree's read paths inline the
        #: before-op marks (one clock read, one logical-read count)
        #: against these instead of paying a method call — see
        #: :meth:`end_get` for the budget arithmetic.
        self.rstats: Any = None
        self.buffered = False
        self._wstats: Any = None
        self._explaining = False
        self._get_profile: KindProfile | None = None
        #: Raw ``(latency_us, pages)`` samples from the exact-match hot
        #: path, folded into the get-kind histograms in batches.  A
        #: direct per-op histogram update (two bisects, six attribute
        #: read-modify-writes) costs more than the entire 1.05x overhead
        #: budget; a list append is a third of it, and the amortized
        #: fold costs the same total work off the hot path.  Every read
        #: surface (:meth:`flush`, :meth:`profile`, :meth:`to_dict`,
        #: :meth:`detach`) folds pending samples first, so consumers
        #: never see the buffer — at most :data:`GET_BATCH` gets are in
        #: flight between folds while attached.
        self._get_raw: list[tuple[float, int]] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def attach(self) -> "OpProfiler":
        """Start profiling (idempotent); resolves the I/O counters."""
        if self.attached:
            return self
        store = self.tree.store
        rstats = store.stats
        # A BufferPool counts logical reads as hits + misses and holds
        # no ``reads`` field; a bare store counts them in IOStats.reads.
        self.buffered = not hasattr(rstats, "reads")
        self.rstats = rstats
        self._wstats = store.store.stats if self.buffered else rstats
        tracer = self.tree.tracer
        tracer.add_tap(self)
        tracer.profiler = self
        self.attached = True
        return self

    def detach(self) -> None:
        """Stop profiling (the profiles freeze at their current values)."""
        if not self.attached:
            return
        self.flush()
        tracer = self.tree.tracer
        if tracer.profiler is self:
            tracer.profiler = None
        tracer.remove_tap(self)
        self._open.clear()
        self._splits.clear()
        self.attached = False

    def __enter__(self) -> "OpProfiler":
        return self.attach()

    def __exit__(self, *exc_info: object) -> None:
        self.detach()

    # ------------------------------------------------------------------
    # Direct-call hooks (the read hot paths; see repro.obs.tracer)
    # ------------------------------------------------------------------

    def end_get(
        self,
        t0: float,
        r0: int,
        point: Sequence[float],
        _clock: Any = perf_counter,
    ) -> None:
        """Close a profiled exact-match lookup.

        ``t0``/``r0`` are the before-op marks the caller took inline
        (``perf_counter()`` and the logical-read count off
        :attr:`rstats`).  This is the one profiled path with a real
        budget — the perf probe gates it at 1.05x a bare descent, well
        under a microsecond — which shapes everything here: the marks
        are locals passed in rather than profiler state (no extra
        method call, no attribute round-trip), the histograms are not
        updated in place but fed one raw ``(latency_us, pages)`` sample
        folded in :data:`GET_BATCH` batches by :meth:`flush`, and the
        clock callable rides in a default argument to skip the global
        load.  The slow-op check stays per-operation — a slow query
        must be EXPLAINed against the tree state that made it slow, not
        a batch later.  Range/k-NN closes cost tens of microseconds to
        milliseconds and keep the readable :meth:`_finish` path.
        """
        elapsed_us = (_clock() - t0) * 1e6
        rstats = self.rstats
        reads = (
            rstats.hits + rstats.misses if self.buffered else rstats.reads
        ) - r0
        raw = self._get_raw
        raw.append((elapsed_us, reads))
        if len(raw) >= GET_BATCH:
            self._flush_get()
        log = self.slow_log
        if log is not None and log.matches(elapsed_us, reads):
            self._slow(
                "get", elapsed_us, reads, 0, 0, {"point": list(point)}
            )

    def flush(self) -> None:
        """Fold any buffered hot-path samples into the instruments.

        Called automatically by every read surface and on detach;
        callers holding direct references to the registry's
        ``profile.get.*`` instruments while the profiler is attached
        should call it before reading.
        """
        if self._get_raw:
            self._flush_get()

    def _flush_get(self) -> None:
        profile = self._get_profile
        if profile is None:
            profile = self._get_profile = self._make_profile("get")
        raw = self._get_raw
        latencies, reads = zip(*raw)
        profile.latency_us.observe_many(latencies)
        profile.pages.observe_many(reads)
        worst = profile.max_latency_us.value
        peak = max(latencies)
        if worst is None or peak > worst:
            profile.max_latency_us.value = peak
        raw.clear()

    def end_range(
        self,
        t0: float,
        r0: int,
        lows: Sequence[float],
        highs: Sequence[float],
    ) -> None:
        """Close a profiled range query."""
        slow_us, reads = self._finish("range", t0, r0)
        if slow_us is not None:
            self._slow(
                "range",
                slow_us,
                reads,
                0,
                0,
                {"lows": list(lows), "highs": list(highs)},
            )

    def end_knn(
        self, t0: float, r0: int, point: Sequence[float], k: int
    ) -> None:
        """Close a profiled k-NN query."""
        slow_us, reads = self._finish("knn", t0, r0)
        if slow_us is not None:
            self._slow(
                "knn", slow_us, reads, 0, 0, {"point": list(point), "k": k}
            )

    def end_error(self, kind: str) -> None:
        """Close a profiled read op that raised: count, don't distort."""
        profile = self.profiles.get(kind)
        if profile is None:
            profile = self._make_profile(kind)
        profile.errors.inc()

    def _finish(
        self, kind: str, t0: float, r0: int
    ) -> tuple[float | None, int]:
        """Record one successful read op; non-None when it was slow."""
        elapsed_us = (perf_counter() - t0) * 1e6
        rstats = self.rstats
        reads = (
            rstats.hits + rstats.misses if self.buffered else rstats.reads
        ) - r0
        profile = self.profiles.get(kind)
        if profile is None:
            profile = self._make_profile(kind)
        profile.record(elapsed_us, reads, 0, 0)
        log = self.slow_log
        if log is not None and log.matches(elapsed_us, reads):
            return elapsed_us, reads
        return None, reads

    # ------------------------------------------------------------------
    # TraceSink interface (tap: the update paths, and reads under a sink)
    # ------------------------------------------------------------------

    def emit(self, event: TraceEvent) -> None:
        """Fold one structural event into the profiles (O(1))."""
        kind = event.kind
        if kind == OP_BEGIN:
            name = event.fields.get("name")
            if name:
                rstats = self.rstats
                reads = (
                    rstats.hits + rstats.misses
                    if self.buffered
                    else rstats.reads
                )
                detail = {
                    key: value
                    for key, value in event.fields.items()
                    if key != "name"
                }
                self._open[event.op] = (
                    name,
                    perf_counter(),
                    reads,
                    self._wstats.writes,
                    detail,
                )
        elif kind == OP_END:
            entry = self._open.pop(event.op, None)
            cascade = self._splits.pop(event.op, 0)
            if entry is None:
                return
            name, t0, reads0, writes0, detail = entry
            profile = self.profiles.get(name)
            if profile is None:
                profile = self._make_profile(name)
            if "error" in event.fields:
                profile.errors.inc()
                return
            elapsed_us = (perf_counter() - t0) * 1e6
            rstats = self.rstats
            reads = (
                rstats.hits + rstats.misses
                if self.buffered
                else rstats.reads
            ) - reads0
            writes = self._wstats.writes - writes0
            profile.record(elapsed_us, reads, writes, cascade)
            log = self.slow_log
            if log is not None and log.matches(elapsed_us, reads):
                self._slow(name, elapsed_us, reads, writes, cascade, detail)
        elif kind in (DATA_SPLIT, INDEX_SPLIT):
            if event.op:
                self._splits[event.op] = self._splits.get(event.op, 0) + 1

    def close(self) -> None:
        """Tap interface; nothing to release."""

    # ------------------------------------------------------------------
    # Slow-op capture
    # ------------------------------------------------------------------

    def _slow(
        self,
        kind: str,
        latency_us: float,
        reads: int,
        writes: int,
        cascade: int,
        detail: dict[str, Any],
    ) -> None:
        log = self.slow_log
        if log is None:
            return
        entry: dict[str, Any] = {
            "kind": kind,
            "layout": self.layout,
            "latency_us": round(latency_us, 3),
            "pages": reads,
            "writes": writes,
            "cascade": cascade,
        }
        if detail:
            entry["detail"] = detail
        if (
            log.explain_queries
            and kind in QUERY_KINDS
            and not self._explaining
        ):
            # Re-run the query under EXPLAIN's capture tracer.  The
            # capture tracer carries no profiler and no taps, so the
            # re-run is invisible to this profiler; the guard above only
            # protects against a hypothetical reentrant emit.
            self._explaining = True
            try:
                report = self._explain(kind, detail)
            except ReproError as exc:
                entry["explain_error"] = str(exc)
                report = None
            finally:
                self._explaining = False
            if report is not None:
                entry["explain"] = report.to_dict()
        log.record(entry)

    def _explain(self, kind: str, detail: dict[str, Any]) -> Any:
        tree = self.tree
        if kind == "get" and "point" in detail:
            return tree.explain(point=detail["point"])
        if kind == "range" and "lows" in detail and "highs" in detail:
            return tree.explain(rect=(detail["lows"], detail["highs"]))
        if kind == "knn" and "point" in detail:
            return tree.explain(knn=detail["point"], k=detail.get("k", 1))
        return None

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def _make_profile(self, kind: str) -> KindProfile:
        profile = self.profiles.get(kind)
        if profile is None:
            profile = KindProfile(kind, self.registry)
            self.profiles[kind] = profile
        return profile

    def profile(self, kind: str) -> KindProfile | None:
        """The profile for ``kind``, or ``None`` if never observed."""
        self.flush()
        return self.profiles.get(kind)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready summary of every kind profile."""
        self.flush()
        out: dict[str, Any] = {
            "layout": self.layout,
            "kinds": {
                kind: profile.to_dict()
                for kind, profile in sorted(self.profiles.items())
            },
        }
        if self.slow_log is not None:
            out["slow"] = self.slow_log.to_dict()
        return out
