"""``repro top``: a live cost/health dashboard over a running workload.

:func:`run_top` is the engine behind the ``repro top`` CLI.  It attaches
an :class:`~repro.obs.profile.OpProfiler` (per-kind latency/pages
profiles, slow-op log) and a :class:`~repro.obs.monitor.GuaranteeMonitor`
(live structural gauges, health verdicts) to a tree, drives an operation
stream, and renders a refreshing terminal frame: ops/sec and p50/p99 per
operation kind, buffer hit rate, WAL fsync rate, slow-op captures and
the three paper-guarantee verdicts — the whole observability stack on
one screen.

Timing uses ``time.monotonic`` exclusively (R14: wall clock jumps would
corrupt both the refresh cadence and the ops/sec figures).  Like the
rest of ``repro.obs``, nothing here imports ``repro.core``: the tree and
the operation stream are duck-typed and the CLI owns workload
construction, mirroring :func:`~repro.obs.report.run_doctor`.

The operation stream yields tuples:

- ``("insert", point[, value])`` / ``("delete", point)``
- ``("get", point)`` / ``("range", lows, highs)`` / ``("knn", point, k)``

``KeyNotFoundError`` from reads and deletes is swallowed and surfaces as
the profiler's per-kind error count — on a live dashboard a miss is a
data point, not a crash.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from time import monotonic
from typing import Any, Callable, Iterable

from repro.errors import KeyNotFoundError, ReproError
from repro.obs.health import HealthReport, HealthThresholds, evaluate
from repro.obs.metrics import (
    MetricsRegistry,
    MetricsSnapshotter,
    to_prometheus,
)
from repro.obs.monitor import GuaranteeMonitor
from repro.obs.profile import OpProfiler, SlowOpLog
from repro.obs.report import _format_table

__all__ = ["TopResult", "render_top_frame", "run_top"]

#: Operations driven between clock checks (keeps the refresh cadence
#: responsive without reading the clock on every op).
_BATCH = 64

#: ANSI: clear screen + home, prefixed to every live frame.
_CLEAR = "\x1b[2J\x1b[H"

#: Per-kind display order (any further kinds follow alphabetically).
_KIND_ORDER = ("get", "range", "knn", "insert", "delete", "bulk_load")

_SEVERITY_MARK = {"ok": "PASS", "warning": "WARN", "violation": "FAIL"}


@dataclass
class TopResult:
    """What one ``run_top`` session drove and concluded."""

    ops_applied: int
    frames: int
    elapsed_s: float
    health: HealthReport
    profile: dict[str, Any]
    monitor_state: dict[str, Any]
    last_frame: str = ""
    slow_ops: int = 0
    registry_snapshot: dict[str, Any] = field(default_factory=dict)

    @property
    def exit_code(self) -> int:
        """0 when every guarantee holds (warnings allowed), 1 otherwise."""
        return 0 if self.health.ok else 1

    def to_dict(self) -> dict[str, Any]:
        return {
            "ops_applied": self.ops_applied,
            "frames": self.frames,
            "elapsed_s": self.elapsed_s,
            "exit_code": self.exit_code,
            "health": self.health.to_dict(),
            "profile": self.profile,
            "slow_ops": self.slow_ops,
            "monitor": self.monitor_state,
        }


def _apply(tree: Any, op: tuple[Any, ...]) -> None:
    verb = op[0]
    if verb == "insert":
        tree.insert(op[1], op[2] if len(op) > 2 else None, replace=True)
    elif verb == "delete":
        tree.delete(op[1])
    elif verb == "get":
        tree.get(op[1])
    elif verb == "range":
        tree.range_query(op[1], op[2])
    elif verb == "knn":
        tree.nearest(op[1], k=op[2] if len(op) > 2 else 1)
    else:
        raise ReproError(
            f"top operation must be insert/delete/get/range/knn, "
            f"got {verb!r}"
        )


def _frame_data(
    tree: Any,
    profiler: OpProfiler,
    monitor: GuaranteeMonitor,
    health: HealthReport,
    applied: int,
    elapsed: float,
    interval_rates: dict[str, float],
) -> dict[str, Any]:
    """Everything one rendered frame shows, as plain data."""
    kinds: list[dict[str, Any]] = []
    ordered = [k for k in _KIND_ORDER if k in profiler.profiles]
    ordered += sorted(set(profiler.profiles) - set(_KIND_ORDER))
    for kind in ordered:
        prof = profiler.profiles[kind]
        kinds.append(
            {
                "kind": kind,
                "ops": prof.ops,
                "ops_per_s": interval_rates.get(kind),
                "p50_us": prof.latency_us.quantile(0.5),
                "p99_us": prof.latency_us.quantile(0.99),
                "mean_us": prof.latency_us.mean,
                "pages_mean": prof.pages.mean,
                "errors": prof.errors.value,
            }
        )
    store = tree.store
    rstats = store.stats
    hit_ratio = (
        rstats.hit_ratio if hasattr(rstats, "hit_ratio") else None
    )
    wal = getattr(store, "wal_stats", None)
    if wal is None:
        inner = getattr(store, "store", None)
        wal = getattr(inner, "wal_stats", None) if inner is not None else None
    data: dict[str, Any] = {
        "points": tree.count,
        "height": tree.height,
        "layout": profiler.layout,
        "ops_applied": applied,
        "elapsed_s": elapsed,
        "kinds": kinds,
        "buffer_hit_ratio": hit_ratio,
        "wal_fsyncs": getattr(wal, "fsyncs", None),
        "verdicts": dict(health.verdicts),
        "max_splits_per_op": monitor.max_splits_per_op,
        "slow": (
            {
                "count": profiler.slow_log.count,
                "last": profiler.slow_log.last,
            }
            if profiler.slow_log is not None
            else None
        ),
    }
    return data


def render_top_frame(data: dict[str, Any]) -> str:
    """One dashboard frame as plain text (pure: data in, string out)."""
    lines: list[str] = []
    lines.append(
        f"repro top — layout {data['layout']}, "
        f"{data['points']} points, height {data['height']}"
    )
    elapsed = data["elapsed_s"]
    total_rate = (
        data["ops_applied"] / elapsed if elapsed > 0 else 0.0
    )
    lines.append(
        f"{data['ops_applied']} ops applied in {elapsed:.1f}s "
        f"({total_rate:,.0f} ops/s overall)"
    )
    lines.append("")
    rows = []
    for entry in data["kinds"]:
        rows.append(
            [
                entry["kind"],
                entry["ops"],
                (
                    f"{entry['ops_per_s']:,.0f}"
                    if entry["ops_per_s"] is not None
                    else "-"
                ),
                _fmt_us(entry["p50_us"]),
                _fmt_us(entry["p99_us"]),
                _fmt_us(entry["mean_us"]),
                (
                    f"{entry['pages_mean']:.1f}"
                    if entry["pages_mean"] is not None
                    else "-"
                ),
                entry["errors"],
            ]
        )
    lines.append(
        _format_table(
            ["op", "count", "ops/s", "p50 us", "p99 us", "mean us",
             "pages", "errs"],
            rows,
            title="per-kind cost profile",
        )
    )
    lines.append("")
    gauges = []
    if data["buffer_hit_ratio"] is not None:
        gauges.append(f"buffer hit rate {data['buffer_hit_ratio']:.1%}")
    if data["wal_fsyncs"] is not None:
        gauges.append(f"wal fsyncs {data['wal_fsyncs']}")
    gauges.append(f"max splits/op {data['max_splits_per_op']}")
    lines.append("  ".join(gauges))
    slow = data["slow"]
    if slow is not None:
        if slow["last"] is not None:
            last = slow["last"]
            lines.append(
                f"slow ops: {slow['count']} captured "
                f"(last: {last['kind']} {last['latency_us']:.0f}us, "
                f"{last['pages']} pages)"
            )
        else:
            lines.append("slow ops: none captured")
    verdicts = "  ".join(
        f"{name} {_SEVERITY_MARK.get(verdict, verdict.upper())}"
        for name, verdict in sorted(data["verdicts"].items())
    )
    lines.append(f"guarantees: {verdicts}")
    return "\n".join(lines)


def _fmt_us(value: float | None) -> str:
    return f"{value:.1f}" if value is not None else "-"


def run_top(
    tree: Any,
    operations: Iterable[tuple[Any, ...]],
    *,
    refresh: float = 1.0,
    once: bool = False,
    slow_log: SlowOpLog | None = None,
    registry: MetricsRegistry | None = None,
    thresholds: HealthThresholds | None = None,
    prom_out: Any = None,
    metrics_out: Any = None,
    metrics_every: int = 1000,
    emit: Callable[[str], None] | None = None,
) -> TopResult:
    """Drive ``operations`` under the full observability stack.

    With ``once`` the whole stream is driven and a single frame is
    rendered at the end (no ANSI control codes — the CI mode);
    otherwise a cleared frame is emitted every ``refresh`` seconds of
    ``time.monotonic`` while the stream lasts.  ``prom_out`` writes the
    Prometheus exposition of the shared registry after every frame
    (atomic single file write — point a scraper's textfile collector at
    it); ``metrics_out`` attaches a
    :class:`~repro.obs.metrics.MetricsSnapshotter` JSONL stream sampled
    every ``metrics_every`` operations.  The tree's tracer is restored
    exactly as found.  Returns a :class:`TopResult`; its ``exit_code``
    follows the doctor convention (0 unless a guarantee is violated).
    """
    if refresh <= 0:
        raise ReproError(f"refresh must be positive, got {refresh}")
    registry = registry if registry is not None else MetricsRegistry()
    profiler = OpProfiler(tree, registry=registry, slow_log=slow_log)
    monitor = GuaranteeMonitor(tree)
    def refresh_gauges(reg: MetricsRegistry) -> None:
        profiler.flush()
        monitor.publish(reg)

    snapshotter = (
        MetricsSnapshotter(
            registry, metrics_out, every=metrics_every,
            prepare=refresh_gauges,
        )
        if metrics_out is not None
        else None
    )
    applied = 0
    frames = 0
    last_frame_text = ""
    start = monotonic()
    prev_mark = start
    prev_counts: dict[str, int] = {}

    def rates(now: float) -> dict[str, float]:
        nonlocal prev_mark, prev_counts
        interval = now - prev_mark
        out: dict[str, float] = {}
        counts = {
            kind: prof.ops for kind, prof in profiler.profiles.items()
        }
        if interval > 0:
            for kind, count in counts.items():
                out[kind] = (count - prev_counts.get(kind, 0)) / interval
        prev_mark = now
        prev_counts = counts
        return out

    def frame(final: bool) -> str:
        nonlocal frames, last_frame_text
        profiler.flush()
        now = monotonic()
        health = evaluate(monitor, thresholds=thresholds)
        data = _frame_data(
            tree, profiler, monitor, health,
            applied, now - start, rates(now),
        )
        text = render_top_frame(data)
        frames += 1
        last_frame_text = text
        if emit is not None:
            emit(text if (once or final) else _CLEAR + text)
        if prom_out is not None:
            refresh_gauges(registry)
            Path(prom_out).write_text(to_prometheus(registry))
        return text

    profiler.attach()
    monitor.attach()
    try:
        deadline = start + refresh
        batch = 0
        for op in operations:
            try:
                _apply(tree, op)
            except KeyNotFoundError:  # lint: ignore[R5] -- a miss is a data point on a dashboard; the profiler counts it
                pass
            applied += 1
            if snapshotter is not None:
                snapshotter.tick()
            batch += 1
            if batch >= _BATCH:
                batch = 0
                if not once and monotonic() >= deadline:
                    frame(final=False)
                    deadline = monotonic() + refresh
        frame(final=True)
        health = evaluate(monitor, thresholds=thresholds)
        result = TopResult(
            ops_applied=applied,
            frames=frames,
            elapsed_s=monotonic() - start,
            health=health,
            profile=profiler.to_dict(),
            monitor_state=monitor.to_dict(),
            last_frame=last_frame_text,
            slow_ops=slow_log.count if slow_log is not None else 0,
            registry_snapshot=registry.snapshot(),
        )
    finally:
        if snapshotter is not None:
            snapshotter.snapshot()
            snapshotter.close()
        monitor.detach()
        profiler.detach()
    return result
