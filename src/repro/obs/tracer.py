"""The event tracer: span-aware, zero-overhead when disabled.

Every :class:`~repro.core.tree.BVTree` and every storage backend carries
a :class:`Tracer` (disabled, with a :class:`~repro.obs.sinks.NullSink`,
unless the caller attaches a real sink).  The instrumented hot paths are
written against one discipline:

    tracer = tree.tracer
    if tracer.enabled:          # one attribute load + branch
        tracer.emit(KIND, ...)  # fields dict built only when tracing

so a disabled tracer costs a single predictable branch per potential
event — no field formatting, no object construction, no sink call.  The
perf harness measures the residual cost (see ``docs/OBSERVABILITY.md``);
the acceptance gate holds it under 2% on the descent-bound cases.

Operation *spans* group events: :meth:`Tracer.operation` allocates an op
id, emits ``op_begin``/``op_end`` and stamps every event emitted inside
the ``with`` block with that id, so a trace can be cut back into
per-operation slices (which is how the EXPLAIN reports and the metrics
aggregator reconstruct per-descent figures).  When disabled it returns a
shared no-op context manager, not a fresh object.
"""

from __future__ import annotations

from typing import Any

from repro.obs.events import OP_BEGIN, OP_END, TraceEvent
from repro.obs.sinks import NullSink, TraceSink

__all__ = ["Tracer"]


class _NullSpan:
    """The shared do-nothing span a disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> int:
        return 0

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """An open operation span; emits ``op_begin``/``op_end`` around it."""

    __slots__ = ("_tracer", "_name", "_fields", "_op", "_outer")

    def __init__(self, tracer: "Tracer", name: str, fields: dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._fields = fields
        self._op = 0
        self._outer = 0

    def __enter__(self) -> int:
        tracer = self._tracer
        self._op = tracer._next_op()
        self._outer = tracer.current_op
        tracer.current_op = self._op
        tracer.emit(OP_BEGIN, name=self._name, **self._fields)
        return self._op

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        tracer = self._tracer
        if exc_type is None:
            tracer.emit(OP_END, name=self._name)
        else:
            tracer.emit(OP_END, name=self._name, error=getattr(exc_type, "__name__", str(exc_type)))
        tracer.current_op = self._outer
        return None


class Tracer:
    """Emits :class:`~repro.obs.events.TraceEvent` s to a pluggable sink.

    A tracer starts disabled with a :class:`~repro.obs.sinks.NullSink`.
    :meth:`attach` installs a sink and enables emission; :meth:`enable`
    and :meth:`disable` toggle emission without touching the sink, so a
    capture can be paused around work that should not appear in it.

    One tracer is typically *shared*: a tree and its storage backend
    emit into the same instance, so page-level and structure-level
    events interleave in one totally ordered stream (``seq``).
    """

    __slots__ = ("sink", "enabled", "current_op", "_seq", "_ops")

    def __init__(self, sink: TraceSink | None = None, enabled: bool | None = None):
        self.sink: TraceSink = sink if sink is not None else NullSink()
        #: Checked by every instrumented hot path before building fields.
        self.enabled: bool = (
            enabled
            if enabled is not None
            else not isinstance(self.sink, NullSink)
        )
        #: The operation span id events are stamped with (0 = no span).
        self.current_op = 0
        self._seq = 0
        self._ops = 0

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    def attach(self, sink: TraceSink) -> None:
        """Install ``sink`` and enable emission."""
        self.sink = sink
        self.enabled = not isinstance(sink, NullSink)

    def detach(self) -> TraceSink:
        """Disable emission and return the sink (callers may close it)."""
        sink = self.sink
        self.sink = NullSink()
        self.enabled = False
        return sink

    def enable(self) -> None:
        """Resume emission to the current sink (no-op for a NullSink)."""
        self.enabled = not isinstance(self.sink, NullSink)

    def disable(self) -> None:
        """Pause emission; the sink keeps whatever it already received."""
        self.enabled = False

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def emit(self, kind: str, **fields: Any) -> None:
        """Emit one event (dropped silently when disabled).

        Hot paths must guard the call with ``if tracer.enabled:`` so the
        keyword dict is never built on the disabled path; this check is
        the safety net for cold paths, not the fast path.
        """
        if not self.enabled:
            return
        self._seq += 1
        self.sink.emit(TraceEvent(self._seq, self.current_op, kind, fields))

    def operation(self, name: str, **fields: Any) -> Any:
        """A context manager spanning one logical operation.

        Returns a shared no-op span when disabled, so wrapping an
        operation costs one call and one branch on the untraced path.
        Entering the real span emits ``op_begin`` (with ``fields``),
        leaving it emits ``op_end`` (with the exception name, if one is
        propagating); events inside carry the span's op id.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, fields)

    @property
    def seq(self) -> int:
        """The sequence number of the most recently emitted event."""
        return self._seq

    def _next_op(self) -> int:
        self._ops += 1
        return self._ops
