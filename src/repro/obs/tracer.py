"""The event tracer: span-aware, zero-overhead when disabled.

Every :class:`~repro.core.tree.BVTree` and every storage backend carries
a :class:`Tracer` (disabled, with a :class:`~repro.obs.sinks.NullSink`,
unless the caller attaches a real sink).  The instrumented hot paths are
written against one discipline:

    tracer = tree.tracer
    if tracer.enabled:          # one attribute load + branch
        tracer.emit(KIND, ...)  # fields dict built only when tracing

so a disabled tracer costs a single predictable branch per potential
event — no field formatting, no object construction, no sink call.  The
perf harness measures the residual cost (see ``docs/OBSERVABILITY.md``);
the acceptance gate holds it under 2% on the descent-bound cases.

Operation *spans* group events: :meth:`Tracer.operation` allocates an op
id, emits ``op_begin``/``op_end`` and stamps every event emitted inside
the ``with`` block with that id, so a trace can be cut back into
per-operation slices (which is how the EXPLAIN reports and the metrics
aggregator reconstruct per-descent figures).  When disabled it returns a
shared no-op context manager, not a fresh object.

Structural taps
---------------
Besides the full-stream sink, a tracer carries *taps*: sinks that want
only the cheap structural slice of the stream (splits, merges,
promotions, page lifecycle) without paying for full capture.  Call sites
on the *update* paths guard with ``tracer.structural`` instead of
``tracer.enabled``; read-path sites (descents, query traversals, page
reads) keep guarding on ``enabled``.  ``structural`` is true whenever
``enabled`` is — a full capture always sees the structural events — and
additionally while at least one tap is attached, so a
:class:`~repro.obs.monitor.GuaranteeMonitor` can watch a tree's
structure while exact-match reads still cost exactly one disabled-branch
check (the perf probe holds the monitored read path within 3% of the
uninstrumented one).  Taps receive every event that is emitted, in
stream order, alongside (not instead of) the sink.

A tap may declare a ``kinds`` attribute (a set of event-kind strings) to
say it only consumes those kinds.  When *every* attached tap declares
kinds and no full sink is enabled, the tracer skips constructing events
of other kinds entirely — a tap that only watches op spans does not make
every page write build a :class:`TraceEvent` it will discard.  This is
purely an optimisation: a kind-declaring tap may still receive extra
kinds (whenever a full sink or an undeclared tap is active) and must
keep filtering in its ``emit``.
"""

from __future__ import annotations

from typing import Any

from repro.obs.events import OP_BEGIN, OP_END, TraceEvent
from repro.obs.sinks import NullSink, TraceSink

__all__ = ["Tracer"]


class _NullSpan:
    """The shared do-nothing span a disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> int:
        return 0

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """An open operation span; emits ``op_begin``/``op_end`` around it."""

    __slots__ = ("_tracer", "_name", "_fields", "_op", "_outer")

    def __init__(self, tracer: "Tracer", name: str, fields: dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._fields = fields
        self._op = 0
        self._outer = 0

    def __enter__(self) -> int:
        tracer = self._tracer
        self._op = tracer._next_op()
        self._outer = tracer.current_op
        tracer.current_op = self._op
        tracer.emit(OP_BEGIN, name=self._name, **self._fields)
        return self._op

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        tracer = self._tracer
        if exc_type is None:
            tracer.emit(OP_END, name=self._name)
        else:
            tracer.emit(OP_END, name=self._name, error=getattr(exc_type, "__name__", str(exc_type)))
        tracer.current_op = self._outer
        return None


class Tracer:
    """Emits :class:`~repro.obs.events.TraceEvent` s to a pluggable sink.

    A tracer starts disabled with a :class:`~repro.obs.sinks.NullSink`.
    :meth:`attach` installs a sink and enables emission; :meth:`enable`
    and :meth:`disable` toggle emission without touching the sink, so a
    capture can be paused around work that should not appear in it.
    :meth:`add_tap` additionally subscribes a sink to the structural
    slice of the stream (see the module docstring) without enabling full
    capture.

    One tracer is typically *shared*: a tree and its storage backend
    emit into the same instance, so page-level and structure-level
    events interleave in one totally ordered stream (``seq``).
    """

    __slots__ = (
        "sink",
        "enabled",
        "structural",
        "current_op",
        "profiler",
        "_seq",
        "_ops",
        "_taps",
        "_tap_kinds",
    )

    def __init__(self, sink: TraceSink | None = None, enabled: bool | None = None):
        self.sink: TraceSink = sink if sink is not None else NullSink()
        #: Checked by every instrumented hot path before building fields.
        self.enabled: bool = (
            enabled
            if enabled is not None
            else not isinstance(self.sink, NullSink)
        )
        #: Checked by the structural (update-path) emission sites:
        #: ``enabled or taps attached``.  Never written directly — it is
        #: derived state kept in sync by the configuration methods.
        self.structural: bool = self.enabled
        #: The operation span id events are stamped with (0 = no span).
        self.current_op = 0
        #: Direct-call profiler hook for the *read* hot paths, or ``None``.
        #: Read ops never open spans while the tracer is disabled (a span
        #: plus event construction costs more than a whole exact-match
        #: descent's tracing budget), so an attached
        #: :class:`~repro.obs.profile.OpProfiler` registers itself here
        #: and the read paths bracket the untraced body with inline
        #: before-op marks plus one ``profiler.end_*()`` call — two
        #: clock reads and a sample append, no event machinery.  Update
        #: paths ignore this slot; their
        #: spans already open under ``structural`` and the profiler taps
        #: them like any other structural consumer.
        self.profiler: Any = None
        self._seq = 0
        self._ops = 0
        self._taps: tuple[TraceSink, ...] = ()
        #: Union of the taps' declared ``kinds``; ``None`` once any tap
        #: declines to declare (meaning: build every structural event).
        self._tap_kinds: frozenset[str] | None = frozenset()

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    def attach(self, sink: TraceSink) -> None:
        """Install ``sink`` and enable emission."""
        self.sink = sink
        self.enabled = not isinstance(sink, NullSink)
        self.structural = self.enabled or bool(self._taps)

    def detach(self) -> TraceSink:
        """Disable emission and return the sink (callers may close it)."""
        sink = self.sink
        self.sink = NullSink()
        self.enabled = False
        self.structural = bool(self._taps)
        return sink

    def enable(self) -> None:
        """Resume emission to the current sink (no-op for a NullSink)."""
        self.enabled = not isinstance(self.sink, NullSink)
        self.structural = self.enabled or bool(self._taps)

    def disable(self) -> None:
        """Pause emission; the sink keeps whatever it already received.

        Taps are paused too: ``disable`` silences the tracer entirely,
        exactly as it did before taps existed.
        """
        self.enabled = False
        self.structural = False

    def add_tap(self, tap: TraceSink) -> None:
        """Subscribe ``tap`` to the emitted stream (idempotent).

        Attaching a tap raises ``structural`` so the update-path sites
        start emitting; the read-path sites keep consulting ``enabled``
        and stay silent unless a full sink is attached too.
        """
        if tap not in self._taps:
            self._taps = self._taps + (tap,)
        self.structural = True
        self._tap_kinds = self._union_tap_kinds()

    def remove_tap(self, tap: TraceSink) -> None:
        """Unsubscribe ``tap`` (a no-op if it was never added)."""
        self._taps = tuple(t for t in self._taps if t is not tap)
        self.structural = self.enabled or bool(self._taps)
        self._tap_kinds = self._union_tap_kinds()

    def _union_tap_kinds(self) -> frozenset[str] | None:
        kinds: set[str] = set()
        for tap in self._taps:
            declared = getattr(tap, "kinds", None)
            if declared is None:
                return None
            kinds.update(declared)
        return frozenset(kinds)

    @property
    def taps(self) -> tuple[TraceSink, ...]:
        """The currently attached taps, in attachment order."""
        return self._taps

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def emit(self, kind: str, **fields: Any) -> None:
        """Emit one event (dropped silently when fully disabled).

        Hot paths must guard the call with ``if tracer.enabled:`` (read
        paths) or ``if tracer.structural:`` (update paths) so the
        keyword dict is never built on the disabled path; this check is
        the safety net for cold paths, not the fast path.
        """
        if not self.structural:
            return
        if not self.enabled:
            # Tap-only mode: when every tap declared its kinds, events
            # nobody consumes are dropped before construction.
            kinds = self._tap_kinds
            if kinds is not None and kind not in kinds:
                return
        self._seq += 1
        event = TraceEvent(self._seq, self.current_op, kind, fields)
        if self.enabled:
            self.sink.emit(event)
        for tap in self._taps:
            tap.emit(event)

    def operation(self, name: str, **fields: Any) -> Any:
        """A context manager spanning one logical operation.

        Returns a shared no-op span when fully disabled, so wrapping an
        operation costs one call and one branch on the untraced path.
        Entering the real span emits ``op_begin`` (with ``fields``),
        leaving it emits ``op_end`` (with the exception name, if one is
        propagating); events inside carry the span's op id.  A tracer
        with only taps attached opens real spans too — the structural
        consumers group split work per operation through them.
        """
        if not self.structural:
            return _NULL_SPAN
        return _Span(self, name, fields)

    @property
    def seq(self) -> int:
        """The sequence number of the most recently emitted event."""
        return self._seq

    def _next_op(self) -> int:
        self._ops += 1
        return self._ops
