"""Query EXPLAIN: structured reports of what one query actually did.

``BVTree.explain(...)`` answers the questions the aggregate counters
cannot: *which* nodes did this descent visit, *where* did a guard match,
*why* was a block pruned.  Rather than a second instrumentation layer,
EXPLAIN runs the ordinary query code under a temporary capture tracer
(ring sink) and folds the resulting event slice into an
:class:`ExplainReport` — so the report is exactly what a production
trace of the same query would show, and the two can never drift apart.

The capture temporarily replaces the tree's (and, through the shared
wiring, its store's) tracer; the caller's tracer and sink are restored
afterwards even if the query raises.  ``pages_touched`` counts
``page_read`` events, so for an exact match it equals the paper's §6
guarantee of ``height + 1`` page accesses — the property tests assert
this on trees with and without guards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from repro.errors import KeyNotFoundError, ReproError
from repro.obs.events import (
    DESCENT_STEP,
    GUARD_HIT,
    PAGE_READ,
    QUERY_PRUNE,
    QUERY_VISIT,
    TraceEvent,
)
from repro.obs.sinks import RingSink
from repro.obs.tracer import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.tree import BVTree

__all__ = [
    "ExplainReport",
    "explain_knn",
    "explain_point",
    "explain_range",
]

#: Capture capacity: queries visit at most a few thousand pages at the
#: scales this repo runs; a truncated capture sets ``truncated``.
_CAPTURE_CAPACITY = 65536


@dataclass
class ExplainReport:
    """What one query did, reconstructed from its trace slice."""

    #: ``"point"``, ``"range"`` or ``"knn"``.
    kind: str
    #: The query as given (JSON-ready).
    query: dict[str, Any]
    #: ``page_read`` events during the query (logical page touches).
    pages_touched: int
    #: Exact-match descent steps, root to leaf (empty for range/knn).
    steps: list[dict[str, Any]] = field(default_factory=list)
    #: Guards that matched the search path and were consulted.
    guards: list[dict[str, Any]] = field(default_factory=list)
    #: Blocks a range/k-NN traversal visited.
    visits: list[dict[str, Any]] = field(default_factory=list)
    #: Blocks pruned, each with the cut-off that fired.
    prunes: list[dict[str, Any]] = field(default_factory=list)
    #: Per-partition-level count of visited entries.
    visited_by_level: dict[int, int] = field(default_factory=dict)
    #: Query-specific outcome (found/value, record count, neighbours).
    result: dict[str, Any] = field(default_factory=dict)
    #: Events captured for this report.
    events: int = 0
    #: True when the capture ring overflowed (report is a suffix).
    truncated: bool = False

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready form of the whole report."""
        return {
            "kind": self.kind,
            "query": self.query,
            "pages_touched": self.pages_touched,
            "steps": self.steps,
            "guards": self.guards,
            "visits": self.visits,
            "prunes": self.prunes,
            "visited_by_level": {
                str(level): count
                for level, count in sorted(self.visited_by_level.items())
            },
            "result": self.result,
            "events": self.events,
            "truncated": self.truncated,
        }

    def render_text(self, max_rows: int = 20) -> str:
        """A human-readable report (the CLI's default output)."""
        lines = [f"EXPLAIN {self.kind} {self._query_text()}"]
        lines.append(
            f"  pages touched: {self.pages_touched}"
            + (" (capture truncated)" if self.truncated else "")
        )
        if self.visited_by_level:
            per_level = ", ".join(
                f"L{level}: {count}"
                for level, count in sorted(
                    self.visited_by_level.items(), reverse=True
                )
            )
            lines.append(f"  visited entries per level: {per_level}")
        if self.steps:
            lines.append("  descent:")
            for step in self.steps:
                lines.append(
                    f"    index level {step['level']}: node p{step['node_page']}"
                    f" -> {step['via']} {_key_text(step)}"
                    f" (guard set: {step['guard_set']})"
                )
        if self.guards:
            lines.append("  guards consulted:")
            for guard in self.guards:
                lines.append(
                    f"    level {guard['level']} guard {_key_text(guard)}"
                    f" in node p{guard['node_page']}"
                )
        if self.prunes:
            lines.append(f"  pruned blocks ({len(self.prunes)}):")
            for prune in self.prunes[:max_rows]:
                lines.append(f"    {_prune_text(prune)}")
            if len(self.prunes) > max_rows:
                lines.append(
                    f"    ... and {len(self.prunes) - max_rows} more"
                )
        if self.result:
            summary = ", ".join(
                f"{key}={value}" for key, value in sorted(self.result.items())
            )
            lines.append(f"  result: {summary}")
        return "\n".join(lines)

    def _query_text(self) -> str:
        return " ".join(
            f"{key}={value}" for key, value in sorted(self.query.items())
        )


def _key_text(fields: dict[str, Any]) -> str:
    bits = fields.get("key", "")
    return f"[{bits}]" if bits else "[ε]"


def _prune_text(prune: dict[str, Any]) -> str:
    base = (
        f"level {prune['level']} block {_key_text(prune)}"
        f" at p{prune.get('page', '?')}"
    )
    if "dim" in prune:
        return f"{base}: bitgrid cut-off fired on dimension {prune['dim']}"
    if "dist" in prune:
        return (
            f"{base}: lower bound {prune['dist']:.6f} beyond current "
            f"radius {prune.get('radius', float('inf')):.6f}"
        )
    return base


class _Capture:
    """Swap a capture tracer into a tree (and its store), then restore."""

    def __init__(self, tree: "BVTree"):
        self._tree = tree
        self._saved: Tracer | None = None
        self.sink = RingSink(capacity=_CAPTURE_CAPACITY)
        self.tracer = Tracer(self.sink)

    def __enter__(self) -> "_Capture":
        self._saved = self._tree.tracer
        self._tree.tracer = self.tracer
        self._tree.store.tracer = self.tracer
        return self

    def __exit__(self, *exc_info: object) -> None:
        saved = self._saved
        if saved is None:  # pragma: no cover - enter always ran
            raise ReproError("capture exited without entering")
        self._tree.tracer = saved
        self._tree.store.tracer = saved
        return None


def _fold(
    report: ExplainReport, events: list[TraceEvent], dropped: int
) -> ExplainReport:
    """Fold a captured event slice into the report skeleton."""
    report.events = len(events)
    report.truncated = dropped > 0
    for event in events:
        kind = event.kind
        fields = event.fields
        if kind == PAGE_READ:
            report.pages_touched += 1
        elif kind == DESCENT_STEP:
            report.steps.append(dict(fields))
            level = fields.get("chosen_level")
            if level is not None:
                report.visited_by_level[level] = (
                    report.visited_by_level.get(level, 0) + 1
                )
        elif kind == GUARD_HIT:
            report.guards.append(dict(fields))
        elif kind == QUERY_VISIT:
            report.visits.append(dict(fields))
            level = fields.get("level")
            if level is not None:
                report.visited_by_level[level] = (
                    report.visited_by_level.get(level, 0) + 1
                )
        elif kind == QUERY_PRUNE:
            report.prunes.append(dict(fields))
    return report


def explain_point(tree: "BVTree", point: Sequence[float]) -> ExplainReport:
    """EXPLAIN an exact-match lookup at ``point``."""
    pt = tuple(float(x) for x in point)
    report = ExplainReport(
        kind="point", query={"point": list(pt)}, pages_touched=0
    )
    with _Capture(tree) as capture:
        try:
            value = tree.get(pt)
            report.result = {"found": True, "value": repr(value)}
        except KeyNotFoundError:
            report.result = {"found": False}
    return _fold(report, capture.sink.events(), capture.sink.dropped)


def explain_range(
    tree: "BVTree", lows: Sequence[float], highs: Sequence[float]
) -> ExplainReport:
    """EXPLAIN a range query over the half-open box ``[lows, highs)``."""
    report = ExplainReport(
        kind="range",
        query={"lows": [float(x) for x in lows], "highs": [float(x) for x in highs]},
        pages_touched=0,
    )
    with _Capture(tree) as capture:
        result = tree.range_query(lows, highs)
        report.result = {
            "records": len(result),
            "pages_visited": result.pages_visited,
            "data_pages_visited": result.data_pages_visited,
        }
    return _fold(report, capture.sink.events(), capture.sink.dropped)


def explain_knn(
    tree: "BVTree", point: Sequence[float], k: int = 1
) -> ExplainReport:
    """EXPLAIN a k-nearest-neighbour search around ``point``."""
    pt = tuple(float(x) for x in point)
    report = ExplainReport(
        kind="knn", query={"point": list(pt), "k": k}, pages_touched=0
    )
    with _Capture(tree) as capture:
        result = tree.nearest(pt, k=k)
        report.result = {
            "neighbours": len(result),
            "pages_visited": result.pages_visited,
            "max_distance": (
                round(result.neighbours[-1].distance, 6)
                if result.neighbours
                else None
            ),
        }
    return _fold(report, capture.sink.events(), capture.sink.dropped)
