"""The trace event model: what one observable step of the tree looks like.

A :class:`TraceEvent` is one timestamp-free, span-style record: a global
sequence number (``seq``), the id of the operation span it belongs to
(``op``, 0 outside any span), a ``kind`` drawn from the catalogue below
and a small JSON-ready ``fields`` payload.  Events carry *structural*
facts (pages, keys, levels, counts) rather than wall-clock times — the
paper's guarantees are stated per operation in page touches and
promotion work, so that is what the trace records; wall-clock belongs to
:mod:`repro.perf`.

Kind catalogue
--------------
========================  ====================================================
kind                      emitted when
========================  ====================================================
``op_begin``/``op_end``   an operation span opens/closes (insert, get, ...)
``descent_step``          one hop of an exact-match descent (paper §3)
``guard_hit``             a guard matched the search path and joined the set
``data_split``            a data page split (paper §2)
``index_split``           an index node split
``promotion``             one entry promoted into the parent as a guard
``demotion``              one entry demoted to its unpromoted position (§4)
``merge``                 two regions merged (paper §5)
``redistribute``          a merged population re-split (the §5 1/3 guarantee)
``page_read``             one page read; ``physical`` False means cache hit
``page_write``            one page write
``page_alloc``            one page allocated (with its ``size_class``)
``page_free``             one page released
``query_visit``           a range/k-NN traversal visited an entry's block
``query_prune``           a traversal pruned a block (with the cut-off)
``checkpoint``            a durable store checkpointed its page file
``recovery_begin``        crash recovery started scanning a WAL
``wal_replay``            one committed WAL record was replayed
``recovery_end``          recovery finished (with its outcome summary)
========================  ====================================================

The schema is documented for external consumers in
``docs/OBSERVABILITY.md``; :meth:`TraceEvent.to_dict` /
:meth:`TraceEvent.from_dict` define the JSONL wire form used by
:class:`~repro.obs.sinks.JsonlSink`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ReproError

__all__ = [
    "CHECKPOINT",
    "DATA_SPLIT",
    "DEMOTION",
    "DESCENT_STEP",
    "EVENT_KINDS",
    "GUARD_HIT",
    "INDEX_SPLIT",
    "MERGE",
    "OP_BEGIN",
    "OP_END",
    "PAGE_ALLOC",
    "PAGE_FREE",
    "PAGE_READ",
    "PAGE_WRITE",
    "PROMOTION",
    "QUERY_PRUNE",
    "QUERY_VISIT",
    "RECOVERY_BEGIN",
    "RECOVERY_END",
    "REDISTRIBUTE",
    "TraceEvent",
    "WAL_REPLAY",
]

OP_BEGIN = "op_begin"
OP_END = "op_end"
DESCENT_STEP = "descent_step"
GUARD_HIT = "guard_hit"
DATA_SPLIT = "data_split"
INDEX_SPLIT = "index_split"
PROMOTION = "promotion"
DEMOTION = "demotion"
MERGE = "merge"
REDISTRIBUTE = "redistribute"
PAGE_READ = "page_read"
PAGE_WRITE = "page_write"
PAGE_ALLOC = "page_alloc"
PAGE_FREE = "page_free"
QUERY_VISIT = "query_visit"
QUERY_PRUNE = "query_prune"
CHECKPOINT = "checkpoint"
RECOVERY_BEGIN = "recovery_begin"
WAL_REPLAY = "wal_replay"
RECOVERY_END = "recovery_end"

#: Every kind a conforming tracer may emit.  Sinks must accept all of
#: them (and should tolerate unknown kinds from future versions).
EVENT_KINDS = frozenset(
    {
        OP_BEGIN,
        OP_END,
        DESCENT_STEP,
        GUARD_HIT,
        DATA_SPLIT,
        INDEX_SPLIT,
        PROMOTION,
        DEMOTION,
        MERGE,
        REDISTRIBUTE,
        PAGE_READ,
        PAGE_WRITE,
        PAGE_ALLOC,
        PAGE_FREE,
        QUERY_VISIT,
        QUERY_PRUNE,
        CHECKPOINT,
        RECOVERY_BEGIN,
        WAL_REPLAY,
        RECOVERY_END,
    }
)

#: The kinds that mirror an :class:`~repro.core.stats.OpCounters` bump —
#: counting a trace's events of these kinds must reproduce the counter
#: deltas exactly (the replay tests assert it).
STRUCTURAL_KINDS = frozenset(
    {DATA_SPLIT, INDEX_SPLIT, PROMOTION, DEMOTION, MERGE, REDISTRIBUTE}
)


@dataclass(frozen=True)
class TraceEvent:
    """One traced step: sequence number, operation span, kind, payload."""

    seq: int
    op: int
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """The JSONL wire form (flat: payload keys join the envelope)."""
        out: dict[str, Any] = {"seq": self.seq, "op": self.op, "kind": self.kind}
        for key, value in self.fields.items():
            if key in ("seq", "op", "kind"):
                raise ReproError(
                    f"trace event field {key!r} collides with the envelope"
                )
            out[key] = value
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TraceEvent":
        """Rebuild an event from its :meth:`to_dict` form."""
        try:
            seq = data["seq"]
            op = data["op"]
            kind = data["kind"]
        except KeyError as exc:
            raise ReproError(f"trace record is missing {exc}") from None
        fields = {
            k: v for k, v in data.items() if k not in ("seq", "op", "kind")
        }
        return cls(seq=seq, op=op, kind=kind, fields=fields)
