"""Scoring the paper's three guarantees from the monitor's gauges.

Freeston's abstract promises exactly three things for the BV-tree:

1. **Occupancy** — every data and index node is at least one-third full
   (the policy's ``min_data_occupancy``/``min_index_occupancy``, root
   exempt, as for a B-tree);
2. **Logarithmic cost** — the tree's height is O(log n), so every
   exact-match descent touches O(log n) pages;
3. **Fully dynamic, no cascade** — an insertion splits at most one node
   per level on its root path; splitting never cascades sideways.

:func:`evaluate` turns a :class:`~repro.obs.monitor.GuaranteeMonitor`'s
incremental gauges into structured :class:`HealthFinding` s, one per
guarantee (plus per-level occupancy detail), each with a severity:

- ``ok`` — the guarantee holds;
- ``warning`` — the guarantee is formally escaped, not violated: the
  tree recorded ``deferred_splits``/``deferred_merges`` (the documented
  conservative escapes for degenerate capacities), which is exactly the
  condition under which :func:`repro.core.checker.check_tree` skips its
  occupancy invariant.  The doctor's verdict must agree with the
  checker, so the evaluator follows the same rule;
- ``violation`` — the guarantee is broken; ``repro doctor`` exits
  non-zero.

The height bound is ``ceil(log_m(ceil(n / d_min))) + slack`` with
``m = max(2, min_index_occupancy)`` and ``d_min = min_data_occupancy``:
at guaranteed minimum occupancy, ``n`` points need at most
``ceil(n / d_min)`` data pages and the index over them thins by at
least ``m`` per level.  ``slack`` (default 1, see
:class:`HealthThresholds`) absorbs the root-exemption off-by-one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil, log
from typing import Any

from repro.errors import ReproError
from repro.obs.monitor import GuaranteeMonitor

__all__ = [
    "GUARANTEES",
    "OK",
    "VIOLATION",
    "WARNING",
    "HealthFinding",
    "HealthReport",
    "HealthThresholds",
    "evaluate",
    "height_bound",
]

OK = "ok"
WARNING = "warning"
VIOLATION = "violation"

#: The three paper guarantees, in report order.
GUARANTEES = ("occupancy", "height", "no_cascade")

_SEVERITY_RANK = {OK: 0, WARNING: 1, VIOLATION: 2}


@dataclass(frozen=True)
class HealthThresholds:
    """Tunable slack for the guarantee verdicts.

    height_slack:
        Extra levels tolerated above the analytic bound.  The bound
        assumes every page at its guaranteed minimum; the root exemption
        and in-flight splits make one extra level legitimate.
    max_split_chain:
        ``None`` (default) bounds an operation's split chain by
        ``max_height_seen + 1`` — one split per level of the tallest
        tree the operation could have descended, the paper's no-cascade
        statement.  A number pins the bound explicitly.
    """

    height_slack: int = 1
    max_split_chain: int | None = None


@dataclass(frozen=True)
class HealthFinding:
    """One scored statement about one guarantee (or one level of it)."""

    guarantee: str
    severity: str
    message: str
    #: The level the finding is about, or ``None`` for whole-tree facts.
    level: int | None = None
    #: Offending page ids (bounded; empty when the finding is ``ok``).
    pages: tuple[int, ...] = ()
    observed: float | None = None
    bound: float | None = None

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "guarantee": self.guarantee,
            "severity": self.severity,
            "message": self.message,
        }
        if self.level is not None:
            out["level"] = self.level
        if self.pages:
            out["pages"] = list(self.pages)
        if self.observed is not None:
            out["observed"] = self.observed
        if self.bound is not None:
            out["bound"] = self.bound
        return out


@dataclass
class HealthReport:
    """All findings, plus the one-line verdict per guarantee."""

    findings: list[HealthFinding] = field(default_factory=list)

    @property
    def verdicts(self) -> dict[str, str]:
        """Worst severity per guarantee (``ok`` if nothing was found)."""
        out = {name: OK for name in GUARANTEES}
        for finding in self.findings:
            current = out.get(finding.guarantee, OK)
            if _SEVERITY_RANK[finding.severity] > _SEVERITY_RANK[current]:
                out[finding.guarantee] = finding.severity
        return out

    @property
    def ok(self) -> bool:
        """True when no guarantee is violated (warnings allowed)."""
        return all(
            severity != VIOLATION for severity in self.verdicts.values()
        )

    @property
    def violations(self) -> list[HealthFinding]:
        return [f for f in self.findings if f.severity == VIOLATION]

    @property
    def warnings(self) -> list[HealthFinding]:
        return [f for f in self.findings if f.severity == WARNING]

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "verdicts": self.verdicts,
            "findings": [f.to_dict() for f in self.findings],
        }


def height_bound(
    n_points: int,
    min_data_occupancy: int,
    min_index_occupancy: int,
    slack: int = 1,
) -> int:
    """The maximum height guarantee 2 permits for ``n_points`` records.

    ``ceil(log_m(pages))`` with ``pages = ceil(n / d_min)`` and
    ``m = max(2, min_index_occupancy)``, plus ``slack``.  Zero or one
    page needs no index at all, so the bound is just ``slack`` there.
    """
    if min_data_occupancy < 1 or min_index_occupancy < 0:
        raise ReproError(
            "occupancy minima must be positive, got "
            f"data={min_data_occupancy} index={min_index_occupancy}"
        )
    if n_points <= 0:
        return slack
    pages = ceil(n_points / min_data_occupancy)
    if pages <= 1:
        return slack
    m = max(2, min_index_occupancy)
    return ceil(log(pages, m)) + slack


#: Cap on offending page ids carried per finding (keeps JSON bounded).
_MAX_PAGES_PER_FINDING = 16


def evaluate(
    monitor: GuaranteeMonitor,
    thresholds: HealthThresholds | None = None,
) -> HealthReport:
    """Score the three guarantees from the monitor's current gauges.

    Reads only the monitor (O(levels + pages-below-minimum), no tree
    walk) plus the tree's policy and deferred-escape counters.  Call
    :meth:`~repro.obs.monitor.GuaranteeMonitor.audit` first when the
    verdict must be backed by a sweep-verified state.
    """
    thresholds = thresholds if thresholds is not None else HealthThresholds()
    tree = monitor.tree
    policy = tree.policy
    findings: list[HealthFinding] = []

    # ------------------------------------------------------------- 1 --
    # Occupancy: every non-root node at or above the policy minimum.
    deferred = (
        tree.stats.deferred_splits + tree.stats.deferred_merges
    )
    escape = deferred > 0
    for level in monitor.levels:
        minimum = (
            policy.min_data_occupancy()
            if level == 0
            else policy.min_index_occupancy()
        )
        observed = monitor.min_occupancy(level, exempt_root=True)
        if observed is None:
            # Only the root lives at this level; the guarantee is vacuous.
            findings.append(
                HealthFinding(
                    guarantee="occupancy",
                    severity=OK,
                    message=f"level {level}: root only (exempt)",
                    level=level,
                    bound=minimum,
                )
            )
            continue
        if observed >= minimum:
            findings.append(
                HealthFinding(
                    guarantee="occupancy",
                    severity=OK,
                    message=(
                        f"level {level}: min occupancy {observed} >= "
                        f"{minimum}"
                    ),
                    level=level,
                    observed=observed,
                    bound=minimum,
                )
            )
            continue
        offenders = _offending_pages(monitor, level, minimum)
        if escape:
            # The checker skips its occupancy invariant whenever the
            # tree recorded a deferred split/merge; the doctor must not
            # be stricter than the checker, so this demotes to warning.
            findings.append(
                HealthFinding(
                    guarantee="occupancy",
                    severity=WARNING,
                    message=(
                        f"level {level}: min occupancy {observed} < "
                        f"{minimum}, but {deferred} deferred "
                        f"split/merge escape(s) were recorded "
                        f"(checker invariant 6 skips too)"
                    ),
                    level=level,
                    pages=offenders,
                    observed=observed,
                    bound=minimum,
                )
            )
        else:
            findings.append(
                HealthFinding(
                    guarantee="occupancy",
                    severity=VIOLATION,
                    message=(
                        f"level {level}: min occupancy {observed} < "
                        f"{minimum} with no deferred escape recorded"
                    ),
                    level=level,
                    pages=offenders,
                    observed=observed,
                    bound=minimum,
                )
            )

    # ------------------------------------------------------------- 2 --
    # Height: h <= ceil(log_m(ceil(n / d_min))) + slack.
    bound = height_bound(
        monitor.points,
        policy.min_data_occupancy(),
        policy.min_index_occupancy(),
        slack=thresholds.height_slack,
    )
    height = monitor.height
    findings.append(
        HealthFinding(
            guarantee="height",
            severity=OK if height <= bound else VIOLATION,
            message=(
                f"height {height} {'<=' if height <= bound else '>'} "
                f"bound {bound} for {monitor.points} points"
            ),
            observed=height,
            bound=bound,
        )
    )

    # ------------------------------------------------------------- 3 --
    # No cascade: split chain per operation bounded by the root path.
    chain_bound = (
        thresholds.max_split_chain
        if thresholds.max_split_chain is not None
        else monitor.max_height_seen + 1
    )
    chain = monitor.max_splits_per_op
    findings.append(
        HealthFinding(
            guarantee="no_cascade",
            severity=OK if chain <= chain_bound else VIOLATION,
            message=(
                f"max splits per operation {chain} "
                f"{'<=' if chain <= chain_bound else '>'} {chain_bound} "
                f"(one per level of the root path)"
            ),
            observed=chain,
            bound=chain_bound,
        )
    )
    return HealthReport(findings=findings)


def _offending_pages(
    monitor: GuaranteeMonitor, level: int, minimum: int
) -> tuple[int, ...]:
    """Page ids below ``minimum`` at ``level`` (root excluded, capped)."""
    return monitor.pages_below(level, minimum, limit=_MAX_PAGES_PER_FINDING)
