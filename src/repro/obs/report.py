"""The doctor: run a workload under the monitor and render its health.

:func:`run_doctor` is the engine behind ``repro doctor`` (and the perf
harness's ``health`` block): it attaches a
:class:`~repro.obs.monitor.GuaranteeMonitor` and a
:class:`~repro.obs.TimeSeriesSink` to a tree, drives an operation
stream, then audits the incremental gauges against a full sweep and
scores the three paper guarantees (:mod:`repro.obs.health`).  The result
carries everything the CLI needs — verdicts, per-level table rows, the
columnar time series — plus the process exit code:

========  ==========================================================
exit      meaning
========  ==========================================================
``0``     all guarantees hold (warnings allowed) and the audit is clean
``1``     at least one guarantee VIOLATION
``2``     audit drift — the incremental gauges disagree with the sweep
          (a monitor bug or an unobserved mutation path; always worth a
          report regardless of what the gauges claim)
========  ==========================================================

Like the rest of ``repro.obs`` this module never imports ``repro.core``:
the tree and the operation stream are duck-typed, and the CLI owns
workload construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import ReproError
from repro.obs.health import HealthReport, HealthThresholds, evaluate
from repro.obs.metrics import MetricsRegistry, TimeSeriesSink
from repro.obs.monitor import AuditReport, GuaranteeMonitor

__all__ = [
    "EXIT_DRIFT",
    "EXIT_OK",
    "EXIT_VIOLATION",
    "DoctorResult",
    "render_doctor_text",
    "run_doctor",
]

EXIT_OK = 0
EXIT_VIOLATION = 1
EXIT_DRIFT = 2


@dataclass
class DoctorResult:
    """Everything one doctor run learned, JSON-ready via :meth:`to_dict`."""

    n_points: int
    ops_applied: int
    monitor_state: dict[str, Any]
    audit: AuditReport
    health: HealthReport
    timeseries: dict[str, Any] = field(default_factory=dict)
    workload: str | None = None

    @property
    def exit_code(self) -> int:
        if not self.audit.clean:
            return EXIT_DRIFT
        if not self.health.ok:
            return EXIT_VIOLATION
        return EXIT_OK

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "n_points": self.n_points,
            "ops_applied": self.ops_applied,
            "exit_code": self.exit_code,
            "audit": {"clean": self.audit.clean, "drift": self.audit.drift},
            "health": self.health.to_dict(),
            "monitor": self.monitor_state,
        }
        if self.workload is not None:
            out["workload"] = self.workload
        if self.timeseries:
            out["timeseries"] = self.timeseries
        return out


def run_doctor(
    tree: Any,
    operations: Iterable[tuple[Any, ...]] = (),
    *,
    sample_every: int = 256,
    max_samples: int = 512,
    thresholds: HealthThresholds | None = None,
    workload: str | None = None,
) -> DoctorResult:
    """Drive ``operations`` under the monitor and score the guarantees.

    ``operations`` yields ``("insert", point, value)`` (value optional)
    or ``("delete", point)`` tuples; an empty stream just examines the
    tree as it stands (the "attach to a snapshot" mode).  The monitor
    taps the tree's tracer for the duration; the tree's sink and enabled
    state are left exactly as found.
    """
    monitor = GuaranteeMonitor(tree)
    registry = MetricsRegistry()
    series = TimeSeriesSink(
        registry,
        every=sample_every,
        max_samples=max_samples,
        prepare=monitor.publish,
    )
    applied = 0
    monitor.attach()
    tree.tracer.add_tap(series)
    try:
        for op in operations:
            verb = op[0]
            if verb == "insert":
                value = op[2] if len(op) > 2 else None
                tree.insert(op[1], value, replace=True)
            elif verb == "delete":
                tree.delete(op[1])
            else:
                raise ReproError(
                    f"doctor operation must be insert/delete, got {verb!r}"
                )
            applied += 1
        # Final sample so the series always covers the end state.
        series.sample()
        audit = monitor.audit()
        health = evaluate(monitor, thresholds=thresholds)
        state = monitor.to_dict()
    finally:
        tree.tracer.remove_tap(series)
        monitor.detach()
    return DoctorResult(
        n_points=tree.count,
        ops_applied=applied,
        monitor_state=state,
        audit=audit,
        health=health,
        timeseries=series.to_dict(),
        workload=workload,
    )


_SEVERITY_MARK = {"ok": "PASS", "warning": "WARN", "violation": "FAIL"}


def _format_table(
    headers: list[str], rows: list[list[Any]], title: str | None = None
) -> str:
    # Same layout as repro.bench.reporting.format_table, reimplemented
    # here because importing repro.bench would pull repro.core into this
    # package (obs sits below core in the dependency order).
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(header), *(len(row[i]) for row in cells), 1)
        if cells
        else len(header)
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_doctor_text(result: DoctorResult) -> str:
    """The doctor's terminal report: per-level table + verdicts."""
    lines: list[str] = []
    title = "repro doctor"
    if result.workload:
        title += f" — workload {result.workload}"
    lines.append(title)
    lines.append(
        f"{result.n_points} points, height "
        f"{result.monitor_state['height']}, "
        f"{result.ops_applied} operations applied"
    )
    lines.append("")

    state = result.monitor_state
    occ = state["occupancy_by_level"]
    guards = state["guards_by_level"]
    per_level_minmax: dict[str, tuple[int, float]] = {}
    for level, bucket in occ.items():
        sizes = {int(size): n for size, n in bucket.items()}
        pages = sum(sizes.values())
        mean = sum(size * n for size, n in sizes.items()) / pages
        per_level_minmax[level] = (min(sizes), mean)
    level_findings: dict[str, str] = {}
    for finding in result.health.findings:
        if finding.guarantee == "occupancy" and finding.level is not None:
            level_findings[str(finding.level)] = _SEVERITY_MARK[
                finding.severity
            ]
    rows = []
    for level in sorted(occ, key=int):
        minimum, mean = per_level_minmax[level]
        rows.append(
            [
                level,
                state["pages_by_level"][level],
                minimum,
                f"{mean:.1f}",
                guards.get(level, 0),
                level_findings.get(level, "-"),
            ]
        )
    lines.append(
        _format_table(
            ["level", "pages", "min occ", "mean occ", "guards", "verdict"],
            rows,
            title="per-level health",
        )
    )
    lines.append("")

    lines.append("guarantees")
    for finding in result.health.findings:
        if finding.guarantee == "occupancy" and finding.level is not None:
            continue  # summarised in the table above
        lines.append(
            f"  [{_SEVERITY_MARK[finding.severity]}] "
            f"{finding.guarantee}: {finding.message}"
        )
    occupancy_verdict = result.health.verdicts["occupancy"]
    lines.append(
        f"  [{_SEVERITY_MARK[occupancy_verdict]}] occupancy: "
        "per-level minima vs policy (table above)"
    )

    lines.append("")
    if result.audit.clean:
        lines.append("audit: incremental gauges match the full sweep")
    else:
        lines.append("audit: DRIFT between incremental gauges and sweep:")
        for line in result.audit.drift:
            lines.append(f"  {line}")

    for finding in result.health.violations + result.health.warnings:
        if finding.pages:
            lines.append(
                f"offending pages ({finding.guarantee}, level "
                f"{finding.level}): {list(finding.pages)}"
            )
    lines.append("")
    lines.append(f"exit code: {result.exit_code}")
    return "\n".join(lines)
