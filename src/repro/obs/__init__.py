"""Observability: structured tracing, metrics and query EXPLAIN.

The paper's guarantees are *per-operation* claims — logarithmic node
touches, no cascade splits, bounded promotion work.  The aggregate
counters (:class:`~repro.core.stats.OpCounters`,
:class:`~repro.storage.stats.IOStats`) verify them in total; this
subpackage makes them observable operation by operation, the way the
dynamic-indexability literature argues about indexes — access traces,
not averages:

- :class:`~repro.obs.tracer.Tracer` + :class:`~repro.obs.events.TraceEvent`
  — a span-style event stream (descent steps, guard hits, splits,
  promotions, merges, page I/O) with zero overhead while disabled;
- :mod:`~repro.obs.sinks` — pluggable sinks: null (default), in-memory
  ring buffer, JSONL file;
- :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges and
  fixed-bucket histograms, derivable from the event stream via
  :class:`~repro.obs.metrics.MetricsSink`; the perf harness snapshots a
  registry into ``BENCH_<suite>.json``;
- :mod:`~repro.obs.explain` — ``BVTree.explain(...)`` reports (visited
  entries per level, guards consulted, prune cut-offs, pages touched).

CLI: ``repro explain`` and ``repro trace``.  Full schema and usage:
``docs/OBSERVABILITY.md``.

This package sits *below* :mod:`repro.core` and :mod:`repro.storage` in
the dependency order (both emit through it); it imports neither, which
is what lets a single tracer be shared across the tree and its store.
"""

from repro.obs.events import EVENT_KINDS, TraceEvent
from repro.obs.explain import ExplainReport, explain_knn, explain_point, explain_range
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSink,
)
from repro.obs.sinks import JsonlSink, NullSink, RingSink, TraceSink, read_jsonl
from repro.obs.tracer import Tracer

__all__ = [
    "Counter",
    "EVENT_KINDS",
    "ExplainReport",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "MetricsSink",
    "NullSink",
    "RingSink",
    "TraceEvent",
    "TraceSink",
    "Tracer",
    "explain_knn",
    "explain_point",
    "explain_range",
    "read_jsonl",
]
