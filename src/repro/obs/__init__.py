"""Observability: structured tracing, metrics and query EXPLAIN.

The paper's guarantees are *per-operation* claims — logarithmic node
touches, no cascade splits, bounded promotion work.  The aggregate
counters (:class:`~repro.core.stats.OpCounters`,
:class:`~repro.storage.stats.IOStats`) verify them in total; this
subpackage makes them observable operation by operation, the way the
dynamic-indexability literature argues about indexes — access traces,
not averages:

- :class:`~repro.obs.tracer.Tracer` + :class:`~repro.obs.events.TraceEvent`
  — a span-style event stream (descent steps, guard hits, splits,
  promotions, merges, page I/O) with zero overhead while disabled;
- :mod:`~repro.obs.sinks` — pluggable sinks: null (default), in-memory
  ring buffer, JSONL file;
- :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges and
  fixed-bucket histograms, derivable from the event stream via
  :class:`~repro.obs.metrics.MetricsSink`; the perf harness snapshots a
  registry into ``BENCH_<suite>.json``;
- :mod:`~repro.obs.explain` — ``BVTree.explain(...)`` reports (visited
  entries per level, guards consulted, prune cut-offs, pages touched);
- :class:`~repro.obs.monitor.GuaranteeMonitor` — live, O(1)-per-event
  structural gauges (per-level occupancy histograms, guards, height)
  fed by a structural tracer *tap*, audited exactly against the
  full-sweep :func:`~repro.core.stats.collect`;
- :mod:`~repro.obs.health` + :mod:`~repro.obs.report` — the paper's
  three guarantees scored into :class:`~repro.obs.health.HealthFinding`
  verdicts, and the ``repro doctor`` engine;
- :class:`~repro.obs.metrics.TimeSeriesSink` — columnar registry
  samples every N operations (a whole workload's health trajectory in
  one bounded JSON artifact);
- :class:`~repro.obs.profile.OpProfiler` — per-operation-kind cost
  profiles (latency histograms, page-access deltas, cascade depth)
  collected at tap discipline, plus :class:`~repro.obs.profile.SlowOpLog`
  — structured JSONL captures of threshold-exceeding operations with
  automatic EXPLAIN attachments for queries;
- :func:`~repro.obs.metrics.to_prometheus` /
  :func:`~repro.obs.metrics.lint_prometheus` — Prometheus text-format
  exposition of a whole registry, and an in-tree format linter;
- :class:`~repro.obs.metrics.MetricsSnapshotter` — periodic JSONL
  registry snapshots keyed by operation count;
- :mod:`~repro.obs.top` — the ``repro top`` engine: a refreshing
  terminal dashboard (ops/sec, p50/p99 per kind, buffer hit rate, WAL
  fsyncs, live guarantee verdicts) over any operation stream.

CLI: ``repro explain``, ``repro trace``, ``repro doctor`` and
``repro top``.  Full schema and usage: ``docs/OBSERVABILITY.md``.

This package sits *below* :mod:`repro.core` and :mod:`repro.storage` in
the dependency order (both emit through it); it imports neither, which
is what lets a single tracer be shared across the tree and its store.
"""

from repro.obs.events import EVENT_KINDS, TraceEvent
from repro.obs.explain import ExplainReport, explain_knn, explain_point, explain_range
from repro.obs.health import (
    HealthFinding,
    HealthReport,
    HealthThresholds,
    evaluate,
    height_bound,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSink,
    MetricsSnapshotter,
    TimeSeriesSink,
    lint_prometheus,
    to_prometheus,
)
from repro.obs.monitor import AuditReport, GuaranteeMonitor
from repro.obs.profile import KindProfile, OpProfiler, SlowOpLog
from repro.obs.report import DoctorResult, render_doctor_text, run_doctor
from repro.obs.sinks import JsonlSink, NullSink, RingSink, TraceSink, read_jsonl
from repro.obs.top import TopResult, render_top_frame, run_top
from repro.obs.tracer import Tracer

__all__ = [
    "AuditReport",
    "Counter",
    "DoctorResult",
    "EVENT_KINDS",
    "ExplainReport",
    "Gauge",
    "GuaranteeMonitor",
    "HealthFinding",
    "HealthReport",
    "HealthThresholds",
    "Histogram",
    "JsonlSink",
    "KindProfile",
    "MetricsRegistry",
    "MetricsSink",
    "MetricsSnapshotter",
    "NullSink",
    "OpProfiler",
    "RingSink",
    "SlowOpLog",
    "TimeSeriesSink",
    "TopResult",
    "TraceEvent",
    "TraceSink",
    "Tracer",
    "evaluate",
    "explain_knn",
    "explain_point",
    "explain_range",
    "height_bound",
    "lint_prometheus",
    "read_jsonl",
    "render_doctor_text",
    "render_top_frame",
    "run_doctor",
    "run_top",
    "to_prometheus",
]
