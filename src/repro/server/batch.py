"""Group-commit write batching for the serving layer.

HTTP write requests land one at a time, but the service pays two fixed
costs per commit — the writer lock handoff and the version publication
(a page-table dict copy).  The batcher amortises both: requests queue
up, a single background writer thread drains whatever has accumulated
(up to ``max_batch``, waiting at most ``max_wait_s`` for stragglers),
applies the whole group under **one** lock hold and **one**
publication via :meth:`TreeService.apply_ops`, then resolves each
request's future with its own outcome.  On a WAL-backed store this is
group-commit shaped: one fsync window covers the group.

Requests stay independent — a failed op (duplicate key, missing key)
fails only its own future; the rest of the group commits.  This is
deliberately *not* the all-or-nothing ``/v1/batch`` endpoint, which
goes through :meth:`TreeService.apply_batch` directly.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from time import monotonic
from typing import Any, Sequence

from repro.concurrency.service import TreeService, WriteOp
from repro.errors import ReproError

__all__ = ["BatchStats", "WriteBatcher"]


class BatchStats:
    """Counters describing the batcher's coalescing behaviour."""

    __slots__ = ("batches", "requests", "ops", "max_batch_seen")

    def __init__(self) -> None:
        self.batches = 0
        self.requests = 0
        self.ops = 0
        self.max_batch_seen = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "batches": self.batches,
            "requests": self.requests,
            "ops": self.ops,
            "max_batch_seen": self.max_batch_seen,
            "mean_batch": (self.requests / self.batches)
            if self.batches
            else 0.0,
        }


class _Pending:
    __slots__ = ("ops", "future")

    def __init__(self, ops: list[WriteOp], future: "Future[Any]"):
        self.ops = ops
        self.future = future


#: Queue sentinel that tells the writer thread to exit.
_SHUTDOWN = object()


class WriteBatcher:
    """A background writer thread that drains queued writes in groups."""

    def __init__(
        self,
        service: TreeService,
        *,
        max_batch: int = 64,
        max_wait_s: float = 0.002,
    ):
        if max_batch <= 0:
            raise ReproError(f"max_batch must be positive, got {max_batch}")
        self.service = service
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.stats = BatchStats()
        self._queue: "queue.Queue[Any]" = queue.Queue()
        self._closed = False
        self._thread = threading.Thread(
            target=self._drain_loop, name="repro-write-batcher", daemon=True
        )
        self._thread.start()

    def submit(self, ops: Sequence[WriteOp]) -> "Future[tuple[list[tuple[bool, Any]], int]]":
        """Enqueue one request's ops; resolves to ``(outcomes, lsn)``.

        The future carries the request's own per-op outcomes plus the
        LSN at which its successful effects became visible.  A
        service-level failure (poisoned writer) rejects the future with
        the underlying exception.
        """
        if self._closed:
            raise ReproError("write batcher is closed")
        future: "Future[tuple[list[tuple[bool, Any]], int]]" = Future()
        self._queue.put(_Pending(list(ops), future))
        return future

    def close(self) -> None:
        """Stop accepting writes, drain the queue, join the thread."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(_SHUTDOWN)
        self._thread.join()

    # -- writer thread ---------------------------------------------------

    def _drain_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            group = [item]
            deadline = monotonic() + self.max_wait_s
            while len(group) < self.max_batch:
                remaining = deadline - monotonic()
                try:
                    nxt = self._queue.get(
                        timeout=remaining if remaining > 0 else None,
                        block=remaining > 0,
                    )
                except queue.Empty:
                    break
                if nxt is _SHUTDOWN:
                    self._apply_group(group)
                    return
                group.append(nxt)
            self._apply_group(group)

    def _apply_group(self, group: list[_Pending]) -> None:
        flat: list[WriteOp] = []
        slices: list[tuple[int, int]] = []
        for pending in group:
            start = len(flat)
            flat.extend(pending.ops)
            slices.append((start, len(flat)))
        try:
            outcomes, lsn = self.service.apply_ops(flat)
        except BaseException as exc:
            for pending in group:
                pending.future.set_exception(exc)
            return
        stats = self.stats
        stats.batches += 1
        stats.requests += len(group)
        stats.ops += len(flat)
        stats.max_batch_seen = max(stats.max_batch_seen, len(group))
        for pending, (start, end) in zip(group, slices):
            pending.future.set_result((outcomes[start:end], lsn))
