"""The serving application: routes, JSON contracts, error mapping.

The app is transport-free: :meth:`ServingApp.handle` maps ``(method,
path, body bytes)`` to a :class:`Response`, so the contract tests drive
it directly — no socket, no event loop — and the asyncio HTTP layer
(:mod:`repro.server.http`) is a thin shell around the same method.

Error mapping (asserted by the contract tests)::

    KeyNotFoundError          -> 404   the point has no record
    DuplicateKeyError         -> 409   insert without replace collided
    GeometryError (+subtypes) -> 400   malformed point/box/k
    BatchAbortedError         -> maps its cause, with the failing index
    TreeInvariantError        -> 500   the index broke an invariant
    StorageError              -> 503   store poisoned / crashed writer
    other ReproError          -> 400   request-level validation
    anything else             -> 500

Every endpoint records a latency histogram, a pages-touched histogram
(reads), and request/error counters in the shared
:class:`~repro.obs.MetricsRegistry`; ``GET /metrics`` renders the
registry in the Prometheus text format (same exposition discipline as
``repro top`` — it must pass :func:`repro.obs.lint_prometheus`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Sequence

from repro.concurrency.service import BatchAbortedError, TreeService, WriteOp
from repro.errors import (
    DuplicateKeyError,
    GeometryError,
    KeyNotFoundError,
    ReproError,
    StorageError,
    TreeInvariantError,
)
from repro.obs.metrics import Counter, Histogram, MetricsRegistry, to_prometheus
from repro.obs.profile import LATENCY_BUCKETS_US, PAGES_BUCKETS
from repro.server.batch import WriteBatcher

__all__ = ["Response", "ServingApp", "status_for"]


@dataclass
class Response:
    """One endpoint result: status, payload, content type."""

    status: int
    payload: Any
    content_type: str = "application/json"

    def body_bytes(self) -> bytes:
        if self.content_type == "application/json":
            return (json.dumps(self.payload) + "\n").encode()
        return str(self.payload).encode()


def status_for(exc: BaseException) -> int:
    """The HTTP status an exception maps to (see module docstring)."""
    if isinstance(exc, BatchAbortedError):
        cause = exc.cause
        # An aborted batch is always the *request's* fault unless the
        # index itself broke: surface the cause's class of error but
        # never a 404 (the batch as a whole was rejected, not missing).
        status = status_for(cause)
        return 400 if status == 404 else status
    if isinstance(exc, KeyNotFoundError):
        return 404
    if isinstance(exc, DuplicateKeyError):
        return 409
    if isinstance(exc, GeometryError):
        return 400
    if isinstance(exc, TreeInvariantError):
        return 500
    if isinstance(exc, StorageError):
        return 503
    if isinstance(exc, ReproError):
        return 400
    return 500


class _EndpointInstruments:
    """Lazy per-endpoint instruments in the shared registry."""

    __slots__ = ("latency_us", "pages", "requests", "errors")

    def __init__(self, registry: MetricsRegistry, endpoint: str):
        prefix = f"serve.{endpoint}"
        self.latency_us: Histogram = registry.histogram(
            f"{prefix}.latency_us", LATENCY_BUCKETS_US
        )
        self.pages: Histogram = registry.histogram(
            f"{prefix}.pages", PAGES_BUCKETS
        )
        self.requests: Counter = registry.counter(f"{prefix}.requests")
        self.errors: Counter = registry.counter(f"{prefix}.errors")


@dataclass
class _Route:
    method: str
    endpoint: str
    handler: Callable[["ServingApp", dict[str, Any]], Response]
    needs_body: bool = True
    content_type: str = "application/json"
    extra: dict[str, Any] = field(default_factory=dict)


class ServingApp:
    """Transport-free request handler over one :class:`TreeService`.

    Parameters
    ----------
    service:
        The concurrency facade the app serves.
    registry:
        Optionally a shared :class:`MetricsRegistry` (the CLI passes one
        so ``/metrics`` and other exporters agree); a fresh one is
        created otherwise.
    batcher:
        Optionally a :class:`WriteBatcher`.  When present, single-op
        writes (``insert``/``delete``) go through it — group-commit
        coalescing under concurrent load; the call still blocks until
        the op's own outcome is known.  Without one, writes apply
        directly (the contract tests run this way).  ``/v1/batch`` and
        ``/v1/bulk`` always bypass the batcher: the former needs the
        all-or-nothing path, the latter is a rare whole-tree build.
    """

    def __init__(
        self,
        service: TreeService,
        *,
        registry: MetricsRegistry | None = None,
        batcher: WriteBatcher | None = None,
    ):
        self.service = service
        self.registry = registry if registry is not None else MetricsRegistry()
        self.batcher = batcher
        self._instruments: dict[str, _EndpointInstruments] = {}

    # -- dispatch --------------------------------------------------------

    def handle(self, method: str, path: str, body: bytes | None) -> Response:
        """Serve one request; never raises (errors become responses)."""
        route = _ROUTES.get((method.upper(), path))
        if route is None:
            if any(p == path for _, p in _ROUTES):
                return Response(
                    405, {"error": f"method {method} not allowed for {path}"}
                )
            return Response(404, {"error": f"no route for {path}"})
        instruments = self._instrument(route.endpoint)
        instruments.requests.inc()
        t0 = perf_counter()
        try:
            if route.needs_body:
                request = self._parse_body(body)
                response = route.handler(self, request)
            else:
                response = route.handler(self, {})
        except BaseException as exc:
            instruments.errors.inc()
            response = self._error_response(exc)
        instruments.latency_us.observe((perf_counter() - t0) * 1e6)
        return response

    def _instrument(self, endpoint: str) -> _EndpointInstruments:
        instruments = self._instruments.get(endpoint)
        if instruments is None:
            instruments = _EndpointInstruments(self.registry, endpoint)
            self._instruments[endpoint] = instruments
        return instruments

    @staticmethod
    def _parse_body(body: bytes | None) -> dict[str, Any]:
        if not body:
            return {}
        try:
            data = json.loads(body)
        except (ValueError, UnicodeDecodeError) as exc:
            raise ReproError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ReproError("request body must be a JSON object")
        return data

    @staticmethod
    def _error_response(exc: BaseException) -> Response:
        payload: dict[str, Any] = {
            "error": str(exc),
            "kind": type(exc).__name__,
        }
        if isinstance(exc, BatchAbortedError):
            payload["index"] = exc.index
            payload["cause"] = type(exc.cause).__name__
        return Response(status_for(exc), payload)

    # -- request field helpers ------------------------------------------

    @staticmethod
    def _point(request: dict[str, Any], key: str = "point") -> tuple[float, ...]:
        value = request.get(key)
        if not isinstance(value, (list, tuple)) or not value or not all(
            isinstance(c, (int, float)) and not isinstance(c, bool)
            for c in value
        ):
            raise ReproError(
                f"field {key!r} must be a non-empty array of numbers"
            )
        return tuple(float(c) for c in value)

    def _apply_write(self, ops: Sequence[WriteOp]) -> tuple[list[tuple[bool, Any]], int]:
        if self.batcher is not None:
            return self.batcher.submit(ops).result()
        return self.service.apply_ops(ops)

    # -- endpoints -------------------------------------------------------

    def _get(self, request: dict[str, Any]) -> Response:
        point = self._point(request)
        snapshot = self.service.snapshot()
        try:
            value = snapshot.get(point)
        except KeyNotFoundError:
            # The miss is part of the contract, not an app error; it is
            # still a 404 to the client but carries the snapshot's LSN.
            return Response(
                404,
                {
                    "error": f"no record at {list(point)}",
                    "kind": "KeyNotFoundError",
                    "lsn": snapshot.lsn,
                },
            )
        finally:
            self._instrument("get").pages.observe(snapshot.store.reads)
        return Response(
            200,
            {"point": list(point), "value": value, "lsn": snapshot.lsn},
        )

    def _insert(self, request: dict[str, Any]) -> Response:
        point = self._point(request)
        replace = bool(request.get("replace", False))
        op: WriteOp = ("insert", point, request.get("value"), replace)
        outcomes, lsn = self._apply_write([op])
        ok, result = outcomes[0]
        if not ok:
            self._instrument("insert").errors.inc()
            return self._error_response(result)
        return Response(201, {"point": list(point), "lsn": lsn})

    def _delete(self, request: dict[str, Any]) -> Response:
        point = self._point(request)
        outcomes, lsn = self._apply_write([("delete", point)])
        ok, result = outcomes[0]
        if not ok:
            self._instrument("delete").errors.inc()
            return self._error_response(result)
        return Response(
            200, {"point": list(point), "value": result, "lsn": lsn}
        )

    def _range(self, request: dict[str, Any]) -> Response:
        lows = self._point(request, "lows")
        highs = self._point(request, "highs")
        snapshot = self.service.snapshot()
        result = snapshot.range_query(lows, highs)
        self._instrument("range").pages.observe(result.pages_visited)
        return Response(
            200,
            {
                "count": len(result.records),
                "records": [
                    {"point": list(point), "value": value}
                    for point, value in result.records
                ],
                "pages_visited": result.pages_visited,
                "lsn": snapshot.lsn,
            },
        )

    def _knn(self, request: dict[str, Any]) -> Response:
        point = self._point(request)
        k = request.get("k", 1)
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise ReproError(f"field 'k' must be a positive integer, got {k!r}")
        snapshot = self.service.snapshot()
        result = snapshot.nearest(point, k=k)
        self._instrument("knn").pages.observe(result.pages_visited)
        return Response(
            200,
            {
                "neighbours": [
                    {
                        "point": list(n.point),
                        "value": n.value,
                        "distance": n.distance,
                    }
                    for n in result.neighbours
                ],
                "pages_visited": result.pages_visited,
                "lsn": snapshot.lsn,
            },
        )

    def _batch(self, request: dict[str, Any]) -> Response:
        raw = request.get("ops")
        if not isinstance(raw, list) or not raw:
            raise ReproError("field 'ops' must be a non-empty array")
        ops: list[WriteOp] = []
        for i, item in enumerate(raw):
            if not isinstance(item, dict):
                raise ReproError(f"ops[{i}] must be an object")
            verb = item.get("op")
            if verb == "insert":
                ops.append(
                    (
                        "insert",
                        self._point(item),
                        item.get("value"),
                        bool(item.get("replace", False)),
                    )
                )
            elif verb == "delete":
                ops.append(("delete", self._point(item)))
            else:
                raise ReproError(
                    f"ops[{i}].op must be insert/delete, got {verb!r}"
                )
        lsn = self.service.apply_batch(ops)
        return Response(200, {"applied": len(ops), "lsn": lsn})

    def _bulk(self, request: dict[str, Any]) -> Response:
        raw = request.get("records")
        if not isinstance(raw, list) or not raw:
            raise ReproError("field 'records' must be a non-empty array")
        records: list[tuple[tuple[float, ...], Any]] = []
        for i, item in enumerate(raw):
            if not isinstance(item, (list, tuple)) or len(item) != 2:
                raise ReproError(f"records[{i}] must be a [point, value] pair")
            records.append((self._point({"point": item[0]}), item[1]))
        loaded, lsn = self.service.bulk_load(
            records, replace=bool(request.get("replace", False))
        )
        return Response(201, {"loaded": loaded, "lsn": lsn})

    def _health(self, request: dict[str, Any]) -> Response:
        stats = self.service.stats()
        status = "poisoned" if stats["poisoned"] else "ok"
        return Response(
            200 if status == "ok" else 503,
            {
                "status": status,
                "records": stats["records"],
                "height": stats["height"],
                "lsn": stats["lsn"],
                "wal_seq": stats["wal_seq"],
            },
        )

    def _stats(self, request: dict[str, Any]) -> Response:
        payload = self.service.stats()
        if self.batcher is not None:
            payload["batcher"] = self.batcher.stats.to_dict()
        return Response(200, payload)

    def _metrics(self, request: dict[str, Any]) -> Response:
        return Response(
            200,
            to_prometheus(self.registry),
            content_type="text/plain; version=0.0.4",
        )


_ROUTES: dict[tuple[str, str], _Route] = {
    ("POST", "/v1/get"): _Route("POST", "get", ServingApp._get),
    ("POST", "/v1/insert"): _Route("POST", "insert", ServingApp._insert),
    ("POST", "/v1/delete"): _Route("POST", "delete", ServingApp._delete),
    ("POST", "/v1/range"): _Route("POST", "range", ServingApp._range),
    ("POST", "/v1/knn"): _Route("POST", "knn", ServingApp._knn),
    ("POST", "/v1/batch"): _Route("POST", "batch", ServingApp._batch),
    ("POST", "/v1/bulk"): _Route("POST", "bulk", ServingApp._bulk),
    ("GET", "/health"): _Route("GET", "health", ServingApp._health, needs_body=False),
    ("GET", "/stats"): _Route("GET", "stats", ServingApp._stats, needs_body=False),
    ("GET", "/metrics"): _Route("GET", "metrics", ServingApp._metrics, needs_body=False),
}
