"""A stdlib-asyncio HTTP/1.1 shell around :class:`ServingApp`.

Minimal by design: request line + headers + ``Content-Length`` body,
keep-alive connections, JSON in and out.  No dependency beyond the
standard library (the container the repo targets has no web framework).

Threading model: the event loop serves *reads* inline — a snapshot read
is sub-millisecond CPU work, and the GIL means a thread pool would add
handoffs without adding parallelism.  *Writes* are handed to the
:class:`~repro.server.batch.WriteBatcher`'s single writer thread and
awaited as futures, so a slow write (a split cascade, a WAL fsync)
never stalls the accept loop, and concurrent write requests coalesce
into group commits.  The app object itself is shared safely: its state
is the service (thread-safe by construction) and the metrics registry
(counter increments; per-sample exactness is not load-bearing).

:class:`ServerHandle` hosts the loop in a daemon thread for tests and
the CLI's foreground mode alike.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any

from repro.errors import ReproError
from repro.server.app import Response, ServingApp

__all__ = ["ServerHandle", "serve_app"]

#: Refuse request bodies beyond this size (a serving guard, not a limit
#: any legitimate endpoint approaches — bulk loads of millions of
#: records belong in the CLI, not a single HTTP request).
MAX_BODY_BYTES = 32 * 1024 * 1024

_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _encode(response: Response, keep_alive: bool) -> bytes:
    body = response.body_bytes()
    reason = _REASONS.get(response.status, "Unknown")
    head = (
        f"HTTP/1.1 {response.status} {reason}\r\n"
        f"Content-Type: {response.content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    )
    return head.encode() + body


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict[str, str], bytes] | None:
    """Parse one request; ``None`` on clean EOF."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise ReproError(f"malformed request line: {line!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise ReproError(f"request body of {length} bytes exceeds the cap")
    body = await reader.readexactly(length) if length else b""
    # Strip any query string; the API carries arguments in JSON bodies.
    path = target.split("?", 1)[0]
    return method, path, headers, body


async def _handle_connection(
    app: ServingApp,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    loop = asyncio.get_running_loop()
    try:
        while True:
            try:
                request = await _read_request(reader)
            except (ReproError, ValueError, asyncio.IncompleteReadError):
                writer.write(
                    _encode(
                        Response(400, {"error": "malformed request"}), False
                    )
                )
                await writer.drain()
                return
            if request is None:
                return
            method, path, headers, body = request
            keep_alive = headers.get("connection", "").lower() != "close"
            if method.upper() == "POST" and path in (
                "/v1/insert",
                "/v1/delete",
            ) and app.batcher is not None:
                # Hand the write to the batcher thread and yield the
                # loop; handle() would otherwise block it on the lock.
                response = await loop.run_in_executor(
                    None, app.handle, method, path, body
                )
            else:
                response = app.handle(method, path, body)
            writer.write(_encode(response, keep_alive))
            await writer.drain()
            if not keep_alive:
                return
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown
            pass


async def serve_app(
    app: ServingApp,
    host: str = "127.0.0.1",
    port: int = 8077,
    *,
    ready: "threading.Event | None" = None,
    bound: "list[int] | None" = None,
    stop: "asyncio.Event | None" = None,
) -> None:
    """Serve ``app`` until ``stop`` is set (or forever)."""

    connections: set["asyncio.Task[None]"] = set()

    async def client(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            connections.add(task)
        try:
            await _handle_connection(app, reader, writer)
        finally:
            if task is not None:
                connections.discard(task)

    server = await asyncio.start_server(client, host, port)
    try:
        if bound is not None:
            bound.append(server.sockets[0].getsockname()[1])
        if ready is not None:
            ready.set()
        if stop is None:
            await server.serve_forever()
        else:
            await stop.wait()
    finally:
        server.close()
        await server.wait_closed()
        # Idle keep-alive connections are parked in readline(); cancel
        # them so the loop closes without orphaned tasks.
        for task in list(connections):
            task.cancel()
        if connections:
            await asyncio.gather(*connections, return_exceptions=True)


class ServerHandle:
    """Run a serving app's event loop in a background thread.

    Used by the CLI (which then just waits for Ctrl-C) and by the HTTP
    tests (bind port 0, read :attr:`port`, talk over a real socket).
    """

    def __init__(self, app: ServingApp, host: str = "127.0.0.1", port: int = 0):
        self.app = app
        self.host = host
        self.port = port
        self._ready = threading.Event()
        self._bound: list[int] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._failure: list[BaseException] = []
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )

    def start(self) -> "ServerHandle":
        self._thread.start()
        self._ready.wait(timeout=10.0)
        if self._failure:
            raise self._failure[0]
        if not self._ready.is_set():
            raise ReproError("server failed to start within 10s")
        self.port = self._bound[0]
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self._stop = asyncio.Event()
        try:
            loop.run_until_complete(
                serve_app(
                    self.app,
                    self.host,
                    self.port,
                    ready=self._ready,
                    bound=self._bound,
                    stop=self._stop,
                )
            )
        except BaseException as exc:
            self._failure.append(exc)
            self._ready.set()
        finally:
            loop.close()

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and loop.is_running():
            loop.call_soon_threadsafe(stop.set)
        self._thread.join(timeout=10.0)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "ServerHandle":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
