"""The async HTTP/JSON serving layer over :mod:`repro.concurrency`.

``repro serve`` boots this stack: a :class:`ServingApp` (transport-free
routes + error mapping + per-endpoint metrics) over one
:class:`~repro.concurrency.TreeService`, fronted by a stdlib-asyncio
HTTP/1.1 server with a :class:`WriteBatcher` coalescing concurrent
writes into group commits.  Endpoint reference and the concurrency
model live in ``docs/SERVING.md``.
"""

from repro.server.app import Response, ServingApp, status_for
from repro.server.batch import BatchStats, WriteBatcher
from repro.server.http import ServerHandle, serve_app

__all__ = [
    "BatchStats",
    "Response",
    "ServerHandle",
    "ServingApp",
    "WriteBatcher",
    "serve_app",
    "status_for",
]
