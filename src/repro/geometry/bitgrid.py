"""Bit-native query geometry: integer interval tests on region blocks.

The hot loops of range and nearest-neighbour queries visit thousands of
:class:`~repro.geometry.region.RegionKey` blocks per query.  Decoding
every visited key into a float :class:`~repro.geometry.rect.Rect` (one
object, two tuples and ``2·ndim`` float divisions per visit) dominates
the pruning cost.  This module replaces the decode with integer prefix
arithmetic on the grid:

- :func:`query_cell_bounds` converts a query rectangle **once** into
  per-dimension integer cut-offs over the space's grid cells;
- :func:`key_intersects` tests whether a key's block intersects those
  cut-offs using only shifts, adds and comparisons;
- :func:`key_min_dist_sq` computes the k-NN lower bound straight from
  the key bits, without materialising a ``Rect``.

Exactness
---------
The float pruning test is ``space.key_rect(key).intersects(rect)`` with
half-open semantics: per dimension, ``block_lo < q_hi and q_lo <
block_hi`` where ``block_lo = lo + o/cells*span`` for an integer cell
origin ``o``.  Because ``block_lo`` is a *monotone* function of ``o``
(float arithmetic is monotone), each strict/non-strict threshold against
a query coordinate corresponds to one integer cut-off, which
:func:`query_cell_bounds` finds by evaluating the same float expression
the decode would use and adjusting by ±1.  The integer test is therefore
*exactly* equivalent to the float test for every key — the set of
visited pages, and hence every page-access count, is unchanged.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import DimensionMismatchError
from repro.geometry.rect import Rect
from repro.geometry.region import RegionKey
from repro.geometry.space import DataSpace

#: Per-dimension integer cut-offs ``(B, A)``: a block with cell origin
#: ``o`` and cell width ``w`` intersects the query iff ``o <= A`` and
#: ``o + w > B`` in every dimension.
CellBounds = tuple[tuple[int, int], ...]


def _last_cell_below(
    lo: float, span: float, cells: int, q: float, strict: bool
) -> int:
    """The largest ``m`` in ``[-1, cells]`` with ``lo + m/cells*span`` < ``q``
    (or <= ``q`` when ``strict`` is False); ``-1`` when no cell qualifies.

    Evaluates the exact float expression
    :meth:`~repro.geometry.space.DataSpace.key_rect` uses for block
    bounds, so the integer cut-off agrees with the float comparison on
    every representable block boundary.
    """
    x = (q - lo) / span * cells
    if x < -1.0:
        m = -1
    elif x > cells + 1.0:
        m = cells
    else:
        m = int(x) - 2  # start safely below, then walk up exactly
        if m < -1:
            m = -1
    while m > -1:
        v = lo + m / cells * span
        if v < q if strict else v <= q:
            break
        m -= 1
    while m < cells:
        v = lo + (m + 1) / cells * span
        if not (v < q if strict else v <= q):
            break
        m += 1
    return m


def query_cell_bounds(space: DataSpace, rect: Rect) -> CellBounds:
    """Convert a query rectangle into per-dimension integer cut-offs.

    Done once per query; afterwards every visited block is tested by
    :func:`key_intersects` with pure integer arithmetic.
    """
    if rect.ndim != space.ndim:
        raise DimensionMismatchError(
            f"query box is {rect.ndim}-d, space is {space.ndim}-d"
        )
    cells = 1 << space.resolution
    out = []
    for (lo, _), span, q_lo, q_hi in zip(
        space.bounds, space.spans, rect.lows, rect.highs
    ):
        # Block [o, o+w) intersects [q_lo, q_hi) iff block_lo < q_hi and
        # block_hi > q_lo, i.e. o <= A and o + w > B with:
        a = _last_cell_below(lo, span, cells, q_hi, strict=True)
        b = _last_cell_below(lo, span, cells, q_lo, strict=False)
        out.append((b, a))
    return tuple(out)


def key_origins(
    value: int, nbits: int, ndim: int, resolution: int
) -> tuple[list[int], list[int]]:
    """Decode a key's block to per-dimension (cell origins, halving counts).

    Bit ``t`` of the key (MSB-first) halves dimension ``t % ndim``; a set
    bit selects the upper half, advancing that dimension's origin by the
    half-width ``2**(resolution - halvings)``.
    """
    origins = [0] * ndim
    halvings = [0] * ndim
    for t in range(nbits):
        dim = t % ndim
        h = halvings[dim] + 1
        halvings[dim] = h
        if (value >> (nbits - 1 - t)) & 1:
            origins[dim] += 1 << (resolution - h)
    return origins, halvings


def key_intersects(
    value: int,
    nbits: int,
    ndim: int,
    resolution: int,
    bounds: CellBounds,
) -> bool:
    """Does the key's block intersect the query's cell cut-offs?

    Integer-only: decodes the key into per-dimension origins with shifts
    and compares against the precomputed ``(B, A)`` pairs.  Exactly
    equivalent to ``space.key_rect(key).intersects(rect)`` for the
    ``bounds`` produced by :func:`query_cell_bounds` on the same query.
    """
    origins = [0] * ndim
    halvings = [0] * ndim
    for t in range(nbits):
        dim = t % ndim
        h = halvings[dim] + 1
        halvings[dim] = h
        if (value >> (nbits - 1 - t)) & 1:
            origins[dim] += 1 << (resolution - h)
    for dim in range(ndim):
        b, a = bounds[dim]
        o = origins[dim]
        if o > a or o + (1 << (resolution - halvings[dim])) <= b:
            return False
    return True


def key_prune_dim(
    value: int,
    nbits: int,
    ndim: int,
    resolution: int,
    bounds: CellBounds,
) -> int | None:
    """The first dimension whose cut-off disjoins the key's block, if any.

    The EXPLAIN counterpart of :func:`key_intersects`: returns ``None``
    when the block intersects the query (the key is *not* pruned), and
    otherwise the lowest dimension index on which the integer cut-off
    fired — the same comparisons, so
    ``key_prune_dim(...) is None == key_intersects(...)`` for every key
    (a property test asserts the equivalence).  Only the traced query
    path calls this; the untraced hot loop stays on the boolean test.
    """
    origins = [0] * ndim
    halvings = [0] * ndim
    for t in range(nbits):
        dim = t % ndim
        h = halvings[dim] + 1
        halvings[dim] = h
        if (value >> (nbits - 1 - t)) & 1:
            origins[dim] += 1 << (resolution - h)
    for dim in range(ndim):
        b, a = bounds[dim]
        o = origins[dim]
        if o > a or o + (1 << (resolution - halvings[dim])) <= b:
            return dim
    return None


def key_min_dist_sq(
    space: DataSpace, key: RegionKey, point: Sequence[float]
) -> float:
    """Squared min distance from ``point`` to the key's block.

    Computes the block's float bounds per dimension with the same
    expressions :meth:`~repro.geometry.space.DataSpace.key_rect` uses —
    so the bound is bit-for-bit identical to the ``Rect``-based one —
    but without allocating the rectangle.
    """
    ndim = space.ndim
    cells = 1 << space.resolution
    origins, halvings = key_origins(key.value, key.nbits, ndim, space.resolution)
    bounds = space.bounds
    spans = space.spans
    total = 0.0
    for dim in range(ndim):
        lo = bounds[dim][0]
        span = spans[dim]
        o = origins[dim]
        block_lo = lo + o / cells * span
        block_hi = lo + (o + (cells >> halvings[dim])) / cells * span
        x = point[dim]
        if x < block_lo:
            total += (block_lo - x) ** 2
        elif x > block_hi:
            total += (x - block_hi) ** 2
    return total
