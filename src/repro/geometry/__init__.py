"""n-dimensional binary-partition geometry.

This subpackage provides the geometric substrate the BV-tree (and the BANG
file it generalises) is built on:

- :class:`~repro.geometry.space.DataSpace` — a bounded n-dimensional data
  space with a fixed bit resolution per dimension, mapping real-valued
  points onto an integer grid and onto interleaved *bit paths*.
- :class:`~repro.geometry.region.RegionKey` — a region of the recursive
  binary partition of the space, represented as the bit string of halving
  choices.  Two region blocks are always either nested or disjoint, which
  is exactly the "partition boundaries may not intersect" property the
  paper requires.
- :class:`~repro.geometry.rect.Rect` — axis-aligned boxes, used for range
  queries and for decoding region blocks back into coordinate space.
- :mod:`~repro.geometry.bitgrid` — bit-native query geometry: integer
  cell arithmetic that tests region blocks against query boxes and
  points without decoding a float ``Rect`` per block, exactly equivalent
  to the decoded-rect tests (the hot paths of range and k-NN queries).
"""

from repro.geometry.bitgrid import (
    CellBounds,
    key_intersects,
    key_min_dist_sq,
    key_prune_dim,
    query_cell_bounds,
)
from repro.geometry.rect import Rect
from repro.geometry.region import ROOT_KEY, RegionKey
from repro.geometry.space import DataSpace

__all__ = [
    "CellBounds",
    "DataSpace",
    "Rect",
    "RegionKey",
    "ROOT_KEY",
    "key_intersects",
    "key_min_dist_sq",
    "key_prune_dim",
    "query_cell_bounds",
]
