"""The bounded n-dimensional data space and its grid/bit-path encoding.

The paper treats records as points in the Cartesian product of the index
attribute domains.  :class:`DataSpace` pins that down concretely: each
dimension is a real interval, discretised to ``resolution`` bits, and every
point maps to an *interleaved bit path* — the infinite halving sequence of
the binary partition, truncated at the grid resolution.

Bit ``t`` of a path (counting from the first halving) refines dimension
``t % ndim``, so the partition cycles through the dimensions; this is the
symmetric treatment of dimensions the n-dimensional B-tree problem demands.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import (
    DimensionMismatchError,
    GeometryError,
    OutOfSpaceError,
)
from repro.geometry.rect import Rect
from repro.geometry.region import RegionKey


def _spread_masks(bits: int) -> tuple[tuple[int, int], ...]:
    """Shift/mask steps that interleave zeros into a ``bits``-wide int.

    Step ``(s, m)`` doubles the gap between surviving bit groups:
    ``v = (v | (v << s)) & m``.  After all steps, bit ``i`` of the input
    sits at bit ``2*i`` of the output.
    """
    steps = []
    s = bits
    while s > 1:
        s >>= 1
        block = (1 << s) - 1
        mask = 0
        pos = 0
        while pos < 2 * bits:
            mask |= block << pos
            pos += 2 * s
        steps.append((s, mask))
    return tuple(steps)


#: Steps for the maximum 64-bit per-dimension resolution.
_SPREAD64 = _spread_masks(64)


def _spread_bits(v: int) -> int:
    """Bit ``i`` of ``v`` moved to bit ``2*i`` (Morton spreading)."""
    for shift, mask in _SPREAD64:
        v = (v | (v << shift)) & mask
    return v


class DataSpace:
    """A bounded data space with a fixed per-dimension bit resolution.

    Parameters
    ----------
    bounds:
        One ``(low, high)`` pair per dimension, ``low < high``.  Points are
        indexed in the half-open box ``[low, high)`` per dimension; as a
        pragmatic concession to floating-point workloads, a coordinate
        exactly equal to ``high`` is accepted and mapped to the last grid
        cell.
    resolution:
        Bits per dimension (default 32).  Two points whose coordinates agree
        in all leading ``resolution`` bits are indistinguishable to the
        partition and are treated as duplicates by the index structures.
    """

    __slots__ = (
        "bounds",
        "resolution",
        "ndim",
        "path_bits",
        "_spans",
        "_rect_cache",
        "_rect_stats",
    )

    #: Capacity of the per-space :meth:`key_rect` decode cache.  Range
    #: and k-NN pruning are bit-native and never hit this cache; it
    #: serves the remaining decode users (checker, rendering, baselines)
    #: whose key working sets are far smaller than this bound.
    KEY_RECT_CACHE_SIZE = 4096

    def __init__(
        self,
        bounds: Sequence[tuple[float, float]],
        resolution: int = 32,
    ):
        if not bounds:
            raise GeometryError("a data space needs at least one dimension")
        if not 1 <= resolution <= 64:
            raise GeometryError(
                f"resolution must be between 1 and 64 bits, got {resolution}"
            )
        checked = []
        for i, (lo, hi) in enumerate(bounds):
            lo, hi = float(lo), float(hi)
            if not lo < hi:
                raise GeometryError(
                    f"dimension {i} has empty domain [{lo}, {hi})"
                )
            checked.append((lo, hi))
        object.__setattr__(self, "bounds", tuple(checked))
        object.__setattr__(self, "resolution", resolution)
        object.__setattr__(self, "ndim", len(checked))
        object.__setattr__(self, "path_bits", len(checked) * resolution)
        object.__setattr__(
            self, "_spans", tuple(hi - lo for lo, hi in checked)
        )
        object.__setattr__(self, "_rect_cache", {})
        # Mutable [hits, misses] holder: the space itself stays immutable,
        # the counters audit the decode cache (see rect_cache_stats).
        object.__setattr__(self, "_rect_stats", [0, 0])

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("DataSpace is immutable")

    @classmethod
    def unit(cls, ndim: int, resolution: int = 32) -> "DataSpace":
        """The unit cube ``[0, 1)^ndim``."""
        return cls([(0.0, 1.0)] * ndim, resolution=resolution)

    @property
    def spans(self) -> tuple[float, ...]:
        """Per-dimension domain widths ``high - low``."""
        return self._spans

    # ------------------------------------------------------------------
    # Point encoding
    # ------------------------------------------------------------------

    def grid(self, point: Sequence[float]) -> tuple[int, ...]:
        """Map a point to integer grid coordinates in ``[0, 2**resolution)``."""
        if len(point) != self.ndim:
            raise DimensionMismatchError(
                f"point has {len(point)} dimensions, space has {self.ndim}"
            )
        cells = 1 << self.resolution
        out = []
        for i, (x, (lo, hi), span) in enumerate(
            zip(point, self.bounds, self._spans)
        ):
            if not lo <= x <= hi:
                raise OutOfSpaceError(
                    f"coordinate {x} of dimension {i} outside [{lo}, {hi}]"
                )
            g = int((x - lo) / span * cells)
            if g >= cells:  # x == hi, or float rounding at the top edge
                g = cells - 1
            out.append(g)
        return tuple(out)

    def point_path(self, point: Sequence[float]) -> int:
        """The interleaved bit path of a point, as a ``path_bits``-bit int.

        Bit ``t`` (MSB-first) is bit ``resolution - 1 - t // ndim`` of the
        grid coordinate of dimension ``t % ndim``.
        """
        # Inlined 2-d happy path: encode is on every get/insert/query,
        # and the generic grid() tuple + zip costs more than the whole
        # encode.  Any miss (wrong arity, out of bounds) falls through to
        # the generic path, which raises the canonical errors.
        if self.ndim == 2 and len(point) == 2:
            x0, x1 = point
            (lo0, hi0), (lo1, hi1) = self.bounds
            if lo0 <= x0 <= hi0 and lo1 <= x1 <= hi1:
                res = self.resolution
                cells = 1 << res
                s0, s1 = self._spans
                g0 = int((x0 - lo0) / s0 * cells)
                g1 = int((x1 - lo1) / s1 * cells)
                if g0 >= cells:
                    g0 = cells - 1
                if g1 >= cells:
                    g1 = cells - 1
                if res <= 32:
                    # One spread pass interleaves both coordinates: bit i
                    # of the packed word lands at bit 2*i, so the high
                    # half is spread(g0) << 64 and the low is spread(g1).
                    w = _spread_bits((g0 << 32) | g1)
                    return (w >> 63) | (w & 0xFFFFFFFFFFFFFFFF)
                return (_spread_bits(g0) << 1) | _spread_bits(g1)
        return self.grid_path(self.grid(point))

    def grid_path(self, grid: Sequence[int]) -> int:
        """Interleave pre-computed grid coordinates into a bit path."""
        if len(grid) != self.ndim:
            raise DimensionMismatchError(
                f"grid point has {len(grid)} dimensions, space has {self.ndim}"
            )
        if self.ndim == 2:
            # Morton spreading: a handful of shift/mask steps instead of
            # a loop over every resolution level.  Identical output to
            # the generic loop (the geometry tests assert it bit for
            # bit); this is the hot encode step of insert and bulk_load.
            g0, g1 = grid
            return (_spread_bits(g0) << 1) | _spread_bits(g1)
        path = 0
        res = self.resolution
        for level in range(res - 1, -1, -1):
            for g in grid:
                path = (path << 1) | ((g >> level) & 1)
        return path

    def point_key(self, point: Sequence[float], depth: int) -> RegionKey:
        """The depth-``depth`` partition block containing ``point``."""
        if not 0 <= depth <= self.path_bits:
            raise GeometryError(
                f"depth {depth} out of range [0, {self.path_bits}]"
            )
        path = self.point_path(point)
        return RegionKey(depth, path >> (self.path_bits - depth))

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------

    def key_rect(self, key: RegionKey) -> Rect:
        """Decode a region key into its block's coordinate rectangle.

        Decodes are memoised in a per-space LRU cache (key → ``Rect``);
        both are immutable, so sharing the result is safe.  Traversals
        that revisit the same region keys (checker sweeps, rendering,
        the decode-based baselines) hit the cache instead of re-deriving
        the box from the bit string.

        Thread-safe without a lock: a space is shared by all concurrent
        snapshot readers of a served tree, and a mutex here would tax
        every decode of the single-threaded baselines, so the LRU
        bookkeeping leans on the GIL instead — each individual dict
        operation is atomic, and the only cross-thread hazards are a
        recency ``del`` racing another reader's refresh of the same key
        and an eviction racing a refresh of its victim, both absorbed by
        the ``except`` arms below (the re-insert is idempotent; a lost
        eviction round is healed by the ``while`` on the next miss,
        which may transiently leave the cache a few entries over
        capacity).  The stats counters may likewise drop increments
        under contention; they are advisory, not accounting.
        """
        if key.nbits > self.path_bits:
            raise GeometryError(
                f"key of {key.nbits} bits exceeds space depth {self.path_bits}"
            )
        cache = self._rect_cache
        cached = cache.get(key)
        if cached is not None:
            self._rect_stats[0] += 1
            # Refresh recency: dicts iterate in insertion order, so
            # re-inserting implements least-recently-used eviction.
            try:
                del cache[key]
            except KeyError:
                pass  # a racing reader already refreshed this key
            cache[key] = cached
            return cached
        self._rect_stats[1] += 1
        rect = self.decode_rect(key)
        while len(cache) >= self.KEY_RECT_CACHE_SIZE:
            try:
                del cache[next(iter(cache))]
            except (KeyError, RuntimeError, StopIteration):
                break  # racing eviction/refresh; the next miss heals it
        cache[key] = rect
        return rect

    def decode_rect(self, key: RegionKey) -> Rect:
        """Decode a region key into a fresh ``Rect``, bypassing the cache.

        This is the raw decode :meth:`key_rect` memoises.  It exists
        separately so cost comparisons against the pre-cache behaviour
        stay possible (``repro perf`` times the seed's range-query path
        through it); ordinary callers want :meth:`key_rect`.
        """
        if key.nbits > self.path_bits:
            raise GeometryError(
                f"key of {key.nbits} bits exceeds space depth {self.path_bits}"
            )
        cells = 1 << self.resolution
        origins = [0] * self.ndim
        halvings = [0] * self.ndim
        for t, bit in enumerate(key.bits()):
            dim = t % self.ndim
            halvings[dim] += 1
            if bit:
                origins[dim] += cells >> halvings[dim]
        lows = []
        highs = []
        for dim in range(self.ndim):
            lo, _ = self.bounds[dim]
            span = self._spans[dim]
            width = cells >> halvings[dim]
            lows.append(lo + origins[dim] / cells * span)
            highs.append(lo + (origins[dim] + width) / cells * span)
        return Rect(lows, highs)

    def rect_cache_stats(self) -> dict[str, float | int]:
        """Hit/miss audit of the :meth:`key_rect` decode cache.

        Exposed as ``MetricsRegistry`` gauges in the perf suite's
        observability block (``repro perf --json``) so a shrinking hit
        rate — a key working set outgrowing ``KEY_RECT_CACHE_SIZE`` —
        shows up in the benchmark artifact instead of silently costing
        decodes.
        """
        hits, misses = self._rect_stats
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "size": len(self._rect_cache),
            "capacity": self.KEY_RECT_CACHE_SIZE,
            "hit_ratio": (hits / total) if total else 0.0,
        }

    def whole_rect(self) -> Rect:
        """The rectangle covering the entire space."""
        return Rect(
            [lo for lo, _ in self.bounds], [hi for _, hi in self.bounds]
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataSpace):
            return NotImplemented
        # Two spaces are interchangeable only when their bounds match
        # bit-for-bit (same grid, same point paths), so exact equality is
        # the contract — it must also stay consistent with __hash__.
        return self.bounds == other.bounds and self.resolution == other.resolution  # lint: ignore[R1] -- identity, matches __hash__

    def __hash__(self) -> int:
        return hash((self.bounds, self.resolution))

    def __repr__(self) -> str:
        dims = " x ".join(f"[{lo:g},{hi:g})" for lo, hi in self.bounds)
        return f"DataSpace({dims}, resolution={self.resolution})"
