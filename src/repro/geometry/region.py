"""Region keys of the recursive binary partition.

A :class:`RegionKey` identifies one block of the recursive binary
partitioning of the data space.  The partition halves the space cyclically
by dimension: the first bit halves dimension 0, the second bit dimension 1,
and so on, wrapping around.  A key is simply the sequence of halving
choices (0 = lower half, 1 = upper half), stored MSB-first in an integer.

The representation gives the BV-tree's geometric guarantees for free:

- ``a.encloses(b)`` iff ``a`` is a *proper prefix* of ``b`` — region blocks
  are either nested or disjoint, never partially overlapping, so partition
  boundaries never intersect (the paper's core topological requirement).
- Point location is longest-prefix matching on the point's interleaved bit
  path, which implements the BANG file's "holey region" semantics
  automatically: a point belongs to the *most specific* region that
  contains it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.errors import GeometryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.geometry.rect import Rect
    from repro.geometry.space import DataSpace


class RegionKey:
    """An immutable bit string of halving choices, MSB-first.

    ``nbits`` is the number of halvings; ``value`` holds the choices in its
    low ``nbits`` bits, with the *first* halving in the most significant of
    those bits.  The empty key (``nbits == 0``) is the whole data space and
    is available as :data:`ROOT_KEY`.
    """

    __slots__ = ("nbits", "value", "_bits")

    def __init__(self, nbits: int, value: int):
        if nbits < 0:
            raise GeometryError(f"negative key length {nbits}")
        if value < 0 or value >> nbits:
            raise GeometryError(
                f"key value {value:#x} does not fit in {nbits} bits"
            )
        object.__setattr__(self, "nbits", nbits)
        object.__setattr__(self, "value", value)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("RegionKey is immutable")

    @classmethod
    def from_bits(cls, bits: str) -> "RegionKey":
        """Build a key from a string like ``"0110"`` (empty string = root)."""
        if bits and set(bits) - {"0", "1"}:
            raise GeometryError(f"invalid bit string {bits!r}")
        return cls(len(bits), int(bits, 2) if bits else 0)

    # ------------------------------------------------------------------
    # Prefix algebra
    # ------------------------------------------------------------------

    def is_prefix_of(self, other: "RegionKey") -> bool:
        """True if this key is a (not necessarily proper) prefix of other."""
        return (
            self.nbits <= other.nbits
            and (other.value >> (other.nbits - self.nbits)) == self.value
        )

    def encloses(self, other: "RegionKey") -> bool:
        """True if this block strictly contains ``other``'s block.

        Equivalent to being a *proper* prefix.
        """
        return self.nbits < other.nbits and self.is_prefix_of(other)

    def disjoint(self, other: "RegionKey") -> bool:
        """True if the two blocks share no point."""
        return not (self.is_prefix_of(other) or other.is_prefix_of(self))

    def contains_path(self, path: int, path_len: int) -> bool:
        """True if a point with the given bit path lies in this block."""
        if path_len < self.nbits:
            raise GeometryError(
                f"path of {path_len} bits is shorter than key of {self.nbits}"
            )
        return (path >> (path_len - self.nbits)) == self.value

    def common_prefix(self, other: "RegionKey") -> "RegionKey":
        """The longest key that is a prefix of both."""
        n = min(self.nbits, other.nbits)
        a = self.value >> (self.nbits - n)
        b = other.value >> (other.nbits - n)
        x = a ^ b
        # The common prefix ends at the highest differing bit.
        length = n if not x else n - x.bit_length()
        return RegionKey(length, a >> (n - length))

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------

    def child(self, bit: int) -> "RegionKey":
        """The half selected by ``bit`` (0 = lower, 1 = upper)."""
        if bit not in (0, 1):
            raise GeometryError(f"halving bit must be 0 or 1, got {bit}")
        return RegionKey(self.nbits + 1, (self.value << 1) | bit)

    def parent(self) -> "RegionKey":
        """The block this one was split from."""
        if self.nbits == 0:
            raise GeometryError("the root region has no parent")
        return RegionKey(self.nbits - 1, self.value >> 1)

    def sibling(self) -> "RegionKey":
        """The other half of this block's parent."""
        if self.nbits == 0:
            raise GeometryError("the root region has no sibling")
        return RegionKey(self.nbits, self.value ^ 1)

    def bit(self, i: int) -> int:
        """The i-th halving choice (0-based from the first halving)."""
        if not 0 <= i < self.nbits:
            raise GeometryError(f"bit index {i} out of range for {self}")
        return (self.value >> (self.nbits - 1 - i)) & 1

    def bits(self) -> Iterator[int]:
        """Yield the halving choices in order."""
        for i in range(self.nbits):
            yield (self.value >> (self.nbits - 1 - i)) & 1

    def prefix(self, length: int) -> "RegionKey":
        """The first ``length`` halvings of this key."""
        if not 0 <= length <= self.nbits:
            raise GeometryError(
                f"prefix length {length} out of range for {self}"
            )
        return RegionKey(length, self.value >> (self.nbits - length))

    def extended_by(self, path: int, path_len: int, extra: int) -> "RegionKey":
        """Extend this key with the next ``extra`` bits of a point path.

        The path must lie inside this block; the result is the depth
        ``nbits + extra`` block of the partition containing the path.
        """
        new_len = self.nbits + extra
        if new_len > path_len:
            raise GeometryError(
                f"cannot extend key of {self.nbits} bits by {extra} within a "
                f"{path_len}-bit path"
            )
        return RegionKey(new_len, path >> (path_len - new_len))

    # ------------------------------------------------------------------
    # Decoding to coordinate space
    # ------------------------------------------------------------------

    def to_rect(self, space: "DataSpace") -> "Rect":
        """Decode this block into a rectangle of ``space`` coordinates."""
        return space.key_rect(self)

    def split_dimension(self, ndim: int) -> int:
        """The dimension the *next* halving of this block would cut."""
        return self.nbits % ndim

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------

    def bit_string(self) -> str:
        """The key as a literal bit string (empty for the root).

        Memoised on first use: traced descents and EXPLAIN render the
        same key repeatedly, and the ``format`` call showed up in their
        profiles.  Keys that never print pay nothing (the slot stays
        unset until the first call).

        Thread-safe without a lock, by construction: the memo is an
        idempotent publish.  Two racing callers both derive the same
        string from the immutable ``(nbits, value)`` pair, and the slot
        write is a single atomic store — the loser overwrites an equal
        value.  A reader either sees the slot set (and returns it) or
        unset (and derives it); no torn state exists.  The concurrency
        suite's reader hammer exercises exactly this race.
        """
        try:
            return self._bits
        except AttributeError:
            bits = format(self.value, f"0{self.nbits}b") if self.nbits else ""
            object.__setattr__(self, "_bits", bits)
            return bits

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RegionKey):
            return NotImplemented
        return self.nbits == other.nbits and self.value == other.value

    def __hash__(self) -> int:
        return hash((self.nbits, self.value))

    def __lt__(self, other: "RegionKey") -> bool:
        """Lexicographic bit-string order; a prefix sorts before extensions."""
        if not isinstance(other, RegionKey):
            return NotImplemented
        n = min(self.nbits, other.nbits)
        a = self.value >> (self.nbits - n)
        b = other.value >> (other.nbits - n)
        if a != b:
            return a < b
        return self.nbits < other.nbits

    def __len__(self) -> int:
        return self.nbits

    def __repr__(self) -> str:
        return f"RegionKey({self.bit_string()!r})" if self.nbits else "RegionKey(ε)"


#: The whole data space (the empty halving sequence).
ROOT_KEY = RegionKey(0, 0)
