"""Axis-aligned rectangles (boxes) in n dimensions.

Rectangles use *half-open* interval semantics ``[lo, hi)`` in every
dimension, matching the grid semantics of the binary partition: the two
halves of a split share no point, and a recursive partition tiles the space
exactly.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.errors import DimensionMismatchError, GeometryError


class Rect:
    """An axis-aligned box ``[lows[i], highs[i])`` in each dimension ``i``.

    Instances are immutable.  Degenerate (zero-width) dimensions are
    rejected because a half-open empty interval cannot contain anything and
    is always a caller bug in this library.
    """

    __slots__ = ("lows", "highs")

    def __init__(self, lows: Sequence[float], highs: Sequence[float]):
        if len(lows) != len(highs):
            raise DimensionMismatchError(
                f"lows has {len(lows)} dimensions but highs has {len(highs)}"
            )
        if not lows:
            raise GeometryError("a rectangle needs at least one dimension")
        for lo, hi in zip(lows, highs):
            if not lo < hi:
                raise GeometryError(f"empty interval [{lo}, {hi}) in rectangle")
        object.__setattr__(self, "lows", tuple(float(v) for v in lows))
        object.__setattr__(self, "highs", tuple(float(v) for v in highs))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Rect is immutable")

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return len(self.lows)

    def contains_point(self, point: Sequence[float]) -> bool:
        """Return True if ``point`` lies inside (half-open semantics)."""
        if len(point) != self.ndim:
            raise DimensionMismatchError(
                f"point has {len(point)} dimensions, rect has {self.ndim}"
            )
        return all(
            lo <= x < hi for x, lo, hi in zip(point, self.lows, self.highs)
        )

    def contains_rect(self, other: "Rect") -> bool:
        """Return True if ``other`` lies entirely inside this rectangle."""
        self._check_dim(other)
        return all(
            slo <= olo and ohi <= shi
            for slo, shi, olo, ohi in zip(
                self.lows, self.highs, other.lows, other.highs
            )
        )

    def intersects(self, other: "Rect") -> bool:
        """Return True if the two rectangles share at least one point."""
        self._check_dim(other)
        return all(
            slo < ohi and olo < shi
            for slo, shi, olo, ohi in zip(
                self.lows, self.highs, other.lows, other.highs
            )
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """Return the overlapping rectangle, or None if disjoint."""
        if not self.intersects(other):
            return None
        lows = tuple(max(a, b) for a, b in zip(self.lows, other.lows))
        highs = tuple(min(a, b) for a, b in zip(self.highs, other.highs))
        return Rect(lows, highs)

    def volume(self) -> float:
        """Product of the side lengths."""
        result = 1.0
        for lo, hi in zip(self.lows, self.highs):
            result *= hi - lo
        return result

    def sides(self) -> Iterator[float]:
        """Yield the side length in each dimension."""
        for lo, hi in zip(self.lows, self.highs):
            yield hi - lo

    def center(self) -> tuple[float, ...]:
        """Midpoint of the box."""
        return tuple((lo + hi) / 2.0 for lo, hi in zip(self.lows, self.highs))

    def _check_dim(self, other: "Rect") -> None:
        if other.ndim != self.ndim:
            raise DimensionMismatchError(
                f"mixed {self.ndim}-d and {other.ndim}-d rectangles"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rect):
            return NotImplemented
        # Two Rects are "the same rectangle" only bit-for-bit — exact
        # identity is the contract here and must stay consistent with
        # __hash__; tolerance-based comparison belongs to the callers.
        return self.lows == other.lows and self.highs == other.highs  # lint: ignore[R1] -- identity, matches __hash__

    def __hash__(self) -> int:
        return hash((self.lows, self.highs))

    def __repr__(self) -> str:
        intervals = ", ".join(
            f"[{lo:g}, {hi:g})" for lo, hi in zip(self.lows, self.highs)
        )
        return f"Rect({intervals})"
