"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all exceptions raised by this library."""


class GeometryError(ReproError):
    """Invalid geometric input (dimension mismatch, out-of-space point...)."""


class DimensionMismatchError(GeometryError):
    """An operation mixed objects of different dimensionality."""


class OutOfSpaceError(GeometryError):
    """A point lies outside the data space it is being indexed in."""


class ResolutionExhaustedError(ReproError):
    """A region could not be split within the bit resolution of the space.

    This occurs when too many points share the same bit path, e.g. more
    than a page's worth of exact duplicates at full resolution.
    """


class StorageError(ReproError):
    """Base class for paged-storage failures."""


class PageNotFoundError(StorageError):
    """A page id was read or freed that is not currently allocated."""


class PageOverflowError(StorageError):
    """More payload was written to a page than its byte capacity allows."""


class WalCorruptionError(StorageError):
    """A write-ahead-log or page-file record failed its integrity checks.

    Raised when corruption is found somewhere recovery cannot repair —
    a bad magic number, a checksum mismatch inside a checkpointed page
    file.  A torn *tail* of the WAL is not corruption: recovery discards
    it silently, exactly as a real crash demands.
    """


class RecoveryError(StorageError):
    """Crash recovery could not rebuild a consistent store or tree."""


class SimulatedCrashError(StorageError):
    """A :class:`~repro.storage.faults.FaultPlan` crash point fired.

    The durable store that raised this is dead: every further mutation
    raises :class:`StorageError`.  Its on-disk files are left exactly as
    the simulated crash tore them — recover with
    :func:`repro.storage.durable.recover_store`.
    """


class TreeInvariantError(ReproError):
    """An internal structural invariant of an index was violated.

    Raised by the invariant checkers; seeing this in production code is a
    bug in the library, never a user error.
    """


class KeyNotFoundError(ReproError):
    """An exact-match lookup or deletion did not find the requested key."""


class DuplicateKeyError(ReproError):
    """An insertion would create a duplicate where duplicates are forbidden."""
