"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all exceptions raised by this library."""


class GeometryError(ReproError):
    """Invalid geometric input (dimension mismatch, out-of-space point...)."""


class DimensionMismatchError(GeometryError):
    """An operation mixed objects of different dimensionality."""


class OutOfSpaceError(GeometryError):
    """A point lies outside the data space it is being indexed in."""


class ResolutionExhaustedError(ReproError):
    """A region could not be split within the bit resolution of the space.

    This occurs when too many points share the same bit path, e.g. more
    than a page's worth of exact duplicates at full resolution.
    """


class StorageError(ReproError):
    """Base class for paged-storage failures."""


class PageNotFoundError(StorageError):
    """A page id was read or freed that is not currently allocated."""


class PageOverflowError(StorageError):
    """More payload was written to a page than its byte capacity allows."""


class TreeInvariantError(ReproError):
    """An internal structural invariant of an index was violated.

    Raised by the invariant checkers; seeing this in production code is a
    bug in the library, never a user error.
    """


class KeyNotFoundError(ReproError):
    """An exact-match lookup or deletion did not find the requested key."""


class DuplicateKeyError(ReproError):
    """An insertion would create a duplicate where duplicates are forbidden."""
