"""Benchmark result records and their JSON round-trip.

A suite run serialises to ``BENCH_<suite>.json`` at the repository root —
one file per suite, overwritten per run, committed alongside the change it
measures so the wall-clock trajectory lives in history next to the code.
The schema is documented in ``docs/PERFORMANCE.md``; :func:`compare` diffs
two snapshots for the CLI's ``--baseline`` mode.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ReproError

__all__ = [
    "BenchResult",
    "SuiteResult",
    "compare",
    "default_path",
]

#: Bumped when the JSON schema changes shape incompatibly.
SCHEMA_VERSION = 1


@dataclass
class BenchResult:
    """Wall-clock samples and counters for one benchmark case."""

    name: str
    description: str
    ops: int
    repeats: int
    warmup: int
    samples: list[float]
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def best(self) -> float:
        """Fastest sample in seconds (the headline estimator)."""
        return min(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    @property
    def per_op_us(self) -> float:
        """Best time per logical operation, in microseconds."""
        return self.best / self.ops * 1e6

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "ops": self.ops,
            "repeats": self.repeats,
            "warmup": self.warmup,
            "samples": self.samples,
            "best": self.best,
            "mean": self.mean,
            "per_op_us": self.per_op_us,
            "counters": self.counters,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "BenchResult":
        return cls(
            name=data["name"],
            description=data["description"],
            ops=data["ops"],
            repeats=data["repeats"],
            warmup=data["warmup"],
            samples=list(data["samples"]),
            counters=dict(data.get("counters", {})),
        )


@dataclass
class SuiteResult:
    """Everything one ``repro perf`` run measured."""

    suite: str
    created: str
    scale: dict[str, Any]
    results: list[BenchResult]
    #: Cross-case figures (speedups, equal-visit checks) computed by the
    #: runner; see :func:`repro.perf.runner.derive_metrics`.
    derived: dict[str, Any] = field(default_factory=dict)
    #: Metrics-registry snapshot and tracing-overhead figures from the
    #: observability probe (:mod:`repro.perf.obsprobe`).  Additive field:
    #: absent in pre-probe snapshots, so the schema version is unchanged.
    observability: dict[str, Any] = field(default_factory=dict)
    #: Guarantee-monitor verdicts, audit result, monitor overhead and the
    #: columnar health time series from the doctor probe
    #: (:func:`repro.perf.obsprobe.health_snapshot`).  Additive like
    #: ``observability``: absent in older snapshots, schema unchanged.
    health: dict[str, Any] = field(default_factory=dict)
    #: WAL overhead, fsync cost, crash-recovery wall clock and the
    #: recovered-tree guarantee verdicts from the durability probe
    #: (:func:`repro.perf.durability.durability_snapshot`).  Additive
    #: like the two blocks above: absent in older snapshots.
    durability: dict[str, Any] = field(default_factory=dict)
    #: Object-vs-columnar lane timings, speedups and the layout-oracle
    #: verdicts from the columnar probe
    #: (:func:`repro.perf.columnar_probe.columnar_snapshot`).  Additive
    #: like the blocks above: absent in older snapshots.
    columnar: dict[str, Any] = field(default_factory=dict)
    #: Cost-profiler overhead ratios and its per-kind view of the timed
    #: loop from the profiler probe
    #: (:func:`repro.perf.profileprobe.profile_snapshot`).  Additive
    #: like the blocks above: absent in older snapshots.
    profile: dict[str, Any] = field(default_factory=dict)
    #: Concurrent-serving throughput and latency quantiles across the
    #: three query:update mixes from the serving probe
    #: (:func:`repro.perf.serving.serving_snapshot`).  Additive like the
    #: blocks above: absent in older snapshots.
    serving: dict[str, Any] = field(default_factory=dict)

    def result(self, name: str) -> BenchResult:
        """The named case's result (ReproError if the run skipped it)."""
        for result in self.results:
            if result.name == name:
                return result
        raise ReproError(f"suite {self.suite!r} has no case {name!r}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "suite": self.suite,
            "created": self.created,
            "scale": self.scale,
            "results": [result.to_dict() for result in self.results],
            "derived": self.derived,
            "observability": self.observability,
            "health": self.health,
            "durability": self.durability,
            "columnar": self.columnar,
            "profile": self.profile,
            "serving": self.serving,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n"

    def write(self, path: Path | str) -> Path:
        """Serialise to ``path`` and return it."""
        target = Path(path)
        target.write_text(self.to_json())
        return target

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SuiteResult":
        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ReproError(
                f"unsupported BENCH schema version {version!r} "
                f"(this build reads version {SCHEMA_VERSION})"
            )
        return cls(
            suite=data["suite"],
            created=data["created"],
            scale=dict(data["scale"]),
            results=[BenchResult.from_dict(r) for r in data["results"]],
            derived=dict(data.get("derived", {})),
            observability=dict(data.get("observability", {})),
            health=dict(data.get("health", {})),
            durability=dict(data.get("durability", {})),
            columnar=dict(data.get("columnar", {})),
            profile=dict(data.get("profile", {})),
            serving=dict(data.get("serving", {})),
        )

    @classmethod
    def load(cls, path: Path | str) -> "SuiteResult":
        """Deserialise a snapshot previously written by :meth:`write`."""
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(f"cannot read benchmark snapshot {path}: {exc}")
        return cls.from_dict(data)


def default_path(suite: str, root: Path | str | None = None) -> Path:
    """``BENCH_<suite>.json`` at the repository root (or ``root``)."""
    base = Path(root) if root is not None else _repo_root()
    return base / f"BENCH_{suite}.json"


def _repo_root() -> Path:
    """The repository root (three levels above ``src/repro/perf``)."""
    return Path(__file__).resolve().parents[3]


def compare(
    baseline: SuiteResult, current: SuiteResult
) -> list[dict[str, Any]]:
    """Per-case comparison rows between two snapshots.

    ``speedup`` is baseline-best over current-best: above 1.0 means the
    current run is faster.  Cases present in only one snapshot are listed
    with the other side's fields as ``None``.
    """
    rows: list[dict[str, Any]] = []
    base_by_name = {r.name: r for r in baseline.results}
    seen: set[str] = set()
    for result in current.results:
        seen.add(result.name)
        base = base_by_name.get(result.name)
        rows.append({
            "name": result.name,
            "baseline_best": base.best if base else None,
            "current_best": result.best,
            "speedup": (base.best / result.best) if base else None,
        })
    for name, base in base_by_name.items():
        if name not in seen:
            rows.append({
                "name": name,
                "baseline_best": base.best,
                "current_best": None,
                "speedup": None,
            })
    return rows
