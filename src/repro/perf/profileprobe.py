"""The cost-profiler probe: the profiler's own overhead, measured.

Runs once per ``repro perf`` suite and fills the ``profile`` block of
``BENCH_<suite>.json`` with the two numbers the acceptance gate reads:

- ``profiler_overhead_ratio`` — the exact-match loop with an attached
  :class:`~repro.obs.OpProfiler` against the same loop bare.  The
  profiler's read-path cost is two clock reads, an IO-stat read and one
  raw-sample append per op (histograms are folded in batches, see
  :meth:`~repro.obs.metrics.Histogram.observe_many`); the budget is
  **1.05x**.
- ``detached_ratio`` — the same loop again after ``detach()``.  This is
  the "disabled path unchanged" proof: once the profiler lets go, the
  read path must time like it was never there (the hook is one ``is
  None`` attribute check).

Measuring a few-hundred-nanosecond hook under multi-percent machine
noise takes more care than the tracing probe next door
(:mod:`repro.perf.obsprobe`) needs for its coarser gates, so this probe
layers three defences:

- **Deep tree.**  The hook is a fixed cost per op, so the honest ratio
  depends on the denominator; the probe populates ``PROFILE_POINTS``
  records (capped by the scale) so the timed descents run at serving
  depth, not toy depth.
- **Paired small chunks.**  Machine noise (frequency scaling, steal
  time) drifts on a scale of whole timing loops, so bare and profiled
  are timed back-to-back on the same warmed ``PROFILE_CHUNK``-op chunk
  each round, and each round contributes a *ratio*; both sides of every
  ratio saw the same noise window.  The configuration order rotates
  each round so within-round drift cannot systematically penalise one
  configuration.
- **Median of ratios.**  The reported ratio is the median across
  ``PROFILE_ROUNDS`` rounds — robust to the occasional round that lands
  on a descheduling spike.

The block also carries the profiler's own view of the timed rounds —
per-kind op count, latency percentiles, mean page accesses — which
doubles as an end-to-end check that the direct-call hook saw every
lookup.
"""

from __future__ import annotations

import statistics
import time
from typing import Any

from repro.core.tree import BVTree
from repro.geometry.space import DataSpace
from repro.obs import MetricsRegistry, OpProfiler
from repro.perf.registry import Scale
from repro.storage import BufferPool, ColumnarStore, PageStore
from repro.workloads import uniform

__all__ = ["PROFILE_OVERHEAD_BUDGET", "PROFILE_POINTS", "profile_snapshot"]

#: The acceptance gate on ``profiler_overhead_ratio``.
PROFILE_OVERHEAD_BUDGET = 1.05

#: Probe-tree population (capped by ``scale.n_points``) — sized so the
#: timed descents run at serving depth, not toy depth.
PROFILE_POINTS = 50_000

#: Exact-match lookups per timed chunk (small, so the three
#: configurations of one round share a single machine-noise window).
PROFILE_CHUNK = 64

#: Rounds of paired chunk timings; the reported ratios are medians
#: across them.
PROFILE_ROUNDS = 180

#: Distinct probe points cycled through by the rounds.
_PROBE_SPAN = 4096


def _profile_tree(scale: Scale) -> tuple[BVTree, list[tuple[float, ...]]]:
    space = DataSpace.unit(scale.dims, resolution=scale.resolution)
    n = min(scale.n_points, PROFILE_POINTS)
    points = [tuple(p) for p in uniform(n, scale.dims, seed=scale.seed)]
    backing = (
        ColumnarStore() if scale.layout == "columnar" else PageStore()
    )
    pool = BufferPool(backing, capacity=256)
    tree = BVTree(
        space,
        data_capacity=scale.data_capacity,
        fanout=scale.fanout,
        store=pool,
        layout=scale.layout,
    )
    return tree, points


def profile_snapshot(scale: Scale) -> dict[str, Any]:
    """The ``profile`` block of a ``BENCH_<suite>.json`` snapshot."""
    tree, points = _profile_tree(scale)
    tree.bulk_load([(p, i) for i, p in enumerate(points)], replace=True)
    span = points[: min(len(points), _PROBE_SPAN)]
    chunks = [
        span[i : i + PROFILE_CHUNK]
        for i in range(0, len(span) - PROFILE_CHUNK + 1, PROFILE_CHUNK)
    ]
    get = tree.get

    def run(chunk: list[tuple[float, ...]]) -> float:
        start = time.perf_counter()
        for point in chunk:
            get(point)
        return time.perf_counter() - start

    registry = MetricsRegistry()
    profiler = OpProfiler(tree, registry=registry)

    def timed(config: str, chunk: list[tuple[float, ...]]) -> float:
        if config == "profiled":
            profiler.attach()
            try:
                return run(chunk)
            finally:
                profiler.detach()
        return run(chunk)

    order = ("bare", "profiled", "detached")
    ratios: dict[str, list[float]] = {"profiled": [], "detached": []}
    samples: dict[str, list[float]] = {c: [] for c in order}
    for rnd in range(PROFILE_ROUNDS):
        chunk = chunks[rnd % len(chunks)]
        run(chunk)  # warm: every page of the chunk is pooled before timing
        shift = rnd % len(order)
        t: dict[str, float] = {}
        for config in order[shift:] + order[:shift]:
            t[config] = timed(config, chunk)
        for config in order:
            samples[config].append(t[config])
        ratios["profiled"].append(t["profiled"] / t["bare"])
        ratios["detached"].append(t["detached"] / t["bare"])

    per_op = 1e6 / PROFILE_CHUNK
    get_profile = profiler.profiles.get("get")
    return {
        "chunk_ops": PROFILE_CHUNK,
        "rounds": PROFILE_ROUNDS,
        "tree_points": tree.count,
        "tree_height": tree.height,
        "budget_ratio": PROFILE_OVERHEAD_BUDGET,
        "bare_us_per_op": statistics.median(samples["bare"]) * per_op,
        "profiled_us_per_op": (
            statistics.median(samples["profiled"]) * per_op
        ),
        "detached_us_per_op": (
            statistics.median(samples["detached"]) * per_op
        ),
        "profiler_overhead_ratio": statistics.median(ratios["profiled"]),
        "detached_ratio": statistics.median(ratios["detached"]),
        "get": (
            {
                "ops": get_profile.ops,
                "p50_us": get_profile.latency_us.quantile(0.5),
                "p99_us": get_profile.latency_us.quantile(0.99),
                "mean_us": get_profile.latency_us.mean,
                "mean_pages": get_profile.pages.mean,
            }
            if get_profile is not None
            else None
        ),
    }
