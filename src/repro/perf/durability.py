"""The durability probe: WAL overhead, fsync cost, recovery speed.

Runs once per ``repro perf`` suite (after the timed cases, like the
observability and health probes) and fills the ``durability`` block of
``BENCH_<suite>.json`` with the figures ``docs/DURABILITY.md`` quotes
and the acceptance gate reads:

- ``wal_overhead_ratio`` — insert cost through a
  :class:`~repro.storage.durable.DurableStore` in ``sync="os"`` mode
  (every mutation logged and flushed to the OS, no fsync) over the same
  loop on the in-memory :class:`~repro.storage.PageStore`.  This is the
  honest price of the durability *machinery* — encoding, framing,
  checksumming, the write syscall — and the gate holds it at or under
  3x.  Physical fsync latency is a property of the disk, not the code,
  so it is reported separately:
- ``fsync_us_per_commit`` — measured extra cost per committed operation
  in ``sync="commit"`` mode over a smaller loop (each insert is one
  group-committed transaction, so this is the per-fsync price).
- ``recovery`` — wall-clock of a real crash/recover cycle: the probe
  kills the store mid-workload through a
  :class:`~repro.storage.faults.FaultPlan`, replays the WAL and
  rebuilds the tree.
- ``recovered_health`` — the guarantee doctor driven *on the recovered
  tree* for the rest of the workload: the paper's guarantees must keep
  holding after a crash, not just the page bytes.

The probe uses temporary directories and cleans up after itself; its
population is bounded (``PROBE_POINTS``) and drawn from the same seeded
generators as the timed cases.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from typing import Any

from repro.core.tree import BVTree
from repro.errors import SimulatedCrashError
from repro.geometry.space import DataSpace
from repro.obs import run_doctor
from repro.perf.registry import Scale
from repro.storage import PageStore
from repro.storage.durable import (
    DurableStore,
    create_durable_tree,
    open_durable_tree,
)
from repro.storage.faults import FaultPlan
from repro.workloads import churn, uniform

__all__ = ["durability_snapshot"]

#: Record-count cap for the overhead loops.
PROBE_POINTS = 2000
#: Best-of repeats for each timed loop (interleaved across backends —
#: see ``_timed_inserts`` — so more repeats tighten the ratio, not just
#: the absolute figures).
PROBE_REPEATS = 5
#: Inserts in the fsync-mode loop (each is one fsynced commit, so this
#: loop pays PROBE_FSYNC_OPS physical syncs — keep it small).
PROBE_FSYNC_OPS = 128
#: Deletion fraction of the post-recovery churn stream.
RECOVERY_CHURN = 0.2


def _probe_points(scale: Scale) -> tuple[DataSpace, list[tuple[float, ...]]]:
    space = DataSpace.unit(scale.dims, resolution=scale.resolution)
    n = min(scale.n_points, PROBE_POINTS)
    # Path-deduplicate so the churn stream in the recovery leg stays
    # applicable (see repro.workloads.churn).
    seen: set[int] = set()
    points: list[tuple[float, ...]] = []
    for point in uniform(n, scale.dims, seed=scale.seed):
        path = space.point_path(point)
        if path not in seen:
            seen.add(path)
            points.append(tuple(point))
    return space, points


def _one_insert_run(
    scale: Scale,
    space: DataSpace,
    points: list[tuple[float, ...]],
    make_store: Any,
) -> float:
    """Wall clock of inserting ``points`` into one fresh tree."""
    store = make_store()
    tree = BVTree(
        space,
        data_capacity=scale.data_capacity,
        fanout=scale.fanout,
        store=store,
    )
    insert = tree.insert
    start = time.perf_counter()
    for i, point in enumerate(points):
        insert(point, i, replace=True)
    elapsed = time.perf_counter() - start
    close = getattr(store, "close", None)
    if close is not None:
        close(checkpoint=False)
    return elapsed


def _timed_inserts(
    scale: Scale,
    space: DataSpace,
    points: list[tuple[float, ...]],
    make_stores: list[Any],
    repeats: int = PROBE_REPEATS,
) -> list[float]:
    """Best-of wall clocks for several backends, *interleaved*.

    Running backend A's repeats back to back and then backend B's lets
    clock-speed drift (thermal, scheduler) masquerade as a ratio
    between them; alternating A/B/A/B inside each repeat round cancels
    it, which matters because the WAL-overhead gate *is* a ratio.
    """
    best = [float("inf")] * len(make_stores)
    for _ in range(repeats):
        for which, make_store in enumerate(make_stores):
            best[which] = min(
                best[which],
                _one_insert_run(scale, space, points, make_store),
            )
    return best


def _overhead(
    scale: Scale,
    space: DataSpace,
    points: list[tuple[float, ...]],
    workdir: str,
) -> dict[str, Any]:
    counter = [0]

    def durable_os() -> DurableStore:
        counter[0] += 1
        return DurableStore(f"{workdir}/os-{counter[0]}", sync="os")

    memory, wal = _timed_inserts(
        scale, space, points, [PageStore, durable_os]
    )

    # fsync mode over a deliberately small loop: one fsync per insert.
    fsync_points = points[:PROBE_FSYNC_OPS]

    def durable_commit() -> DurableStore:
        counter[0] += 1
        return DurableStore(f"{workdir}/commit-{counter[0]}", sync="commit")

    (fsync_total,) = _timed_inserts(
        scale, space, fsync_points, [durable_commit], repeats=1
    )
    (os_small,) = _timed_inserts(
        scale, space, fsync_points, [durable_os], repeats=1
    )

    n = len(points)
    return {
        "inserts": n,
        "memory_us_per_insert": memory / n * 1e6,
        "wal_us_per_insert": wal / n * 1e6,
        "wal_overhead_ratio": wal / memory if memory > 0 else None,
        "fsync_commits": len(fsync_points),
        "fsync_us_per_commit": max(
            0.0, (fsync_total - os_small) / len(fsync_points) * 1e6
        ),
    }


def _crash_and_recover(
    scale: Scale,
    space: DataSpace,
    points: list[tuple[float, ...]],
    workdir: str,
) -> tuple[dict[str, Any], dict[str, Any]]:
    """One full crash/recover cycle plus the doctor on the survivor."""
    directory = f"{workdir}/crash"
    # Crash roughly three quarters of the way through the insert
    # stream: an insert costs ~1.3 WAL appends (one delta record that
    # doubles as the commit marker, plus the occasional split burst).
    plan = FaultPlan(
        crash_after_appends=max(4, len(points)), tail="torn"
    )
    tree = create_durable_tree(
        directory,
        space,
        data_capacity=scale.data_capacity,
        fanout=scale.fanout,
        faults=plan,
        sync="os",
    )
    driven = 0
    try:
        for i, point in enumerate(points):
            tree.insert(point, i, replace=True)
            driven += 1
    except SimulatedCrashError:
        pass

    start = time.perf_counter()
    recovered, report = open_durable_tree(directory)
    elapsed = time.perf_counter() - start
    recovery = {
        "crashed_after_ops": driven,
        "records_scanned": report.records_scanned,
        "records_replayed": report.records_replayed,
        "committed_txns": report.committed_txns,
        "torn_tail": report.torn_tail,
        "recovered_records": recovered.count,
        "ms_total": elapsed * 1e3,
        "us_per_record": (
            elapsed / report.records_replayed * 1e6
            if report.records_replayed
            else None
        ),
    }

    # Drive the rest of the workload — with deletions — on the recovered
    # tree under the guarantee doctor: the paper's guarantees must hold
    # across the crash boundary.
    committed = {
        name
        for name in report.op_commits
        if name in ("insert", "delete", "bulk_load")
    }
    remaining = points[len([n for n in report.op_commits if n == "insert"]) :]
    operations = churn(
        remaining, delete_fraction=RECOVERY_CHURN, seed=scale.seed
    )
    result = run_doctor(
        recovered,
        operations,
        sample_every=64,
        max_samples=64,
        workload="recovered+churn",
    )
    recovered.store.close()
    recovered_health = {
        "ok": result.exit_code == 0,
        "audit_clean": result.audit.clean,
        "verdicts": result.health.verdicts,
        "ops_after_recovery": result.ops_applied,
        "committed_ops_replayed": len(committed),
    }
    return recovery, recovered_health


def durability_snapshot(scale: Scale) -> dict[str, Any]:
    """The ``durability`` block of a ``BENCH_<suite>.json`` snapshot."""
    space, points = _probe_points(scale)
    workdir = tempfile.mkdtemp(prefix="repro-durability-")
    try:
        out = {
            "probe_points": len(points),
            "overhead": _overhead(scale, space, points, workdir),
        }
        recovery, recovered_health = _crash_and_recover(
            scale, space, points, workdir
        )
        out["recovery"] = recovery
        out["recovered_health"] = recovered_health
        return out
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
