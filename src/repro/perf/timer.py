"""Wall-clock measurement primitives.

The page-access benchmarks under ``benchmarks/`` count I/O operations — a
machine-independent cost model, which is why they gate CI.  This module
measures the other axis: how long the Python implementation actually takes.
Wall-clock numbers are machine-dependent, so the harness records them as a
*trajectory* (``BENCH_*.json`` snapshots compared across commits on the
same machine) rather than asserting absolute thresholds.

Methodology is the standard microbenchmark recipe: untimed warmup runs to
populate caches and JIT-warm nothing in particular (CPython has no JIT,
but allocator pools and branch predictors do warm up), several timed
repeats with the garbage collector disabled during each sample, and the
*best* sample as the headline number — the minimum is the least noisy
estimator of the code's cost because every source of interference only
adds time ([Chen & Revels 2016]-style reasoning).
"""

from __future__ import annotations

import gc
import statistics
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable

from repro.errors import ReproError

__all__ = ["Timing", "measure"]


@dataclass
class Timing:
    """Samples from one measured benchmark case.

    ``samples`` holds one wall-clock duration (seconds) per timed repeat;
    ``last_result`` is whatever the final timed run returned, so counter
    extraction can inspect real output without an extra untimed run.
    """

    samples: list[float]
    last_result: Any = field(default=None, repr=False)

    @property
    def best(self) -> float:
        """The minimum sample — the headline estimator (module docstring)."""
        return min(self.samples)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples."""
        return statistics.fmean(self.samples)

    @property
    def median(self) -> float:
        """Median of the samples."""
        return statistics.median(self.samples)

    @property
    def stddev(self) -> float:
        """Sample standard deviation (0.0 for a single repeat)."""
        if len(self.samples) < 2:
            return 0.0
        return statistics.stdev(self.samples)


def measure(
    run: Callable[[Any], Any],
    setup: Callable[[], Any] | None = None,
    repeats: int = 5,
    warmup: int = 1,
) -> Timing:
    """Time ``run`` over ``warmup + repeats`` executions.

    ``setup`` (untimed) is invoked before *every* execution and its return
    value passed to ``run`` — benchmarks that mutate state (building a
    tree, say) get a fresh subject per sample, so every sample measures
    the same work.  Read-only benchmarks pass ``setup=None`` and receive
    ``None``.  The garbage collector is paused around each timed section
    so a collection triggered by one sample cannot be billed to another;
    its prior enabled state is restored afterwards.
    """
    if repeats < 1:
        raise ReproError(f"repeats must be at least 1, got {repeats}")
    if warmup < 0:
        raise ReproError(f"warmup must be non-negative, got {warmup}")
    samples: list[float] = []
    last_result: Any = None
    for i in range(warmup + repeats):
        state = setup() if setup is not None else None
        timed = i >= warmup
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            t0 = perf_counter()
            result = run(state)
            elapsed = perf_counter() - t0
        finally:
            if gc_was_enabled:
                gc.enable()
        if timed:
            samples.append(elapsed)
            last_result = result
    return Timing(samples=samples, last_result=last_result)
