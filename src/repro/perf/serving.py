"""The serving probe: concurrent mixed-traffic load over a TreeService.

Drives the concurrency layer the way the HTTP server does — reader
threads pinning snapshots for get/range/k-NN, one writer thread pushing
inserts and deletes through group commits — across the three
query:update mixes *Dynamic Indexability* frames (read-heavy, balanced,
write-heavy), and records per-op p50/p99 latency and aggregate ops/sec
into the additive ``serving`` block of ``BENCH_core.json``.

In-process by design: the probe measures the concurrency substrate
(snapshot pinning, version publication, lock handoff), not TCP and JSON
parsing — those belong to ``repro loadgen`` against a live ``repro
serve``.  Like every probe it runs after the timed single-threaded
cases, never concurrently with them.
"""

from __future__ import annotations

import random
import threading
from time import monotonic, perf_counter, sleep
from typing import Any, Sequence

from repro.concurrency.service import TreeService
from repro.core.tree import BVTree
from repro.errors import DuplicateKeyError, KeyNotFoundError
from repro.geometry.space import DataSpace
from repro.perf.registry import Scale
from repro.storage.pager import ColumnarStore, PageStore
from repro.workloads import uniform

__all__ = ["MIXES", "run_mix", "serving_snapshot"]

#: Query:update mixes, as the fraction of ops that are reads.
MIXES: dict[str, float] = {
    "read_heavy": 0.9,
    "balanced": 0.5,
    "write_heavy": 0.1,
}

#: Probe-tree population cap — large enough for height > 1 at probe
#: capacities, small enough that the three mixes stay in the probe's
#: wall-clock budget at full scale.
SERVING_POINTS = 8_000


def _quantile(sorted_samples: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of an already-sorted sample list."""
    if not sorted_samples:
        return 0.0
    index = min(len(sorted_samples) - 1, int(q * len(sorted_samples)))
    return sorted_samples[index]


def _build_service(scale: Scale) -> tuple[TreeService, list[tuple[float, ...]]]:
    space = DataSpace.unit(scale.dims, resolution=scale.resolution)
    n = min(scale.n_points, SERVING_POINTS)
    points = [tuple(p) for p in uniform(n, scale.dims, seed=scale.seed)]
    store = ColumnarStore() if scale.layout == "columnar" else PageStore()
    tree = BVTree(
        space,
        data_capacity=scale.data_capacity,
        fanout=scale.fanout,
        store=store,
        layout=scale.layout,
    )
    tree.bulk_load(((p, i) for i, p in enumerate(points)), replace=True)
    return TreeService(tree), points


def run_mix(
    service: TreeService,
    points: list[tuple[float, ...]],
    *,
    read_fraction: float,
    duration_s: float,
    readers: int = 4,
    seed: int = 0,
) -> dict[str, Any]:
    """Drive one mix for ``duration_s`` and summarise what happened.

    Reader threads issue snapshot reads (80% get, 15% range, 5% k-NN);
    the writer thread issues replace-inserts and deletes through
    :meth:`TreeService.apply_ops` in small groups (group-commit shaped,
    like the server's batcher).  ``read_fraction`` sets the *per-thread
    op budgets* so the offered load approximates the mix even though
    readers and the writer run freely in parallel.
    """
    ndim = service.tree.space.ndim
    stop_at = monotonic() + duration_s
    read_latencies: list[list[float]] = [[] for _ in range(readers)]
    write_latencies: list[float] = []
    misses = [0]
    errors = [0]
    lock = threading.Lock()
    # Throttle whichever side the mix de-emphasises: an op budget per
    # 10ms window derived from the read fraction.
    read_budget = max(1, int(200 * read_fraction))
    write_budget = max(1, int(200 * (1.0 - read_fraction)))

    def reader(slot: int) -> None:
        rng = random.Random(seed * 997 + slot)
        latencies = read_latencies[slot]
        try:
            while monotonic() < stop_at:
                window = monotonic() + 0.01
                for _ in range(read_budget):
                    roll = rng.random()
                    point = points[rng.randrange(len(points))]
                    t0 = perf_counter()
                    if roll < 0.80:
                        snapshot = service.snapshot()
                        try:
                            snapshot.get(point)
                        except KeyNotFoundError:
                            # The writer may have deleted it since the
                            # point list was drawn; a miss is a valid,
                            # counted outcome.
                            with lock:
                                misses[0] += 1
                    elif roll < 0.95:
                        lo = rng.random() * 0.8
                        lows = [lo] * ndim
                        highs = [lo + 0.2] * ndim
                        service.range_query(lows, highs)
                    else:
                        service.nearest(point, k=5)
                    latencies.append(perf_counter() - t0)
                slack = min(window, stop_at) - monotonic()
                if slack > 0:
                    sleep(slack)
        except BaseException:
            with lock:
                errors[0] += 1
            raise

    def writer() -> None:
        rng = random.Random(seed * 31 + 7)
        live = list(points)
        removed: list[tuple[float, ...]] = []
        try:
            while monotonic() < stop_at:
                window = monotonic() + 0.01
                group = []
                for _ in range(write_budget):
                    if removed and rng.random() < 0.5:
                        point = removed.pop(rng.randrange(len(removed)))
                        live.append(point)
                        group.append(
                            ("insert", point, rng.randrange(1 << 20), True)
                        )
                    elif len(live) > len(points) // 2:
                        point = live.pop(rng.randrange(len(live)))
                        removed.append(point)
                        group.append(("delete", point))
                    else:
                        point = removed.pop(rng.randrange(len(removed)))
                        live.append(point)
                        group.append(
                            ("insert", point, rng.randrange(1 << 20), True)
                        )
                    if len(group) == 8:
                        t0 = perf_counter()
                        service.apply_ops(group)
                        write_latencies.append(
                            (perf_counter() - t0) / len(group)
                        )
                        group = []
                if group:
                    t0 = perf_counter()
                    service.apply_ops(group)
                    write_latencies.append((perf_counter() - t0) / len(group))
                slack = min(window, stop_at) - monotonic()
                if slack > 0:
                    sleep(slack)
        except (DuplicateKeyError, KeyNotFoundError):  # pragma: no cover
            with lock:
                errors[0] += 1
            raise

    t_start = perf_counter()
    threads = [
        threading.Thread(target=reader, args=(slot,)) for slot in range(readers)
    ]
    threads.append(threading.Thread(target=writer))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = perf_counter() - t_start

    reads = sorted(
        latency for slot in read_latencies for latency in slot
    )
    writes = sorted(write_latencies)
    n_reads = len(reads)
    n_writes = sum(1 for _ in writes)  # group-commit mean per-op samples
    total_ops = n_reads + n_writes
    return {
        "read_fraction": read_fraction,
        "readers": readers,
        "duration_s": round(elapsed, 3),
        "reads": n_reads,
        "read_misses": misses[0],
        "write_groups": n_writes,
        "errors": errors[0],
        "ops_per_s": round(total_ops / elapsed, 1) if elapsed else 0.0,
        "read_p50_us": round(_quantile(reads, 0.50) * 1e6, 1),
        "read_p99_us": round(_quantile(reads, 0.99) * 1e6, 1),
        "write_p50_us": round(_quantile(writes, 0.50) * 1e6, 1),
        "write_p99_us": round(_quantile(writes, 0.99) * 1e6, 1),
        "final_lsn": service.lsn,
    }


def serving_snapshot(scale: Scale) -> dict[str, Any]:
    """The ``serving`` block of the benchmark artifact.

    One service per mix (fresh trees, so mixes do not contaminate each
    other's page structure), all three mixes of :data:`MIXES`, plus the
    consistency cross-check: after each mix the service's live record
    set must equal its final snapshot's (the writer and the versioning
    layer agree).
    """
    duration_s = 0.25 if scale.name == "smoke" else 1.0
    mixes: dict[str, Any] = {}
    for mix_name, read_fraction in MIXES.items():
        service, points = _build_service(scale)
        summary = run_mix(
            service,
            points,
            read_fraction=read_fraction,
            duration_s=duration_s,
            seed=scale.seed,
        )
        snapshot = service.snapshot()
        live = {tuple(p) for p, _ in service.tree.items()}
        pinned = {tuple(p) for p, _ in snapshot.items()}
        summary["consistent"] = live == pinned
        mixes[mix_name] = summary
    return {
        "probe_points": min(scale.n_points, SERVING_POINTS),
        "layout": scale.layout,
        "duration_per_mix_s": duration_s,
        "mixes": mixes,
    }
