"""The columnar probe: object-vs-columnar lanes plus the layout oracle.

Runs once per ``repro perf`` suite.  It builds two trees over the *same*
record population — one per page layout — and measures the hot paths the
columnar layout exists for (descent, range scan, k-NN) plus the update
paths it must not regress (insert, delete).  Alongside the timings it
runs the **differential oracle**: every exact-match answer, every range
result set, every k-NN distance list and every page-visit count must be
identical across layouts.  A divergence is a correctness bug, not a perf
artefact, so ``repro perf`` (and the CI perf-smoke lanes) fail on it.

The figures land in the ``columnar`` block of ``BENCH_<suite>.json``:

- ``lanes.{object,columnar}`` — best-of per-op microseconds per path;
- ``speedups`` — object-best over columnar-best (>1 means columnar wins);
- ``oracle`` — per-path equality verdicts and an overall ``equal`` flag.
"""

from __future__ import annotations

import time
from typing import Any

from repro.core.tree import BVTree
from repro.geometry.rect import Rect
from repro.geometry.space import DataSpace
from repro.perf.registry import Scale
from repro.perf.scenarios import build_context
from repro.storage import ColumnarStore, PageStore

__all__ = ["columnar_snapshot"]

#: Best-of repeats for the probe's timed loops (capped below the suite's
#: repeats: the probe times five paths over two lanes, and the oracle
#: part needs one pass only).
PROBE_REPEATS = 3


def _lane_tree(scale: Scale, space: DataSpace, layout: str) -> BVTree:
    store = ColumnarStore() if layout == "columnar" else PageStore()
    return BVTree(
        space,
        data_capacity=scale.data_capacity,
        fanout=scale.fanout,
        store=store,
    )


def _best(repeats: int, run: Any) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def _measure_lane(
    scale: Scale,
    space: DataSpace,
    layout: str,
    records: list[tuple[tuple[float, ...], Any]],
    query_points: list[tuple[float, ...]],
    rects: list[Rect],
    knn_points: list[tuple[float, ...]],
    repeats: int,
) -> tuple[dict[str, float], dict[str, Any]]:
    """``(per-op microseconds, oracle outputs)`` for one layout lane."""
    # Update paths: a fresh tree per repeat, inserts timed, then the
    # deletes timed on the tree those inserts produced (so the delete
    # loop exercises merges on a realistically fragmented tree).
    insert_best = float("inf")
    delete_best = float("inf")
    unique = list({space.point_path(p): p for p, _ in records}.values())
    for _ in range(repeats):
        tree = _lane_tree(scale, space, layout)
        start = time.perf_counter()
        for point, value in records:
            tree.insert(point, value, replace=True)
        insert_best = min(insert_best, time.perf_counter() - start)
        start = time.perf_counter()
        for point in unique:
            tree.delete(point)
        delete_best = min(delete_best, time.perf_counter() - start)

    # Query paths over one bulk-loaded tree (the layout under test).
    tree = _lane_tree(scale, space, layout)
    tree.bulk_load(records, replace=True)
    get = tree.get
    nearest = tree.nearest
    range_query = tree.range_query

    exact_best = _best(
        repeats, lambda: [get(point) for point in query_points]
    )
    range_best = _best(
        repeats,
        lambda: [range_query(r.lows, r.highs) for r in rects],
    )
    knn_best = _best(
        repeats, lambda: [nearest(point, k=scale.k) for point in knn_points]
    )

    # Oracle pass: one untimed sweep collecting comparable outputs.
    exact_out = [get(point) for point in query_points]
    range_out = []
    for rect in rects:
        result = range_query(rect.lows, rect.highs)
        range_out.append((result.pages_visited, sorted(result.records)))
    knn_out = []
    for point in knn_points:
        result = nearest(point, k=scale.k)
        knn_out.append(
            (result.pages_visited, [n.distance for n in result.neighbours])
        )

    timings = {
        "insert_us_per_op": insert_best / len(records) * 1e6,
        "delete_us_per_op": delete_best / len(unique) * 1e6,
        "exact_us_per_op": exact_best / len(query_points) * 1e6,
        "range_us_per_query": range_best / len(rects) * 1e6,
        "knn_us_per_query": knn_best / len(knn_points) * 1e6,
    }
    oracle = {"exact": exact_out, "range": range_out, "knn": knn_out}
    return timings, oracle


def columnar_snapshot(scale: Scale) -> dict[str, Any]:
    """The ``columnar`` block of a ``BENCH_<suite>.json`` snapshot."""
    # The fixtures come from the shared scenario builder at an
    # object-layout copy of the scale, so both lanes see the exact same
    # records and query sets regardless of what layout the suite ran on.
    from dataclasses import replace

    context = build_context(replace(scale, layout="object"))
    space = context.space
    repeats = min(scale.repeats, PROBE_REPEATS)

    lanes: dict[str, dict[str, float]] = {}
    oracles: dict[str, dict[str, Any]] = {}
    for layout in ("object", "columnar"):
        lanes[layout], oracles[layout] = _measure_lane(
            scale,
            space,
            layout,
            context.records,
            context.query_points,
            context.rects,
            context.knn_points,
            repeats,
        )

    obj, col = oracles["object"], oracles["columnar"]
    oracle = {
        "exact_equal": obj["exact"] == col["exact"],
        "range_equal": obj["range"] == col["range"],
        "knn_equal": obj["knn"] == col["knn"],
    }
    oracle["equal"] = all(oracle.values())

    o, c = lanes["object"], lanes["columnar"]
    speedups = {
        "exact_match": o["exact_us_per_op"] / c["exact_us_per_op"],
        "range": o["range_us_per_query"] / c["range_us_per_query"],
        "knn": o["knn_us_per_query"] / c["knn_us_per_query"],
        # Update-path ratios: columnar over object, the <= 1.2x budget.
        "insert_ratio": c["insert_us_per_op"] / o["insert_us_per_op"],
        "delete_ratio": c["delete_us_per_op"] / o["delete_us_per_op"],
    }
    return {
        "probe_points": scale.n_points,
        "repeats": repeats,
        "lanes": lanes,
        "speedups": speedups,
        "oracle": oracle,
    }
