"""The observability probe: metrics snapshot + tracing-overhead figure.

Runs once per ``repro perf`` suite, separately from the timed cases, and
fills the ``observability`` field of the ``BENCH_<suite>.json`` snapshot
with two things the dashboards and the acceptance gate read:

- a :class:`~repro.obs.MetricsRegistry` snapshot taken by replaying a
  bounded traced workload through a :class:`~repro.obs.MetricsSink`
  (per-op nodes-visited and guard-check histograms, split fan-out,
  buffer hit-ratio over time);
- ``overhead`` — the measured cost of the *disabled* tracer on the
  exact-match path (null sink, best-of ratio against the same loop on
  the same tree), the number ``docs/OBSERVABILITY.md`` quotes.  The
  tree's tracer is disabled in both timed loops; the ratio isolates
  run-to-run noise, so values hover around 1.0 and the gate asserts the
  *absolute* per-op cost stays small rather than chasing the ratio.

The probe workload is bounded (``PROBE_POINTS`` records) so the perf run
stays fast at every scale; its population is drawn from the same seeded
generator as the timed cases.
"""

from __future__ import annotations

import time
from typing import Any

from repro.core.tree import BVTree
from repro.geometry.space import DataSpace
from repro.obs import (
    GuaranteeMonitor,
    MetricsRegistry,
    MetricsSink,
    RingSink,
    TimeSeriesSink,
    run_doctor,
)
from repro.perf.registry import Scale
from repro.storage import BufferPool, ColumnarStore, PageStore
from repro.workloads import churn, nested_hotspot, uniform

__all__ = ["health_snapshot", "observability_snapshot"]

#: Record-count cap for the probe workload.
PROBE_POINTS = 2000
#: Exact-match lookups per timed overhead loop.
PROBE_LOOKUPS = 500
#: Best-of repeats for the overhead timing.
PROBE_REPEATS = 5


def _probe_tree(scale: Scale) -> tuple[BVTree, list[tuple[float, ...]]]:
    space = DataSpace.unit(scale.dims, resolution=scale.resolution)
    n = min(scale.n_points, PROBE_POINTS)
    points = [tuple(p) for p in uniform(n, scale.dims, seed=scale.seed)]
    backing = (
        ColumnarStore() if scale.layout == "columnar" else PageStore()
    )
    pool = BufferPool(backing, capacity=256)
    tree = BVTree(
        space,
        data_capacity=scale.data_capacity,
        fanout=scale.fanout,
        store=pool,
        layout=scale.layout,
    )
    return tree, points


def _traced_metrics(scale: Scale) -> dict[str, Any]:
    """Replay a traced workload through a MetricsSink; return its snapshot."""
    tree, points = _probe_tree(scale)
    sink = MetricsSink()
    tree.tracer.attach(sink)
    for i, point in enumerate(points):
        tree.insert(point, i, replace=True)
    for point in points[:PROBE_LOOKUPS]:
        tree.get(point)
    lo = tuple(0.25 for _ in range(scale.dims))
    hi = tuple(0.75 for _ in range(scale.dims))
    tree.range_query(lo, hi)
    for point in points[: min(len(points), 10)]:
        tree.nearest(point, k=scale.k)
    tree.tracer.detach()
    snapshot = sink.snapshot()
    # The key_rect decode-cache audit rides along as plain gauges so the
    # hit rate is visible in ``repro perf --json`` without a tracer tap
    # (the cache sits below the event stream).
    for stat, value in tree.space.rect_cache_stats().items():
        snapshot[f"space.key_rect_cache.{stat}"] = {
            "type": "gauge",
            "value": value,
        }
    return snapshot


def _overhead(scale: Scale) -> dict[str, Any]:
    """Best-of timing of the exact-match loop: disabled tracer vs ring sink.

    ``disabled_us_per_op`` (null sink, the shipping default) is the
    headline; ``ring_overhead_ratio`` shows what a live in-memory capture
    costs relative to it.
    """
    tree, points = _probe_tree(scale)
    tree.bulk_load([(p, i) for i, p in enumerate(points)], replace=True)
    probes = points[:PROBE_LOOKUPS]
    get = tree.get

    def timed() -> float:
        best = float("inf")
        for _ in range(PROBE_REPEATS):
            start = time.perf_counter()
            for point in probes:
                get(point)
            best = min(best, time.perf_counter() - start)
        return best

    disabled = timed()
    ring = RingSink(capacity=4096)
    tree.tracer.attach(ring)
    traced = timed()
    tree.tracer.detach()
    # Publish the ring's occupancy gauges so the snapshot records
    # whether the capture truncated (trace.ring.dropped > 0 means the
    # overhead figure came from a partial window).
    ring_registry = MetricsRegistry()
    ring.publish(ring_registry)
    return {
        "lookups": len(probes),
        "disabled_us_per_op": disabled / len(probes) * 1e6,
        "ring_us_per_op": traced / len(probes) * 1e6,
        "ring_overhead_ratio": traced / disabled if disabled > 0 else None,
        "ring_state": {
            name: value["value"]
            for name, value in ring_registry.snapshot().items()
        },
    }


def observability_snapshot(scale: Scale) -> dict[str, Any]:
    """The ``observability`` block of a ``BENCH_<suite>.json`` snapshot."""
    return {
        "probe_points": min(scale.n_points, PROBE_POINTS),
        "metrics": _traced_metrics(scale),
        "overhead": _overhead(scale),
    }


#: Deletion fraction of the health probe's churn stream.
HEALTH_CHURN = 0.2
#: Retained samples in the health block's time series (keeps the
#: committed BENCH file compact; the stride auto-doubles past this).
HEALTH_SERIES_SAMPLES = 128


def _monitor_overhead(scale: Scale) -> dict[str, Any]:
    """Exact-match cost with and without the monitor + time series.

    The acceptance gate: a guarantee monitor (a structural tracer tap)
    plus a sampling :class:`~repro.obs.TimeSeriesSink` must hold the
    read path within 3% of the uninstrumented loop.  Reads emit nothing
    under a tap — the guarded sites check ``tracer.enabled`` — so the
    measured cost is the two boolean attribute checks per get.
    """
    tree, points = _probe_tree(scale)
    tree.bulk_load([(p, i) for i, p in enumerate(points)], replace=True)
    probes = points[:PROBE_LOOKUPS]
    get = tree.get

    def timed() -> float:
        best = float("inf")
        for _ in range(PROBE_REPEATS):
            start = time.perf_counter()
            for point in probes:
                get(point)
            best = min(best, time.perf_counter() - start)
        return best

    bare = timed()
    monitor = GuaranteeMonitor(tree).attach()
    registry = MetricsRegistry()
    series = TimeSeriesSink(registry, every=64, prepare=monitor.publish)
    tree.tracer.add_tap(series)
    monitored = timed()
    tree.tracer.remove_tap(series)
    monitor.detach()
    return {
        "lookups": len(probes),
        "uninstrumented_us_per_op": bare / len(probes) * 1e6,
        "monitored_us_per_op": monitored / len(probes) * 1e6,
        "monitor_overhead_ratio": monitored / bare if bare > 0 else None,
    }


def health_snapshot(scale: Scale) -> dict[str, Any]:
    """The ``health`` block of a ``BENCH_<suite>.json`` snapshot.

    Runs the doctor over an adversarial churn workload at the *full*
    scale population (nested hotspot inserts with ``HEALTH_CHURN``
    interleaved deletions — the distribution the paper's guarantees are
    hardest on), audits the incremental gauges against the sweep, and
    measures the monitor's read-path overhead.  ``ok`` requires all
    three guarantee verdicts to pass *and* a clean audit, which is what
    ``repro perf --baseline`` and ``repro doctor --bench`` gate on.
    """
    space = DataSpace.unit(scale.dims, resolution=scale.resolution)
    tree = BVTree(
        space,
        data_capacity=scale.data_capacity,
        fanout=scale.fanout,
        store=(
            ColumnarStore() if scale.layout == "columnar" else PageStore()
        ),
    )
    # Churn tracks live points by float tuple, the tree by the leading
    # resolution bits: dense hotspot populations collide in those bits
    # (replace=True folds them into one record), so path-deduplicate
    # first or a later delete would target an already-replaced record.
    seen: set[Any] = set()
    points = []
    for point in nested_hotspot(scale.n_points, scale.dims, seed=scale.seed):
        path = space.point_path(point)
        if path not in seen:
            seen.add(path)
            points.append(point)
    operations = churn(
        points,
        delete_fraction=HEALTH_CHURN,
        seed=scale.seed,
    )
    result = run_doctor(
        tree,
        operations,
        sample_every=max(64, scale.n_points // HEALTH_SERIES_SAMPLES),
        max_samples=HEALTH_SERIES_SAMPLES,
        workload="nested_hotspot+churn",
    )
    state = result.monitor_state
    return {
        "workload": result.workload,
        "n_points": result.n_points,
        "ops_applied": result.ops_applied,
        "ok": result.exit_code == 0,
        "audit_clean": result.audit.clean,
        "audit_drift": result.audit.drift,
        "verdicts": result.health.verdicts,
        "findings": [
            f.to_dict()
            for f in result.health.findings
            if f.severity != "ok"
        ],
        "monitor": {
            "height": state["height"],
            "max_height_seen": state["max_height_seen"],
            "max_splits_per_op": state["max_splits_per_op"],
            "pages_by_level": state["pages_by_level"],
            "guards_by_level": state["guards_by_level"],
            "event_counts": state["event_counts"],
        },
        "overhead": _monitor_overhead(scale),
        "timeseries": result.timeseries,
    }
