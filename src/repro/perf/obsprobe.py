"""The observability probe: metrics snapshot + tracing-overhead figure.

Runs once per ``repro perf`` suite, separately from the timed cases, and
fills the ``observability`` field of the ``BENCH_<suite>.json`` snapshot
with two things the dashboards and the acceptance gate read:

- a :class:`~repro.obs.MetricsRegistry` snapshot taken by replaying a
  bounded traced workload through a :class:`~repro.obs.MetricsSink`
  (per-op nodes-visited and guard-check histograms, split fan-out,
  buffer hit-ratio over time);
- ``overhead`` — the measured cost of the *disabled* tracer on the
  exact-match path (null sink, best-of ratio against the same loop on
  the same tree), the number ``docs/OBSERVABILITY.md`` quotes.  The
  tree's tracer is disabled in both timed loops; the ratio isolates
  run-to-run noise, so values hover around 1.0 and the gate asserts the
  *absolute* per-op cost stays small rather than chasing the ratio.

The probe workload is bounded (``PROBE_POINTS`` records) so the perf run
stays fast at every scale; its population is drawn from the same seeded
generator as the timed cases.
"""

from __future__ import annotations

import time
from typing import Any

from repro.core.tree import BVTree
from repro.geometry.space import DataSpace
from repro.obs import MetricsSink, RingSink
from repro.perf.registry import Scale
from repro.storage import BufferPool, PageStore
from repro.workloads import uniform

__all__ = ["observability_snapshot"]

#: Record-count cap for the probe workload.
PROBE_POINTS = 2000
#: Exact-match lookups per timed overhead loop.
PROBE_LOOKUPS = 500
#: Best-of repeats for the overhead timing.
PROBE_REPEATS = 5


def _probe_tree(scale: Scale) -> tuple[BVTree, list[tuple[float, ...]]]:
    space = DataSpace.unit(scale.dims, resolution=scale.resolution)
    n = min(scale.n_points, PROBE_POINTS)
    points = [tuple(p) for p in uniform(n, scale.dims, seed=scale.seed)]
    pool = BufferPool(PageStore(), capacity=256)
    tree = BVTree(
        space,
        data_capacity=scale.data_capacity,
        fanout=scale.fanout,
        store=pool,
    )
    return tree, points


def _traced_metrics(scale: Scale) -> dict[str, Any]:
    """Replay a traced workload through a MetricsSink; return its snapshot."""
    tree, points = _probe_tree(scale)
    sink = MetricsSink()
    tree.tracer.attach(sink)
    for i, point in enumerate(points):
        tree.insert(point, i, replace=True)
    for point in points[:PROBE_LOOKUPS]:
        tree.get(point)
    lo = tuple(0.25 for _ in range(scale.dims))
    hi = tuple(0.75 for _ in range(scale.dims))
    tree.range_query(lo, hi)
    for point in points[: min(len(points), 10)]:
        tree.nearest(point, k=scale.k)
    tree.tracer.detach()
    return sink.snapshot()


def _overhead(scale: Scale) -> dict[str, Any]:
    """Best-of timing of the exact-match loop: disabled tracer vs ring sink.

    ``disabled_us_per_op`` (null sink, the shipping default) is the
    headline; ``ring_overhead_ratio`` shows what a live in-memory capture
    costs relative to it.
    """
    tree, points = _probe_tree(scale)
    tree.bulk_load([(p, i) for i, p in enumerate(points)], replace=True)
    probes = points[:PROBE_LOOKUPS]
    get = tree.get

    def timed() -> float:
        best = float("inf")
        for _ in range(PROBE_REPEATS):
            start = time.perf_counter()
            for point in probes:
                get(point)
            best = min(best, time.perf_counter() - start)
        return best

    disabled = timed()
    ring = RingSink(capacity=4096)
    tree.tracer.attach(ring)
    traced = timed()
    tree.tracer.detach()
    return {
        "lookups": len(probes),
        "disabled_us_per_op": disabled / len(probes) * 1e6,
        "ring_us_per_op": traced / len(probes) * 1e6,
        "ring_overhead_ratio": traced / disabled if disabled > 0 else None,
    }


def observability_snapshot(scale: Scale) -> dict[str, Any]:
    """The ``observability`` block of a ``BENCH_<suite>.json`` snapshot."""
    return {
        "probe_points": min(scale.n_points, PROBE_POINTS),
        "metrics": _traced_metrics(scale),
        "overhead": _overhead(scale),
    }
