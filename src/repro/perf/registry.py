"""Benchmark case definitions and the suite registry.

A benchmark *case* is a named, timed callable plus the metadata needed to
report it (operation count for per-op rates, an optional counter
extractor).  Cases are produced by *factories* registered with the
:func:`benchmark` decorator; a factory receives the run's :class:`Scale`
and the shared scenario context (see :mod:`repro.perf.scenarios`), so the
expensive fixtures — the loaded tree, the query sets — are built once per
suite rather than once per case.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable

from repro.errors import ReproError

__all__ = [
    "Case",
    "CaseFactory",
    "REGISTRY",
    "SCALES",
    "Scale",
    "benchmark",
    "resolve_scale",
]


@dataclass(frozen=True)
class Scale:
    """The knobs that size a benchmark run.

    The defaults are the *full* scale the acceptance numbers in
    ``docs/PERFORMANCE.md`` are recorded at; the ``smoke`` preset trades
    statistical quality for speed and is what CI runs.
    """

    name: str = "full"
    n_points: int = 50_000
    dims: int = 2
    resolution: int = 20
    data_capacity: int = 32
    fanout: int = 32
    n_queries: int = 400
    n_range_queries: int = 100
    n_knn_queries: int = 50
    k: int = 10
    seed: int = 0
    repeats: int = 5
    warmup: int = 1
    #: Page layout the timed cases run on ("object" or "columnar"); the
    #: columnar probe always builds both lanes regardless.
    layout: str = "object"

    def to_dict(self) -> dict[str, Any]:
        """The scale as a JSON-ready mapping (recorded in every result)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


SCALES: dict[str, Scale] = {
    "full": Scale(),
    "smoke": Scale(
        name="smoke",
        n_points=2_000,
        n_queries=100,
        n_range_queries=25,
        n_knn_queries=10,
        repeats=2,
        warmup=1,
    ),
}


def resolve_scale(name: str, **overrides: Any) -> Scale:
    """Look up a preset scale and apply explicit overrides.

    Overrides with value ``None`` are ignored, so CLI options can be
    passed through unconditionally.
    """
    try:
        base = SCALES[name]
    except KeyError:
        raise ReproError(
            f"unknown scale {name!r}; presets: {sorted(SCALES)}"
        ) from None
    chosen = {k: v for k, v in overrides.items() if v is not None}
    return replace(base, **chosen) if chosen else base


@dataclass
class Case:
    """One runnable benchmark.

    ``run`` receives the value ``setup`` returned (``None`` when there is
    no setup) and its last timed return value is handed to ``counters``
    to extract machine-independent figures (page accesses, result sizes)
    that accompany the wall-clock samples in the JSON output.
    """

    name: str
    description: str
    ops: int
    run: Callable[[Any], Any]
    setup: Callable[[], Any] | None = None
    counters: Callable[[Any], dict[str, int]] | None = None
    metadata: dict[str, Any] = field(default_factory=dict)


#: A factory builds a case from the run's scale and the shared scenario
#: context (an opaque object owned by :mod:`repro.perf.scenarios`).
CaseFactory = Callable[[Scale, Any], Case]

#: Registered factories in registration order — which is execution order,
#: so suites are deterministic and the JSON output is diffable.
REGISTRY: dict[str, CaseFactory] = {}


def benchmark(name: str) -> Callable[[CaseFactory], CaseFactory]:
    """Register a case factory under ``name`` (must be unique)."""

    def register(factory: CaseFactory) -> CaseFactory:
        if name in REGISTRY:
            raise ReproError(f"benchmark {name!r} registered twice")
        REGISTRY[name] = factory
        return factory

    return register
