"""The core benchmark suite: what gets timed, over what data.

Every case runs over :mod:`repro.workloads` generators so the timed
populations are the same distributions the page-access benchmarks use.
The shared :class:`SuiteContext` is built once per run: the record set,
one bulk-loaded tree for the read-only query cases, and fixed query sets
(drawn from seeded RNGs, so two runs at the same scale time identical
work and their JSON outputs are comparable sample-for-sample).

The suite is the measurement side of the PR's three optimisations:

- ``insert`` vs ``bulk_load`` — the bottom-up builder against the
  incremental path it replaces for initial loads;
- ``range`` vs ``range_rectpath`` — bit-native pruning against the seed
  float-rect pruning (same visit set; the counters prove it);
- ``exact_match``/``knn``/``buffered_get`` — descent, best-first search
  and the :class:`~repro.storage.BufferPool` read fast path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.errors import ReproError
from repro.core import query as _query
from repro.core.tree import BVTree
from repro.geometry.rect import Rect
from repro.geometry.space import DataSpace
from repro.perf.registry import Case, Scale, benchmark
from repro.storage import BufferPool, ColumnarStore, PageStore
from repro.workloads import uniform

__all__ = ["SuiteContext", "build_context"]


def _make_store(scale: Scale) -> PageStore:
    return ColumnarStore() if scale.layout == "columnar" else PageStore()


@dataclass
class SuiteContext:
    """Fixtures shared by every case of a suite run."""

    scale: Scale
    space: DataSpace
    records: list[tuple[tuple[float, ...], Any]]
    #: Bulk-loaded over ``records``; the read-only cases query it.
    tree: BVTree
    #: Stored points to look up (exact-match hits).
    query_points: list[tuple[float, ...]]
    #: Query boxes of mixed selectivity.
    rects: list[Rect]
    #: k-NN query points (not necessarily stored).
    knn_points: list[tuple[float, ...]]


def _make_tree(scale: Scale, space: DataSpace) -> BVTree:
    return BVTree(
        space,
        data_capacity=scale.data_capacity,
        fanout=scale.fanout,
        store=_make_store(scale),
    )


def build_context(scale: Scale) -> SuiteContext:
    """Build the shared fixtures for one suite run."""
    if scale.n_points < 1:
        raise ReproError(
            f"n_points must be at least 1, got {scale.n_points}"
        )
    space = DataSpace.unit(scale.dims, resolution=scale.resolution)
    points = list(uniform(scale.n_points, scale.dims, seed=scale.seed))
    records: list[tuple[tuple[float, ...], Any]] = [
        (tuple(point), i) for i, point in enumerate(points)
    ]
    tree = _make_tree(scale, space)
    tree.bulk_load(records, replace=True)

    rng = random.Random(scale.seed + 1)
    query_points = [
        records[rng.randrange(len(records))][0]
        for _ in range(scale.n_queries)
    ]
    rects: list[Rect] = []
    for _ in range(scale.n_range_queries):
        # Mixed selectivity: edge lengths from ~1% to ~30% of the domain.
        lows = tuple(rng.uniform(0.0, 0.7) for _ in range(scale.dims))
        highs = tuple(lo + rng.uniform(0.01, 0.3) for lo in lows)
        rects.append(Rect(lows, highs))
    knn_points = [
        tuple(rng.random() for _ in range(scale.dims))
        for _ in range(scale.n_knn_queries)
    ]
    return SuiteContext(
        scale=scale,
        space=space,
        records=records,
        tree=tree,
        query_points=query_points,
        rects=rects,
        knn_points=knn_points,
    )


# ----------------------------------------------------------------------
# Build cases
# ----------------------------------------------------------------------


@benchmark("insert")
def _insert_case(scale: Scale, ctx: SuiteContext) -> Case:
    def setup() -> BVTree:
        return _make_tree(scale, ctx.space)

    def run(tree: BVTree) -> BVTree:
        for point, value in ctx.records:
            tree.insert(point, value, replace=True)
        return tree

    return Case(
        name="insert",
        description=f"incremental insert of {scale.n_points} points",
        ops=scale.n_points,
        run=run,
        setup=setup,
        counters=lambda tree: {
            "data_splits": tree.stats.data_splits,
            "height": tree.height,
        },
    )


@benchmark("bulk_load")
def _bulk_load_case(scale: Scale, ctx: SuiteContext) -> Case:
    def setup() -> BVTree:
        return _make_tree(scale, ctx.space)

    def run(tree: BVTree) -> BVTree:
        tree.bulk_load(ctx.records, replace=True)
        return tree

    return Case(
        name="bulk_load",
        description=f"bottom-up bulk load of {scale.n_points} points",
        ops=scale.n_points,
        run=run,
        setup=setup,
        counters=lambda tree: {
            "data_splits": tree.stats.data_splits,
            "height": tree.height,
        },
    )


@benchmark("exact_match")
def _exact_match_case(scale: Scale, ctx: SuiteContext) -> Case:
    def run(_: Any) -> int:
        tree = ctx.tree
        hits = 0
        for point in ctx.query_points:
            tree.get(point)
            hits += 1
        return hits

    return Case(
        name="exact_match",
        description=f"{scale.n_queries} exact-match descents (stored points)",
        ops=scale.n_queries,
        run=run,
        counters=lambda hits: {
            "hits": hits,
            "pages_per_search": ctx.tree.height + 1,
        },
    )


def _run_ranges(ctx: SuiteContext, query_fn: Any) -> dict[str, int]:
    pages = 0
    found = 0
    for rect in ctx.rects:
        result = query_fn(ctx.tree, rect)
        pages += result.pages_visited
        found += len(result)
    return {"pages_visited": pages, "records_found": found}


@benchmark("range")
def _range_case(scale: Scale, ctx: SuiteContext) -> Case:
    return Case(
        name="range",
        description=(
            f"{scale.n_range_queries} range queries, bit-native pruning"
        ),
        ops=scale.n_range_queries,
        run=lambda _: _run_ranges(ctx, _query.range_query),
        counters=lambda out: out,
    )


@benchmark("range_rectpath")
def _range_rectpath_case(scale: Scale, ctx: SuiteContext) -> Case:
    return Case(
        name="range_rectpath",
        description=(
            f"{scale.n_range_queries} range queries, seed float-rect pruning"
        ),
        ops=scale.n_range_queries,
        run=lambda _: _run_ranges(ctx, _query.range_query_rectpath),
        counters=lambda out: out,
    )


@benchmark("knn")
def _knn_case(scale: Scale, ctx: SuiteContext) -> Case:
    def run(_: Any) -> dict[str, int]:
        pages = 0
        found = 0
        for point in ctx.knn_points:
            result = ctx.tree.nearest(point, k=scale.k)
            pages += result.pages_visited
            found += len(result)
        return {"pages_visited": pages, "records_found": found}

    return Case(
        name="knn",
        description=f"{scale.n_knn_queries} {scale.k}-NN searches",
        ops=scale.n_knn_queries,
        run=run,
        counters=lambda out: out,
    )


@benchmark("buffered_get")
def _buffered_get_case(scale: Scale, ctx: SuiteContext) -> Case:
    # Built once (reads do not mutate); sized so the working set mostly
    # fits, making the timed loop dominated by the read() hit path.
    pool = BufferPool(_make_store(scale), capacity=1024)
    tree = BVTree(
        ctx.space,
        data_capacity=scale.data_capacity,
        fanout=scale.fanout,
        store=pool,
        layout=scale.layout,
    )
    tree.bulk_load(ctx.records, replace=True)
    for point in ctx.query_points:
        tree.get(point)  # warm the cache outside the timed region

    def run(_: Any) -> BufferPool:
        for point in ctx.query_points:
            tree.get(point)
        return pool

    return Case(
        name="buffered_get",
        description=(
            f"{scale.n_queries} exact-match descents through a warm "
            f"BufferPool"
        ),
        ops=scale.n_queries,
        run=run,
        counters=lambda p: {"hits": p.stats.hits, "misses": p.stats.misses},
    )
