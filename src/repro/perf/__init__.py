"""Wall-clock microbenchmark harness.

The page-access benchmarks under ``benchmarks/`` assert the paper's
machine-independent cost claims and gate CI.  This subpackage measures
what they deliberately ignore — how long the implementation actually
takes — and records it as a committed trajectory:

- :mod:`repro.perf.timer` — warmup/repeat measurement with the GC paused
  during samples;
- :mod:`repro.perf.registry` — :class:`Scale` presets, :class:`Case`
  definitions and the :func:`benchmark` factory registry;
- :mod:`repro.perf.scenarios` — the core suite (insert, bulk_load,
  exact_match, range, range_rectpath, knn, buffered_get) over
  :mod:`repro.workloads` generators;
- :mod:`repro.perf.results` — JSON round-trip to ``BENCH_<suite>.json``
  at the repository root, plus snapshot comparison;
- :mod:`repro.perf.runner` — suite execution, derived metrics and the
  text report.

Run it with ``python -m repro perf`` (see ``docs/PERFORMANCE.md``).
"""

from repro.perf.registry import (
    REGISTRY,
    SCALES,
    Case,
    Scale,
    benchmark,
    resolve_scale,
)
from repro.perf.results import (
    BenchResult,
    SuiteResult,
    compare,
    default_path,
)
from repro.perf.runner import (
    derive_metrics,
    health_regressions,
    render_text,
    run_suite,
)
from repro.perf.timer import Timing, measure
from repro.perf import scenarios as scenarios  # registers the core suite

__all__ = [
    "BenchResult",
    "Case",
    "REGISTRY",
    "SCALES",
    "Scale",
    "SuiteResult",
    "Timing",
    "benchmark",
    "compare",
    "default_path",
    "derive_metrics",
    "health_regressions",
    "measure",
    "render_text",
    "resolve_scale",
    "run_suite",
    "scenarios",
]
