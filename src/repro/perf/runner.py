"""Run a benchmark suite and render its results.

``run_suite`` executes every registered case (or a selected subset) at a
given :class:`~repro.perf.registry.Scale`, then computes the cross-case
*derived* metrics the PR's acceptance criteria are stated in:

- ``bulk_load_speedup`` — incremental-insert best over bulk-load best;
- ``range_bitnative_speedup`` — float-rect-pruning best over bit-native
  best for the identical query set;
- ``range_pages_equal`` — whether the two range paths visited exactly
  the same number of pages (they must: the integer pruning is proven
  equivalent, and this check would catch a regression of that proof).
"""

from __future__ import annotations

from datetime import datetime, timezone
from typing import Any, Callable

from repro.errors import ReproError
from repro.bench.reporting import format_table
from repro.perf import scenarios
from repro.perf.columnar_probe import columnar_snapshot
from repro.perf.durability import durability_snapshot
from repro.perf.obsprobe import health_snapshot, observability_snapshot
from repro.perf.profileprobe import profile_snapshot
from repro.perf.registry import REGISTRY, Scale
from repro.perf.results import BenchResult, SuiteResult, compare
from repro.perf.serving import serving_snapshot
from repro.perf.timer import measure

__all__ = [
    "derive_metrics",
    "health_regressions",
    "render_text",
    "run_suite",
]


def run_suite(
    scale: Scale,
    suite: str = "core",
    only: list[str] | None = None,
    progress: Callable[[str], None] | None = None,
    observability: bool = True,
) -> SuiteResult:
    """Execute the registered cases and assemble a :class:`SuiteResult`.

    ``only`` restricts the run to the named cases (suite-level derived
    metrics that need absent cases are simply omitted); ``progress`` is
    called with each case name as it starts, for CLI feedback.  With
    ``observability`` (the default), a bounded traced workload fills the
    snapshot's metrics/overhead block after the timed cases finish
    (never concurrently — the probe must not perturb the timings).
    """
    if only:
        unknown = sorted(set(only) - set(REGISTRY))
        if unknown:
            raise ReproError(
                f"unknown benchmark case(s) {unknown}; "
                f"registered: {sorted(REGISTRY)}"
            )
    context = scenarios.build_context(scale)
    results: list[BenchResult] = []
    for name, factory in REGISTRY.items():
        if only and name not in only:
            continue
        if progress is not None:
            progress(name)
        case = factory(scale, context)
        timing = measure(
            case.run,
            setup=case.setup,
            repeats=scale.repeats,
            warmup=scale.warmup,
        )
        counters = (
            case.counters(timing.last_result)
            if case.counters is not None
            else {}
        )
        results.append(
            BenchResult(
                name=case.name,
                description=case.description,
                ops=case.ops,
                repeats=scale.repeats,
                warmup=scale.warmup,
                samples=timing.samples,
                counters=counters,
            )
        )
    obs: dict[str, Any] = {}
    health: dict[str, Any] = {}
    durability: dict[str, Any] = {}
    columnar: dict[str, Any] = {}
    profile: dict[str, Any] = {}
    serving: dict[str, Any] = {}
    if observability:
        if progress is not None:
            progress("observability probe")
        obs = observability_snapshot(scale)
        if progress is not None:
            progress("health probe (guarantee doctor)")
        health = health_snapshot(scale)
        if progress is not None:
            progress("durability probe (WAL overhead + crash recovery)")
        durability = durability_snapshot(scale)
        if progress is not None:
            progress("columnar probe (layout lanes + oracle)")
        columnar = columnar_snapshot(scale)
        if progress is not None:
            progress("profiler probe (cost-profiler overhead)")
        profile = profile_snapshot(scale)
        if progress is not None:
            progress("serving probe (concurrent mixes)")
        serving = serving_snapshot(scale)
    created = datetime.now(timezone.utc).isoformat(timespec="seconds")
    return SuiteResult(
        suite=suite,
        created=created,
        scale=scale.to_dict(),
        results=results,
        derived=derive_metrics(results),
        observability=obs,
        health=health,
        durability=durability,
        columnar=columnar,
        profile=profile,
        serving=serving,
    )


def derive_metrics(results: list[BenchResult]) -> dict[str, Any]:
    """Cross-case figures (see the module docstring)."""
    by_name = {result.name: result for result in results}
    derived: dict[str, Any] = {}
    insert = by_name.get("insert")
    bulk = by_name.get("bulk_load")
    if insert is not None and bulk is not None:
        derived["bulk_load_speedup"] = insert.best / bulk.best
    native = by_name.get("range")
    rectpath = by_name.get("range_rectpath")
    if native is not None and rectpath is not None:
        derived["range_bitnative_speedup"] = rectpath.best / native.best
        derived["range_pages_equal"] = (
            native.counters.get("pages_visited")
            == rectpath.counters.get("pages_visited")
        )
        derived["range_records_equal"] = (
            native.counters.get("records_found")
            == rectpath.counters.get("records_found")
        )
    return derived


def render_text(
    result: SuiteResult, baseline: SuiteResult | None = None
) -> str:
    """A human-readable report (the CLI's default output)."""
    rows = [
        [
            r.name,
            r.ops,
            f"{r.best * 1e3:.2f}",
            f"{r.mean * 1e3:.2f}",
            f"{r.per_op_us:.2f}",
            " ".join(f"{k}={v}" for k, v in sorted(r.counters.items())),
        ]
        for r in result.results
    ]
    scale = result.scale
    blocks = [
        format_table(
            ["case", "ops", "best ms", "mean ms", "us/op", "counters"],
            rows,
            title=(
                f"suite {result.suite!r} at scale {scale.get('name')!r} "
                f"(n={scale.get('n_points')}, dims={scale.get('dims')}, "
                f"P={scale.get('data_capacity')}, F={scale.get('fanout')}, "
                f"repeats={scale.get('repeats')})"
            ),
        )
    ]
    if result.derived:
        derived_rows = [
            [key, _fmt_derived(value)]
            for key, value in sorted(result.derived.items())
        ]
        blocks.append(format_table(["derived metric", "value"], derived_rows))
    if result.observability:
        blocks.append(_render_observability(result.observability))
    if result.health:
        blocks.append(_render_health(result.health))
    if result.durability:
        blocks.append(_render_durability(result.durability))
    if result.columnar:
        blocks.append(_render_columnar(result.columnar))
    if result.profile:
        blocks.append(_render_profile(result.profile))
    if result.serving:
        blocks.append(_render_serving(result.serving))
    if baseline is not None:
        cmp_rows = []
        for row in compare(baseline, result):
            cmp_rows.append([
                row["name"],
                _fmt_ms(row["baseline_best"]),
                _fmt_ms(row["current_best"]),
                (
                    f"{row['speedup']:.2f}x"
                    if row["speedup"] is not None
                    else "-"
                ),
            ])
        blocks.append(format_table(
            ["case", "baseline ms", "current ms", "speedup"],
            cmp_rows,
            title=f"vs baseline from {baseline.created}",
        ))
        regressions = health_regressions(baseline, result)
        if regressions:
            blocks.append(
                "guarantee REGRESSIONS vs baseline:\n"
                + "\n".join(f"  {line}" for line in regressions)
            )
        elif baseline.health and result.health:
            blocks.append("guarantees: no regressions vs baseline")
    return "\n\n".join(blocks)


#: Severity order for regression detection (worse = higher).
_SEVERITY_RANK = {"ok": 0, "warning": 1, "violation": 2}


def health_regressions(
    baseline: SuiteResult, current: SuiteResult
) -> list[str]:
    """Guarantee verdicts that got *worse* since the baseline snapshot.

    Compares the ``health`` blocks: a guarantee whose verdict rank
    increased (ok → warning, warning → violation, ...), an audit that
    went from clean to drifting, or a monitor overhead ratio newly above
    1.03 each produce one line.  Snapshots without a health block (older
    schema) compare as no-regression — the block is additive.
    """
    base, cur = baseline.health, current.health
    if not base or not cur:
        return []
    out: list[str] = []
    base_verdicts = base.get("verdicts", {})
    for name, verdict in cur.get("verdicts", {}).items():
        was = base_verdicts.get(name, "ok")
        if _SEVERITY_RANK.get(verdict, 0) > _SEVERITY_RANK.get(was, 0):
            out.append(f"{name}: {was} -> {verdict}")
    if base.get("audit_clean", True) and not cur.get("audit_clean", True):
        out.append("audit: clean -> drift (incremental gauges diverged)")
    base_ratio = (base.get("overhead") or {}).get("monitor_overhead_ratio")
    cur_ratio = (cur.get("overhead") or {}).get("monitor_overhead_ratio")
    if (
        cur_ratio is not None
        and cur_ratio > 1.03
        and (base_ratio is None or base_ratio <= 1.03)
    ):
        out.append(
            f"monitor overhead: {cur_ratio:.3f}x exceeds the 3% budget"
        )
    base_dur = (baseline.durability.get("overhead") or {}).get(
        "wal_overhead_ratio"
    )
    cur_dur = (current.durability.get("overhead") or {}).get(
        "wal_overhead_ratio"
    )
    if (
        cur_dur is not None
        and cur_dur > 3.0
        and (base_dur is None or base_dur <= 3.0)
    ):
        out.append(
            f"WAL overhead: {cur_dur:.2f}x exceeds the 3x budget"
        )
    cur_rec = current.durability.get("recovered_health") or {}
    base_rec = baseline.durability.get("recovered_health") or {}
    if base_rec.get("ok", True) and cur_rec and not cur_rec.get("ok", True):
        out.append("recovered-tree guarantees: ok -> failing")
    cur_prof = current.profile.get("profiler_overhead_ratio")
    base_prof = baseline.profile.get("profiler_overhead_ratio")
    budget = current.profile.get("budget_ratio", 1.05)
    if (
        cur_prof is not None
        and cur_prof > budget
        and (base_prof is None or base_prof <= budget)
    ):
        out.append(
            f"profiler overhead: {cur_prof:.3f}x exceeds "
            f"the {budget:.2f}x budget"
        )
    return out


def _render_health(health: dict[str, Any]) -> str:
    """The guarantee-doctor block of the text report."""
    rows: list[list[Any]] = []
    for name, verdict in health.get("verdicts", {}).items():
        rows.append([f"guarantee: {name}", verdict.upper()])
    rows.append([
        "audit (incremental vs sweep)",
        "clean" if health.get("audit_clean") else "DRIFT",
    ])
    monitor = health.get("monitor", {})
    if monitor:
        rows.append(["height", monitor.get("height")])
        rows.append(["max splits per op", monitor.get("max_splits_per_op")])
    overhead = health.get("overhead", {})
    ratio = overhead.get("monitor_overhead_ratio")
    if ratio is not None:
        rows.append(["monitor overhead", f"{ratio:.3f}x"])
    return format_table(
        ["health probe", "value"],
        rows,
        title=(
            f"guarantee doctor ({health.get('workload')}, "
            f"n={health.get('n_points')}, "
            f"{health.get('ops_applied')} ops)"
        ),
    )


def _render_durability(durability: dict[str, Any]) -> str:
    """The durability-probe block of the text report."""
    rows: list[list[Any]] = []
    overhead = durability.get("overhead", {})
    if overhead:
        rows.append([
            "in-memory insert",
            f"{overhead.get('memory_us_per_insert', 0.0):.2f} us/op",
        ])
        rows.append([
            "WAL insert (sync=os)",
            f"{overhead.get('wal_us_per_insert', 0.0):.2f} us/op",
        ])
        ratio = overhead.get("wal_overhead_ratio")
        if ratio is not None:
            rows.append(["WAL overhead", f"{ratio:.2f}x"])
        rows.append([
            "fsync per commit (sync=commit)",
            f"{overhead.get('fsync_us_per_commit', 0.0):.0f} us",
        ])
    recovery = durability.get("recovery", {})
    if recovery:
        rows.append([
            "crash recovery",
            f"{recovery.get('ms_total', 0.0):.1f} ms for "
            f"{recovery.get('records_replayed')} records "
            f"({recovery.get('recovered_records')} recovered)",
        ])
        rows.append([
            "torn tail discarded",
            "yes" if recovery.get("torn_tail") else "no",
        ])
    recovered = durability.get("recovered_health", {})
    if recovered:
        if recovered.get("ok"):
            verdict = "PASS"
        else:
            verdicts = recovered.get("verdicts", {})
            detail = ", ".join(
                f"{k}={v}" for k, v in sorted(verdicts.items())
            )
            verdict = f"FAIL ({detail})"
        rows.append(["recovered-tree guarantees", verdict])
    return format_table(
        ["durability probe", "value"],
        rows,
        title=(
            f"durability probe (n={durability.get('probe_points')}, "
            f"WAL vs in-memory)"
        ),
    )


def _render_columnar(columnar: dict[str, Any]) -> str:
    """The columnar-probe block of the text report."""
    rows: list[list[Any]] = []
    lanes = columnar.get("lanes", {})
    labels = [
        ("exact_us_per_op", "exact match", "us/op"),
        ("range_us_per_query", "range query", "us/query"),
        ("knn_us_per_query", "k-NN query", "us/query"),
        ("insert_us_per_op", "insert", "us/op"),
        ("delete_us_per_op", "delete", "us/op"),
    ]
    obj = lanes.get("object", {})
    col = lanes.get("columnar", {})
    for key, label, unit in labels:
        if key in obj and key in col:
            rows.append([
                label,
                f"object {obj[key]:.2f} / columnar {col[key]:.2f} {unit}",
            ])
    speedups = columnar.get("speedups", {})
    for key in ("exact_match", "range", "knn"):
        if key in speedups:
            rows.append([f"speedup: {key}", f"{speedups[key]:.2f}x"])
    for key in ("insert_ratio", "delete_ratio"):
        if key in speedups:
            rows.append([
                f"update cost: {key}",
                f"{speedups[key]:.2f}x (budget 1.20x)",
            ])
    oracle = columnar.get("oracle", {})
    if oracle:
        rows.append([
            "layout oracle",
            "EQUAL" if oracle.get("equal") else "DIVERGED",
        ])
    return format_table(
        ["columnar probe", "value"],
        rows,
        title=(
            f"columnar probe (n={columnar.get('probe_points')}, "
            f"object vs columnar lanes)"
        ),
    )


def _render_profile(profile: dict[str, Any]) -> str:
    """The cost-profiler block of the text report."""
    rows: list[list[Any]] = []
    rows.append([
        "bare exact match",
        f"{profile.get('bare_us_per_op', 0.0):.2f} us/op",
    ])
    rows.append([
        "profiler attached",
        f"{profile.get('profiled_us_per_op', 0.0):.2f} us/op",
    ])
    ratio = profile.get("profiler_overhead_ratio")
    budget = profile.get("budget_ratio")
    if ratio is not None:
        verdict = ""
        if budget is not None:
            verdict = " (PASS)" if ratio <= budget else " (OVER BUDGET)"
        rows.append([
            f"profiler overhead (budget {budget:.2f}x)"
            if budget is not None
            else "profiler overhead",
            f"{ratio:.3f}x{verdict}",
        ])
    detached = profile.get("detached_ratio")
    if detached is not None:
        rows.append(["after detach", f"{detached:.3f}x"])
    get = profile.get("get") or {}
    if get:
        rows.append([
            "profiler's own view (get)",
            f"{get.get('ops')} ops, p50 {get.get('p50_us', 0.0):.1f}us, "
            f"p99 {get.get('p99_us', 0.0):.1f}us, "
            f"{get.get('mean_pages', 0.0):.1f} pages/op",
        ])
    return format_table(
        ["profiler probe", "value"],
        rows,
        title=(
            f"cost-profiler probe (n={profile.get('tree_points')}, "
            f"height {profile.get('tree_height')}, "
            f"{profile.get('rounds')} paired rounds)"
        ),
    )


def _render_serving(serving: dict[str, Any]) -> str:
    """The serving-probe block of the text report."""
    rows: list[list[Any]] = []
    for name, mix in serving.get("mixes", {}).items():
        rows.append([
            f"{name} (reads {mix.get('read_fraction', 0.0):.0%})",
            f"{mix.get('ops_per_s', 0.0):,.0f} ops/s, "
            f"read p50 {mix.get('read_p50_us', 0.0):.0f}us "
            f"p99 {mix.get('read_p99_us', 0.0):.0f}us, "
            f"write p50 {mix.get('write_p50_us', 0.0):.0f}us "
            f"p99 {mix.get('write_p99_us', 0.0):.0f}us",
        ])
        rows.append([
            f"  {name}: consistency",
            "OK"
            if mix.get("consistent") and not mix.get("errors")
            else f"FAIL (errors={mix.get('errors')})",
        ])
    return format_table(
        ["serving probe", "value"],
        rows,
        title=(
            f"serving probe (n={serving.get('probe_points')}, "
            f"4 readers + 1 writer, "
            f"{serving.get('duration_per_mix_s')}s per mix)"
        ),
    )


def _render_observability(obs: dict[str, Any]) -> str:
    """The observability-probe block of the text report."""
    rows: list[list[Any]] = []
    overhead = obs.get("overhead", {})
    if overhead:
        rows.append([
            "tracer disabled (null sink)",
            f"{overhead.get('disabled_us_per_op', 0.0):.2f} us/get",
        ])
        rows.append([
            "tracer + ring sink",
            f"{overhead.get('ring_us_per_op', 0.0):.2f} us/get",
        ])
        ratio = overhead.get("ring_overhead_ratio")
        if ratio is not None:
            rows.append(["ring-sink overhead", f"{ratio:.2f}x"])
    metrics = obs.get("metrics", {})
    for name in (
        "descent.nodes_visited",
        "descent.guard_checks",
        "split.fanout",
    ):
        entry = metrics.get(name)
        if entry and entry.get("count"):
            rows.append([
                name,
                f"mean {entry['mean']:.2f} over {entry['count']} ops",
            ])
    ratio_entry = metrics.get("buffer.hit_ratio")
    if ratio_entry is not None:
        rows.append(["buffer.hit_ratio", f"{ratio_entry['value']:.3f}"])
    return format_table(
        ["observability", "value"],
        rows,
        title=f"observability probe (n={obs.get('probe_points')})",
    )


def _fmt_derived(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "NO"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _fmt_ms(seconds: Any) -> str:
    return f"{seconds * 1e3:.2f}" if seconds is not None else "-"
