"""Command-line interface: run the paper's analyses and demos.

::

    python -m repro figures --fanout 24        # Figure 7-1
    python -m repro thresholds                 # §7.2/§7.3 file-size claims
    python -m repro demo --workload clustered  # build a BV-tree, show stats
    python -m repro compare --n 10000          # BV vs the baselines
    python -m repro perf --scale smoke         # wall-clock benchmark suite
    python -m repro lint src/repro tests       # domain-aware static analysis
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis import capacity, figures
from repro.bench.harness import INDEX_KINDS, build_index, index_occupancies
from repro.bench.reporting import format_table
from repro.geometry.space import DataSpace
from repro.workloads import (
    clustered,
    diagonal,
    nested_hotspot,
    promotion_storm,
    skewed,
    uniform,
    zipf_grid,
)

WORKLOADS = {
    "uniform": uniform,
    "clustered": clustered,
    "skewed": skewed,
    "diagonal": diagonal,
    "zipf": zipf_grid,
    "hotspot": nested_hotspot,
    "storm": promotion_storm,
}


def _cmd_figures(args: argparse.Namespace) -> int:
    rows = figures.figure_series(
        args.fanout, integer_constrained=args.integer
    )
    print(figures.render_figure(rows, args.fanout))
    print()
    growth = figures.height_growth_table(
        args.fanout, range(1, 8), integer_constrained=args.integer
    )
    print(format_table(
        ["best-case height", "worst-case height"],
        growth,
        title="height needed to hold the same data in the worst case",
    ))
    return 0


def _cmd_thresholds(args: argparse.Namespace) -> int:
    rows = []
    for fanout in args.fanouts:
        for penalty in (0, 1, 2):
            size = capacity.max_file_size_with_penalty(
                fanout, penalty, page_bytes=args.page_bytes
            )
            rows.append([fanout, penalty, f"{size / 1e9:,.2f} GB"])
    print(format_table(
        ["fan-out F", "extra levels tolerated", "file size threshold"],
        rows,
        title=f"worst-case height penalties ({args.page_bytes} B data pages)",
    ))
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    space = DataSpace.unit(args.dims, resolution=18)
    points = WORKLOADS[args.workload](args.n, args.dims, seed=args.seed)
    tree = build_index(
        "bv",
        space,
        points,
        data_capacity=args.data_capacity,
        fanout=args.fanout,
        policy=args.policy,
    )
    stats = tree.tree_stats()
    print(format_table(
        ["metric", "value"],
        [
            ["records", stats.n_points],
            ["height", stats.height],
            ["data pages", stats.data_pages],
            ["index nodes", stats.index_nodes],
            ["guards", stats.total_guards],
            ["min data occupancy", stats.min_data_occupancy],
            ["guaranteed minimum", tree.policy.min_data_occupancy()],
            ["avg data fill", f"{stats.avg_data_occupancy:.2f}"],
            ["promotions", tree.stats.promotions],
            ["demotions", tree.stats.demotions],
            ["search cost (pages)", tree.height + 1],
        ],
        title=f"BV-tree on {args.n} {args.workload} points "
              f"({args.dims}-d, P={args.data_capacity}, F={args.fanout}, "
              f"{args.policy} pages)",
    ))
    tree.check(sample_points=min(200, stats.n_points))
    print("invariants verified")
    if args.show_tree:
        from repro.core.render import render_tree

        print()
        print(render_tree(tree, max_depth=args.show_tree))
    if args.show_partition:
        from repro.core.render import render_partition

        print()
        print(render_partition(tree))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    space = DataSpace.unit(args.dims, resolution=18)
    points = list(WORKLOADS[args.workload](args.n, args.dims, seed=args.seed))
    rows = []
    for kind in args.structures:
        index = build_index(
            kind,
            space,
            points,
            data_capacity=args.data_capacity,
            fanout=args.fanout,
        )
        data, idx = index_occupancies(index)
        forced = getattr(getattr(index, "stats", None), "forced_splits", 0)
        cascade = getattr(getattr(index, "stats", None), "max_cascade", 0)
        rows.append([
            kind,
            index.height,
            len(data),
            min(data),
            f"{sum(data) / len(data):.1f}",
            forced,
            cascade,
        ])
    print(format_table(
        ["structure", "height", "data pages", "min occ", "avg occ",
         "forced splits", "worst insert"],
        rows,
        title=f"{args.n} {args.workload} points "
              f"(P={args.data_capacity}, F={args.fanout})",
    ))
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    # Imported lazily: the perf harness pulls in the scenario suite and
    # storage backends the analysis subcommands never need.
    from repro.perf import (
        SuiteResult,
        default_path,
        render_text,
        resolve_scale,
        run_suite,
    )

    scale = resolve_scale(
        args.scale,
        n_points=args.n,
        repeats=args.repeats,
        warmup=args.warmup,
        seed=args.seed,
    )
    # Load the baseline before the (potentially long) run so a bad path
    # fails in milliseconds, not after the whole suite has been timed.
    baseline = SuiteResult.load(args.baseline) if args.baseline else None
    progress = None
    if args.format == "text":
        def progress(name: str) -> None:
            print(f"  running {name} ...", file=sys.stderr)
    result = run_suite(scale, suite=args.suite, only=args.only, progress=progress)
    if args.format == "json":
        print(result.to_json(), end="")
    else:
        print(render_text(result, baseline=baseline))
    if not args.no_write:
        out = args.out if args.out else default_path(args.suite)
        written = result.write(out)
        if args.format == "text":
            print(f"\nwrote {written}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    # Imported lazily: linting pulls in the whole rule registry, which the
    # analysis/demo subcommands never need.
    from repro.lintkit.cli import main as lint_main

    return lint_main(args.lint_args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BV-tree reproduction (Freeston, SIGMOD 1995)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figures", help="reproduce Figure 7-1/7-2")
    p.add_argument("--fanout", type=int, default=24)
    p.add_argument(
        "--integer",
        action="store_true",
        help="use the integer-constrained worst-case recursion",
    )
    p.set_defaults(func=_cmd_figures)

    p = sub.add_parser("thresholds", help="§7.2/§7.3 file-size thresholds")
    p.add_argument("--fanouts", type=int, nargs="+", default=[24, 120])
    p.add_argument("--page-bytes", type=int, default=1024)
    p.set_defaults(func=_cmd_thresholds)

    p = sub.add_parser(
        "perf",
        help="run the wall-clock benchmark suite",
        description=(
            "Times the core operation suite (insert, bulk_load, "
            "exact_match, range, range_rectpath, knn, buffered_get) and "
            "writes BENCH_<suite>.json at the repository root; see "
            "docs/PERFORMANCE.md."
        ),
    )
    p.add_argument(
        "--scale", choices=["full", "smoke"], default="full",
        help="preset sizing (full: 50k points; smoke: 2k, for CI)",
    )
    p.add_argument("--suite", default="core", help="suite name for the output file")
    p.add_argument("--n", type=int, default=None, help="override n_points")
    p.add_argument("--repeats", type=int, default=None, help="override timed repeats")
    p.add_argument("--warmup", type=int, default=None, help="override warmup runs")
    p.add_argument("--seed", type=int, default=None, help="override workload seed")
    p.add_argument(
        "--only", nargs="+", metavar="CASE", default=None,
        help="run only the named cases",
    )
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument(
        "--out", default=None,
        help="result file path (default: BENCH_<suite>.json at the repo root)",
    )
    p.add_argument(
        "--no-write", action="store_true",
        help="print results without writing the snapshot file",
    )
    p.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="compare against a previously written BENCH_*.json",
    )
    p.set_defaults(func=_cmd_perf)

    p = sub.add_parser(
        "lint",
        help="run the repro.lintkit static analyser",
        description=(
            "Delegates every following argument to python -m repro.lintkit "
            "(run `python -m repro.lintkit --help` for its options)."
        ),
    )
    p.add_argument(
        "lint_args",
        nargs=argparse.REMAINDER,
        metavar="ARGS",
        help="arguments for repro.lintkit (paths, --format, --select, ...)",
    )
    p.set_defaults(func=_cmd_lint)

    for name, help_text in (
        ("demo", "build a BV-tree and print its statistics"),
        ("compare", "compare the BV-tree with the baselines"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--workload", choices=sorted(WORKLOADS), default="uniform")
        p.add_argument("--n", type=int, default=10_000)
        p.add_argument("--dims", type=int, default=2)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--data-capacity", type=int, default=16)
        p.add_argument("--fanout", type=int, default=16)
        if name == "demo":
            p.add_argument(
                "--policy", choices=["scaled", "uniform"], default="scaled"
            )
            p.add_argument(
                "--show-tree",
                type=int,
                default=0,
                metavar="DEPTH",
                help="print the index structure to the given depth",
            )
            p.add_argument(
                "--show-partition",
                action="store_true",
                help="print a raster of the 2-d level-0 partition",
            )
            p.set_defaults(func=_cmd_demo)
        else:
            p.add_argument(
                "--structures",
                nargs="+",
                choices=sorted(INDEX_KINDS),
                default=["bv", "kdb", "bang", "lsd", "zorder"],
            )
            p.set_defaults(func=_cmd_compare)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point (``python -m repro``)."""
    arglist = list(sys.argv[1:] if argv is None else argv)
    if arglist[:1] == ["lint"]:
        # Hand everything after "lint" to the lintkit parser untouched;
        # argparse.REMAINDER would swallow positionals but not leading
        # options such as ``repro lint --list-rules``.
        return _cmd_lint(
            argparse.Namespace(lint_args=arglist[1:])
        )
    args = build_parser().parse_args(arglist)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
