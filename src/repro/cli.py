"""Command-line interface: run the paper's analyses and demos.

::

    python -m repro figures --fanout 24        # Figure 7-1
    python -m repro thresholds                 # §7.2/§7.3 file-size claims
    python -m repro demo --workload clustered  # build a BV-tree, show stats
    python -m repro compare --n 10000          # BV vs the baselines
    python -m repro perf --scale smoke         # wall-clock benchmark suite
    python -m repro lint src/repro tests       # domain-aware static analysis
    python -m repro explain --point 0.3 0.7    # what would this query do?
    python -m repro trace --out trace.jsonl    # record a traced workload
    python -m repro doctor --workload storm    # score the paper guarantees
    python -m repro top --once                 # live cost/health dashboard
    python -m repro recover state/             # replay a WAL, rebuild the tree
    python -m repro serve --n 10000            # HTTP/JSON serving layer
    python -m repro loadgen --duration 5       # drive traffic at a server
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis import capacity, figures
from repro.bench.harness import INDEX_KINDS, build_index, index_occupancies
from repro.bench.reporting import format_table
from repro.geometry.space import DataSpace
from repro.workloads import (
    clustered,
    diagonal,
    nested_hotspot,
    promotion_storm,
    skewed,
    uniform,
    zipf_grid,
)

WORKLOADS = {
    "uniform": uniform,
    "clustered": clustered,
    "skewed": skewed,
    "diagonal": diagonal,
    "zipf": zipf_grid,
    "hotspot": nested_hotspot,
    "storm": promotion_storm,
}


def _cmd_figures(args: argparse.Namespace) -> int:
    rows = figures.figure_series(
        args.fanout, integer_constrained=args.integer
    )
    print(figures.render_figure(rows, args.fanout))
    print()
    growth = figures.height_growth_table(
        args.fanout, range(1, 8), integer_constrained=args.integer
    )
    print(format_table(
        ["best-case height", "worst-case height"],
        growth,
        title="height needed to hold the same data in the worst case",
    ))
    return 0


def _cmd_thresholds(args: argparse.Namespace) -> int:
    rows = []
    for fanout in args.fanouts:
        for penalty in (0, 1, 2):
            size = capacity.max_file_size_with_penalty(
                fanout, penalty, page_bytes=args.page_bytes
            )
            rows.append([fanout, penalty, f"{size / 1e9:,.2f} GB"])
    print(format_table(
        ["fan-out F", "extra levels tolerated", "file size threshold"],
        rows,
        title=f"worst-case height penalties ({args.page_bytes} B data pages)",
    ))
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    space = DataSpace.unit(args.dims, resolution=18)
    points = WORKLOADS[args.workload](args.n, args.dims, seed=args.seed)
    tree = build_index(
        "bv",
        space,
        points,
        data_capacity=args.data_capacity,
        fanout=args.fanout,
        policy=args.policy,
    )
    stats = tree.tree_stats()
    print(format_table(
        ["metric", "value"],
        [
            ["records", stats.n_points],
            ["height", stats.height],
            ["data pages", stats.data_pages],
            ["index nodes", stats.index_nodes],
            ["guards", stats.total_guards],
            ["min data occupancy", stats.min_data_occupancy],
            ["guaranteed minimum", tree.policy.min_data_occupancy()],
            ["avg data fill", f"{stats.avg_data_occupancy:.2f}"],
            ["promotions", tree.stats.promotions],
            ["demotions", tree.stats.demotions],
            ["search cost (pages)", tree.height + 1],
        ],
        title=f"BV-tree on {args.n} {args.workload} points "
              f"({args.dims}-d, P={args.data_capacity}, F={args.fanout}, "
              f"{args.policy} pages)",
    ))
    tree.check(sample_points=min(200, stats.n_points))
    print("invariants verified")
    if args.show_tree:
        from repro.core.render import render_tree

        print()
        print(render_tree(tree, max_depth=args.show_tree))
    if args.show_partition:
        from repro.core.render import render_partition

        print()
        print(render_partition(tree))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    space = DataSpace.unit(args.dims, resolution=18)
    points = list(WORKLOADS[args.workload](args.n, args.dims, seed=args.seed))
    rows = []
    for kind in args.structures:
        index = build_index(
            kind,
            space,
            points,
            data_capacity=args.data_capacity,
            fanout=args.fanout,
        )
        data, idx = index_occupancies(index)
        forced = getattr(getattr(index, "stats", None), "forced_splits", 0)
        cascade = getattr(getattr(index, "stats", None), "max_cascade", 0)
        rows.append([
            kind,
            index.height,
            len(data),
            min(data),
            f"{sum(data) / len(data):.1f}",
            forced,
            cascade,
        ])
    print(format_table(
        ["structure", "height", "data pages", "min occ", "avg occ",
         "forced splits", "worst insert"],
        rows,
        title=f"{args.n} {args.workload} points "
              f"(P={args.data_capacity}, F={args.fanout})",
    ))
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    # Imported lazily: the perf harness pulls in the scenario suite and
    # storage backends the analysis subcommands never need.
    from repro.perf import (
        SuiteResult,
        default_path,
        render_text,
        resolve_scale,
        run_suite,
    )

    scale = resolve_scale(
        args.scale,
        n_points=args.n,
        repeats=args.repeats,
        warmup=args.warmup,
        seed=args.seed,
        layout=args.layout,
    )
    # Load the baseline before the (potentially long) run so a bad path
    # fails in milliseconds, not after the whole suite has been timed.
    baseline = SuiteResult.load(args.baseline) if args.baseline else None
    progress = None
    if args.format == "text":
        def progress(name: str) -> None:
            print(f"  running {name} ...", file=sys.stderr)
    result = run_suite(scale, suite=args.suite, only=args.only, progress=progress)
    if args.format == "json":
        print(result.to_json(), end="")
    else:
        print(render_text(result, baseline=baseline))
    if not args.no_write:
        out = args.out if args.out else default_path(args.suite)
        written = result.write(out)
        if args.format == "text":
            print(f"\nwrote {written}")
    oracle = result.columnar.get("oracle", {})
    if oracle and not oracle.get("equal"):
        diverged = sorted(
            name
            for name, equal in oracle.items()
            if name != "equal" and not equal
        )
        print(
            "perf: columnar layout oracle DIVERGED from the object "
            f"layout on: {', '.join(diverged)}",
            file=sys.stderr,
        )
        return 1
    return 0


def _build_workload_tree(args: argparse.Namespace) -> "object":
    """A bulk-loaded BV-tree over the requested workload (shared by the
    observability subcommands)."""
    from repro.core.tree import BVTree

    space = DataSpace.unit(args.dims, resolution=18)
    points = WORKLOADS[args.workload](args.n, args.dims, seed=args.seed)
    tree = BVTree(
        space,
        data_capacity=args.data_capacity,
        fanout=args.fanout,
        policy=args.policy,
    )
    tree.bulk_load(
        ((tuple(p), i) for i, p in enumerate(points)), replace=True
    )
    return tree


def _cmd_explain(args: argparse.Namespace) -> int:
    import json

    given = sum(
        1 for q in (args.point, args.rect, args.knn) if q is not None
    )
    if given != 1:
        print(
            "explain: give exactly one of --point, --rect, --knn",
            file=sys.stderr,
        )
        return 2
    tree = _build_workload_tree(args)
    if args.point is not None:
        report = tree.explain(point=args.point)
    elif args.rect is not None:
        coords = args.rect
        if len(coords) != 2 * args.dims:
            print(
                f"explain: --rect needs {2 * args.dims} floats "
                f"(lows then highs for {args.dims} dimensions), "
                f"got {len(coords)}",
                file=sys.stderr,
            )
            return 2
        report = tree.explain(
            rect=(coords[: args.dims], coords[args.dims :])
        )
    else:
        report = tree.explain(knn=args.knn, k=args.k)
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render_text(max_rows=args.max_rows))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    # Imported lazily, like the perf harness: tracing pulls in sinks the
    # analysis subcommands never need.
    import random

    from repro.obs import EVENT_KINDS, JsonlSink, RingSink, read_jsonl

    kinds = set(args.kind or [])
    unknown = kinds - set(EVENT_KINDS)
    if unknown:
        print(
            f"trace: unknown event kind(s): {', '.join(sorted(unknown))}; "
            f"expected one of: {', '.join(sorted(EVENT_KINDS))}",
            file=sys.stderr,
        )
        return 2

    tree = None
    sink: JsonlSink | RingSink | None = None
    if args.input:
        # Analyse an existing capture instead of recording a new one.
        events = read_jsonl(args.input)
        title = f"trace {args.input}"
    else:
        from repro.core.tree import BVTree

        space = DataSpace.unit(args.dims, resolution=18)
        points = [
            tuple(p)
            for p in WORKLOADS[args.workload](
                args.n, args.dims, seed=args.seed
            )
        ]
        tree = BVTree(
            space,
            data_capacity=args.data_capacity,
            fanout=args.fanout,
            policy=args.policy,
        )
        sink = (
            JsonlSink(args.out) if args.out else RingSink(capacity=args.ring)
        )
        tree.tracer.attach(sink)
        # A mixed workload: build incrementally (splits, promotions),
        # then a read slice and a delete slice so every event family
        # shows up.
        rng = random.Random(args.seed)
        for i, point in enumerate(points):
            tree.insert(point, i, replace=True)
        for point in rng.sample(points, min(len(points), args.n // 10 or 1)):
            tree.get(point)
        for point in rng.sample(points, min(len(points), args.n // 20 or 1)):
            tree.delete(point)
        tree.tracer.detach()
        if isinstance(sink, JsonlSink):
            sink.close()
            events = read_jsonl(args.out)
        else:
            events = sink.events()
        title = (
            f"traced {args.workload} workload "
            f"(n={args.n}, {args.dims}-d, P={args.data_capacity}, "
            f"F={args.fanout})"
        )

    total = len(events)
    if kinds:
        events = [event for event in events if event.kind in kinds]
        title += f" [{', '.join(sorted(kinds))}]"
        if args.out:
            # The capture (or the recording above) holds every kind;
            # rewrite --out so the artifact matches the filter.
            with JsonlSink(args.out) as filtered:
                for event in events:
                    filtered.emit(event)

    kind_counts: dict[str, int] = {}
    for event in events:
        kind_counts[event.kind] = kind_counts.get(event.kind, 0) + 1
    print(format_table(
        ["event kind", "count"],
        [[kind, count] for kind, count in sorted(kind_counts.items())],
        title=title,
    ))
    if kinds:
        print(f"\n{len(events)} of {total} events match")
    if args.stats:
        # Summary mode: the per-kind table is the whole report.
        return 0
    if tree is not None:
        counters = {
            name: value
            for name, value in tree.stats.to_dict().items()
            if value
        }
        print()
        print(format_table(
            ["op counter", "value"],
            [[name, value] for name, value in sorted(counters.items())],
        ))
    if args.out:
        print(f"\nwrote {len(events)} events to {args.out}")
    elif isinstance(sink, RingSink) and sink.dropped:
        print(
            f"\nring buffer kept the last {len(sink)} events "
            f"({sink.dropped} older ones dropped; use --out for all)"
        )
    return 0


def _mixed_operations(
    points: "list[tuple[float, ...]]", total: int, seed: int
) -> "object":
    """A steady insert/get/range/knn/delete mix for ``repro top``.

    Inserts draw from ``points`` (assumed path-deduplicated) and reads
    target the live set, so every operation is well-formed; deletes keep
    a minimum population so the dashboard never empties out.
    """
    import random

    rng = random.Random(seed)
    dims = len(points[0])
    live: list[tuple[float, ...]] = []
    cursor = 0
    for value in range(total):
        roll = rng.random()
        can_insert = cursor < len(points)
        if can_insert and (roll < 0.45 or len(live) < 8):
            point = points[cursor]
            cursor += 1
            live.append(point)
            yield ("insert", point, value)
        elif not live:
            break
        elif roll < 0.65:
            yield ("get", live[rng.randrange(len(live))])
        elif roll < 0.75:
            lows = tuple(rng.random() * 0.85 for _ in range(dims))
            yield ("range", lows, tuple(low + 0.1 for low in lows))
        elif roll < 0.85:
            yield ("knn", tuple(rng.random() for _ in range(dims)), 3)
        elif len(live) > 8:
            yield ("delete", live.pop(rng.randrange(len(live))))
        else:
            yield ("get", live[rng.randrange(len(live))])


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.core.tree import BVTree
    from repro.obs import SlowOpLog, run_top
    from repro.storage import BufferPool, ColumnarStore, PageStore

    space = DataSpace.unit(args.dims, resolution=18)
    raw = WORKLOADS[args.workload](args.n, args.dims, seed=args.seed)
    # Path-deduplicate (same reason as doctor: the live set tracks float
    # tuples, the tree keys by resolution bits).
    seen = set()
    points = []
    for point in raw:
        path = space.point_path(point)
        if path not in seen:
            seen.add(path)
            points.append(tuple(point))
    backing = ColumnarStore() if args.layout == "columnar" else PageStore()
    store = (
        BufferPool(backing, capacity=args.buffer) if args.buffer else backing
    )
    tree = BVTree(
        space,
        data_capacity=args.data_capacity,
        fanout=args.fanout,
        policy=args.policy,
        store=store,
    )
    total = args.ops if args.ops else 4 * len(points)
    slow_log = SlowOpLog(
        args.slow_out,
        latency_us=(
            args.slow_ms * 1000.0 if args.slow_ms is not None else None
        ),
        pages=args.slow_pages,
    )
    try:
        result = run_top(
            tree,
            _mixed_operations(points, total, seed=args.seed),
            refresh=args.refresh,
            once=args.once,
            slow_log=slow_log,
            prom_out=args.prom_out,
            metrics_out=args.metrics_out,
            metrics_every=args.metrics_every,
            emit=print,
        )
    finally:
        slow_log.close()
    if args.slow_out and slow_log.count:
        print(f"\nwrote {slow_log.count} slow-op records to {args.slow_out}")
    if args.prom_out:
        print(f"wrote Prometheus exposition to {args.prom_out}")
    return result.exit_code


def _cmd_doctor(args: argparse.Namespace) -> int:
    import json

    if args.bench is not None:
        # Snapshot mode: re-render the health block of a written
        # BENCH_<suite>.json and exit with its verdict.
        with open(args.bench, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        health = data.get("health")
        if not health:
            print(
                f"doctor: {args.bench} has no health block "
                "(regenerate with repro perf)",
                file=sys.stderr,
            )
            return 2
        if args.format == "json":
            print(json.dumps(health, indent=2))
        else:
            print(f"health block of {args.bench}")
            for name, verdict in health.get("verdicts", {}).items():
                print(f"  [{verdict.upper()}] {name}")
        return 0 if health.get("ok") else 1

    from repro.core.tree import BVTree
    from repro.obs import HealthThresholds, render_doctor_text, run_doctor
    from repro.storage import ColumnarStore, PageStore
    from repro.workloads import churn as churn_ops

    space = DataSpace.unit(args.dims, resolution=18)
    raw = WORKLOADS[args.workload](args.n, args.dims, seed=args.seed)
    # Path-deduplicate: churn tracks live points by float tuple but the
    # tree keys records by the leading resolution bits, so colliding
    # points would make churn delete an already-replaced record.
    seen = set()
    points = []
    for point in raw:
        path = space.point_path(point)
        if path not in seen:
            seen.add(path)
            points.append(point)
    tree = BVTree(
        space,
        data_capacity=args.data_capacity,
        fanout=args.fanout,
        policy=args.policy,
        store=(
            ColumnarStore() if args.layout == "columnar" else PageStore()
        ),
    )
    operations = (
        churn_ops(points, delete_fraction=args.churn, seed=args.seed)
        if args.churn
        else (("insert", tuple(p)) for p in points)
    )
    result = run_doctor(
        tree,
        operations,
        sample_every=args.every,
        thresholds=HealthThresholds(height_slack=args.height_slack),
        workload=args.workload,
    )
    if args.series_out:
        record = {
            "workload": args.workload,
            "n": args.n,
            "dims": args.dims,
            "timeseries": result.timeseries,
        }
        with open(args.series_out, "w", encoding="utf-8") as handle:
            json.dump(record, handle)
        if args.format == "text":
            print(f"wrote time series to {args.series_out}", file=sys.stderr)
    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(render_doctor_text(result))
    return result.exit_code


def _cmd_recover(args: argparse.Namespace) -> int:
    import json

    from repro.errors import (
        RecoveryError,
        SimulatedCrashError,
        StorageError,
        WalCorruptionError,
    )
    from repro.storage.durable import create_durable_tree, open_durable_tree
    from repro.storage.faults import FaultPlan

    if args.build:
        # Demo mode: drive a workload into a fresh durable store in the
        # directory, optionally dying at an injected crash point, so the
        # recovery below has something real to chew on.
        from repro.workloads import churn as churn_ops

        try:
            plan = FaultPlan.parse(args.fault) if args.fault else FaultPlan()
        except Exception as exc:
            print(f"recover: bad --fault spec: {exc}", file=sys.stderr)
            return 2
        space = DataSpace.unit(args.dims, resolution=18)
        raw = WORKLOADS[args.workload](args.n, args.dims, seed=args.seed)
        seen = set()
        points = []
        for point in raw:
            path = space.point_path(point)
            if path not in seen:
                seen.add(path)
                points.append(tuple(point))
        try:
            tree = create_durable_tree(
                args.directory,
                space,
                data_capacity=args.data_capacity,
                fanout=args.fanout,
                faults=plan,
                sync=args.sync,
            )
        except StorageError as exc:
            print(f"recover: {exc}", file=sys.stderr)
            return 2
        operations = (
            churn_ops(points, delete_fraction=args.churn, seed=args.seed)
            if args.churn
            else (("insert", p) for p in points)
        )
        driven = 0
        try:
            for verb, point in operations:
                if verb == "insert":
                    tree.insert(point, driven, replace=True)
                else:
                    tree.delete(point)
                driven += 1
            tree.store.close(checkpoint=False)
            print(
                f"built {driven} operations, closed without checkpoint "
                f"(the WAL carries everything)",
                file=sys.stderr,
            )
        except SimulatedCrashError as exc:
            print(
                f"simulated crash after {driven} completed operations: "
                f"{exc}",
                file=sys.stderr,
            )

    tracer = None
    sink = None
    if args.trace:
        from repro.obs import JsonlSink
        from repro.obs.tracer import Tracer

        sink = JsonlSink(args.trace)
        tracer = Tracer()
        tracer.attach(sink)
    try:
        tree, report = open_durable_tree(args.directory, tracer=tracer)
    except (RecoveryError, WalCorruptionError, StorageError) as exc:
        print(f"recover: {exc}", file=sys.stderr)
        return 1
    finally:
        if sink is not None:
            sink.close()
    stats = tree.tree_stats()
    if args.format == "json":
        out = report.to_dict()
        out["tree"] = {
            "records": stats.n_points,
            "height": stats.height,
            "data_pages": stats.data_pages,
            "index_nodes": stats.index_nodes,
            "guards": stats.total_guards,
        }
        print(json.dumps(out, indent=2))
    else:
        print(f"recovered {args.directory}: {report.summary()}")
        print(format_table(
            ["metric", "value"],
            [
                ["records", stats.n_points],
                ["height", stats.height],
                ["data pages", stats.data_pages],
                ["index nodes", stats.index_nodes],
                ["guards", stats.total_guards],
                ["committed ops replayed", len(report.op_commits)],
                ["torn tail discarded", "yes" if report.torn_tail else "no"],
            ],
            title="recovered tree (invariants verified)",
        ))
        if args.trace:
            print(f"wrote recovery trace to {args.trace}")
    tree.store.close()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported lazily: the serving stack pulls in asyncio and the
    # concurrency layer, which no other subcommand needs.
    import asyncio

    from repro.concurrency import TreeService
    from repro.obs.metrics import MetricsRegistry
    from repro.server import ServingApp, WriteBatcher, serve_app

    space = DataSpace.unit(args.dims, resolution=18)
    raw = WORKLOADS[args.workload](args.n, args.dims, seed=args.seed)
    # Path-deduplicate (same reason as doctor: records key by resolution
    # bits, so colliding points would fight over one slot).
    seen = set()
    records = []
    for point in raw:
        path = space.point_path(point)
        if path not in seen:
            seen.add(path)
            records.append((tuple(point), len(records)))
    if args.durable:
        from repro.storage.durable import create_durable_tree

        tree = create_durable_tree(
            args.durable,
            space,
            data_capacity=args.data_capacity,
            fanout=args.fanout,
            layout=args.layout,
            sync=args.sync,
        )
        for point, value in records:
            tree.insert(point, value, replace=True)
    else:
        from repro.core.tree import BVTree
        from repro.storage import ColumnarStore, PageStore

        tree = BVTree(
            space,
            data_capacity=args.data_capacity,
            fanout=args.fanout,
            store=(
                ColumnarStore()
                if args.layout == "columnar"
                else PageStore()
            ),
            layout=args.layout,
        )
        tree.bulk_load(records, replace=True)
    service = TreeService(tree)
    batcher = (
        None
        if args.no_batch
        else WriteBatcher(
            service, max_batch=args.batch_max, max_wait_s=args.batch_wait
        )
    )
    app = ServingApp(service, registry=MetricsRegistry(), batcher=batcher)
    print(
        f"serving {len(records)} {args.workload} records "
        f"({args.dims}-d, layout={args.layout}) "
        f"on http://{args.host}:{args.port} — Ctrl-C to stop",
        file=sys.stderr,
    )
    try:
        asyncio.run(serve_app(app, args.host, args.port))
    except KeyboardInterrupt:
        print("\nshutting down", file=sys.stderr)
    finally:
        if batcher is not None:
            batcher.close()
        service.detach()
        if args.durable:
            tree.store.close()
    return 0


def _loadgen_worker(
    url: str,
    mix_read_fraction: float,
    stop_at: float,
    seed: int,
    dims: int,
    out: "dict[str, object]",
) -> None:
    """One load-generator thread: mixed traffic over a keep-alive
    connection, latencies and error counts recorded into ``out``."""
    import http.client
    import json as json_mod
    import random
    from time import monotonic, perf_counter
    from urllib.parse import urlsplit

    rng = random.Random(seed)
    parts = urlsplit(url)
    host = parts.hostname or "127.0.0.1"
    port = parts.port or 80
    conn = http.client.HTTPConnection(host, port, timeout=10.0)
    latencies: list[float] = []
    reads = writes = errors = 0
    try:
        while monotonic() < stop_at:
            point = [rng.random() for _ in range(dims)]
            if rng.random() < mix_read_fraction:
                roll = rng.random()
                if roll < 0.8:
                    path, body = "/v1/get", {"point": point}
                elif roll < 0.95:
                    lo = rng.random() * 0.8
                    path, body = "/v1/range", {
                        "lows": [lo] * dims,
                        "highs": [lo + 0.2] * dims,
                    }
                else:
                    path, body = "/v1/knn", {"point": point, "k": 5}
                expected = (200, 404)
                reads += 1
            else:
                if rng.random() < 0.7:
                    path, body = "/v1/insert", {
                        "point": point,
                        "value": rng.randrange(1 << 20),
                        "replace": True,
                    }
                    expected = (201,)
                else:
                    path, body = "/v1/delete", {"point": point}
                    expected = (200, 404)
                writes += 1
            t0 = perf_counter()
            try:
                conn.request(
                    "POST",
                    path,
                    body=json_mod.dumps(body),
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                response.read()
                if response.status not in expected:
                    errors += 1
            except (OSError, http.client.HTTPException):
                errors += 1
                conn.close()
                conn = http.client.HTTPConnection(host, port, timeout=10.0)
            latencies.append(perf_counter() - t0)
    finally:
        conn.close()
    out["latencies"] = latencies
    out["reads"] = reads
    out["writes"] = writes
    out["errors"] = errors


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import json
    import threading
    from time import monotonic, perf_counter

    from repro.perf.serving import MIXES, _quantile

    read_fraction = MIXES[args.mix]
    stop_at = monotonic() + args.duration
    slots: list[dict[str, object]] = [{} for _ in range(args.threads)]
    threads = [
        threading.Thread(
            target=_loadgen_worker,
            args=(
                args.url,
                read_fraction,
                stop_at,
                args.seed * 1009 + slot,
                args.dims,
                slots[slot],
            ),
        )
        for slot in range(args.threads)
    ]
    t0 = perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = perf_counter() - t0
    latencies = sorted(
        latency
        for slot in slots
        for latency in slot.get("latencies", [])  # type: ignore[union-attr]
    )
    reads = sum(int(slot.get("reads", 0)) for slot in slots)  # type: ignore[arg-type]
    writes = sum(int(slot.get("writes", 0)) for slot in slots)  # type: ignore[arg-type]
    errors = sum(int(slot.get("errors", 0)) for slot in slots)  # type: ignore[arg-type]
    total = reads + writes
    summary = {
        "url": args.url,
        "mix": args.mix,
        "read_fraction": read_fraction,
        "threads": args.threads,
        "duration_s": round(elapsed, 3),
        "requests": total,
        "reads": reads,
        "writes": writes,
        "errors": errors,
        "ops_per_s": round(total / elapsed, 1) if elapsed else 0.0,
        "p50_us": round(_quantile(latencies, 0.50) * 1e6, 1),
        "p99_us": round(_quantile(latencies, 0.99) * 1e6, 1),
    }
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2)
    print(format_table(
        ["loadgen", "value"],
        [[key, value] for key, value in summary.items()],
        title=f"load generator ({args.mix} mix against {args.url})",
    ))
    return 1 if errors else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    # Imported lazily: linting pulls in the whole rule registry, which the
    # analysis/demo subcommands never need.
    from repro.lintkit.cli import main as lint_main

    return lint_main(args.lint_args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BV-tree reproduction (Freeston, SIGMOD 1995)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figures", help="reproduce Figure 7-1/7-2")
    p.add_argument("--fanout", type=int, default=24)
    p.add_argument(
        "--integer",
        action="store_true",
        help="use the integer-constrained worst-case recursion",
    )
    p.set_defaults(func=_cmd_figures)

    p = sub.add_parser("thresholds", help="§7.2/§7.3 file-size thresholds")
    p.add_argument("--fanouts", type=int, nargs="+", default=[24, 120])
    p.add_argument("--page-bytes", type=int, default=1024)
    p.set_defaults(func=_cmd_thresholds)

    p = sub.add_parser(
        "perf",
        help="run the wall-clock benchmark suite",
        description=(
            "Times the core operation suite (insert, bulk_load, "
            "exact_match, range, range_rectpath, knn, buffered_get) and "
            "writes BENCH_<suite>.json at the repository root; see "
            "docs/PERFORMANCE.md."
        ),
    )
    p.add_argument(
        "--scale", choices=["full", "smoke"], default="full",
        help="preset sizing (full: 50k points; smoke: 2k, for CI)",
    )
    p.add_argument("--suite", default="core", help="suite name for the output file")
    p.add_argument("--n", type=int, default=None, help="override n_points")
    p.add_argument("--repeats", type=int, default=None, help="override timed repeats")
    p.add_argument("--warmup", type=int, default=None, help="override warmup runs")
    p.add_argument("--seed", type=int, default=None, help="override workload seed")
    p.add_argument(
        "--layout", choices=["object", "columnar"], default=None,
        help="page layout the timed cases run on (the columnar probe "
             "always measures both lanes)",
    )
    p.add_argument(
        "--only", nargs="+", metavar="CASE", default=None,
        help="run only the named cases",
    )
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument(
        "--out", default=None,
        help="result file path (default: BENCH_<suite>.json at the repo root)",
    )
    p.add_argument(
        "--no-write", action="store_true",
        help="print results without writing the snapshot file",
    )
    p.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="compare against a previously written BENCH_*.json",
    )
    p.set_defaults(func=_cmd_perf)

    for name, help_text, description in (
        (
            "explain",
            "EXPLAIN one query against a workload-built tree",
            (
                "Builds a BV-tree over a synthetic workload, runs one "
                "query under a capture tracer and reports what it "
                "visited, which guards it consulted and why blocks were "
                "pruned; see docs/OBSERVABILITY.md."
            ),
        ),
        (
            "trace",
            "record a traced workload (ring buffer or JSONL file)",
            (
                "Builds a BV-tree incrementally with tracing enabled "
                "(inserts, then a read and a delete slice) and prints "
                "per-kind event counts next to the operation counters; "
                "--out writes the full stream as JSONL."
            ),
        ),
    ):
        p = sub.add_parser(name, help=help_text, description=description)
        p.add_argument("--workload", choices=sorted(WORKLOADS), default="uniform")
        p.add_argument("--n", type=int, default=2000)
        p.add_argument("--dims", type=int, default=2)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--data-capacity", type=int, default=16)
        p.add_argument("--fanout", type=int, default=16)
        p.add_argument(
            "--policy", choices=["scaled", "uniform"], default="scaled"
        )
        if name == "explain":
            p.add_argument(
                "--point", type=float, nargs="+", metavar="X",
                help="exact-match query point (dims floats)",
            )
            p.add_argument(
                "--rect", type=float, nargs="+", metavar="X",
                help="range query box: dims lows then dims highs",
            )
            p.add_argument(
                "--knn", type=float, nargs="+", metavar="X",
                help="k-NN query point (dims floats)",
            )
            p.add_argument("--k", type=int, default=3, help="neighbours for --knn")
            p.add_argument("--format", choices=["text", "json"], default="text")
            p.add_argument(
                "--max-rows", type=int, default=20,
                help="pruned-block rows shown in text format",
            )
            p.set_defaults(func=_cmd_explain)
        else:
            p.add_argument(
                "--out", default=None, metavar="PATH",
                help="write the (filtered) event stream as JSONL to PATH",
            )
            p.add_argument(
                "--ring", type=int, default=65536,
                help="ring-buffer capacity when --out is not given",
            )
            p.add_argument(
                "--input", default=None, metavar="PATH",
                help="analyse an existing JSONL capture instead of "
                     "recording a new workload",
            )
            p.add_argument(
                "--kind", action="append", default=None, metavar="KIND",
                help="keep only this event kind (repeatable)",
            )
            p.add_argument(
                "--stats", action="store_true",
                help="print only the per-kind event count summary",
            )
            p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "doctor",
        help="score the paper's three guarantees on a live workload",
        description=(
            "Drives a workload under the guarantee monitor (live "
            "per-level occupancy, height, split chains), audits the "
            "incremental gauges against a full sweep, scores the three "
            "paper guarantees and prints a per-level health table. "
            "Exits 0 when all guarantees hold, 1 on a violation, 2 on "
            "audit drift; see docs/OBSERVABILITY.md."
        ),
    )
    p.add_argument("--workload", choices=sorted(WORKLOADS), default="uniform")
    p.add_argument("--n", type=int, default=10_000)
    p.add_argument("--dims", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--data-capacity", type=int, default=16)
    p.add_argument("--fanout", type=int, default=16)
    p.add_argument("--policy", choices=["scaled", "uniform"], default="scaled")
    p.add_argument(
        "--layout", choices=["object", "columnar"], default="object",
        help="page layout of the monitored tree",
    )
    p.add_argument(
        "--churn", type=float, default=0.0, metavar="FRACTION",
        help="interleave this fraction of deletions into the stream",
    )
    p.add_argument(
        "--every", type=int, default=256, metavar="OPS",
        help="time-series sampling stride (operations per sample)",
    )
    p.add_argument(
        "--height-slack", type=int, default=1,
        help="extra levels tolerated above the analytic height bound",
    )
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument(
        "--series-out", default=None, metavar="PATH",
        help="write the columnar health time series as JSON to PATH",
    )
    p.add_argument(
        "--bench", default=None, metavar="PATH",
        help="render the health block of an existing BENCH_<suite>.json "
             "instead of running a workload",
    )
    p.set_defaults(func=_cmd_doctor)

    p = sub.add_parser(
        "top",
        help="live per-operation cost and health dashboard",
        description=(
            "Drives a mixed insert/get/range/knn/delete stream under "
            "the cost profiler and the guarantee monitor and renders a "
            "refreshing dashboard: ops/sec and p50/p99 latency per "
            "operation kind, page accesses, buffer hit rate, WAL "
            "fsyncs, slow-op captures and live guarantee verdicts. "
            "--once drives the whole stream and prints one final frame "
            "(the CI mode). Exits 0 unless a guarantee is violated; "
            "see docs/OBSERVABILITY.md."
        ),
    )
    p.add_argument("--workload", choices=sorted(WORKLOADS), default="uniform")
    p.add_argument("--n", type=int, default=5_000)
    p.add_argument("--dims", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--data-capacity", type=int, default=16)
    p.add_argument("--fanout", type=int, default=16)
    p.add_argument("--policy", choices=["scaled", "uniform"], default="scaled")
    p.add_argument(
        "--layout", choices=["object", "columnar"], default="object",
        help="page layout of the profiled tree",
    )
    p.add_argument(
        "--buffer", type=int, default=256, metavar="PAGES",
        help="buffer-pool capacity (0 disables the pool)",
    )
    p.add_argument(
        "--ops", type=int, default=None, metavar="COUNT",
        help="operations to drive (default: 4x the workload size)",
    )
    p.add_argument(
        "--refresh", type=float, default=1.0, metavar="SECONDS",
        help="dashboard refresh interval in live mode",
    )
    p.add_argument(
        "--once", action="store_true",
        help="drive the whole stream, print one frame, exit",
    )
    p.add_argument(
        "--slow-ms", type=float, default=10.0, metavar="MS",
        help="slow-op latency threshold in milliseconds",
    )
    p.add_argument(
        "--slow-pages", type=int, default=None, metavar="PAGES",
        help="also capture ops touching at least this many pages",
    )
    p.add_argument(
        "--slow-out", default=None, metavar="PATH",
        help="write slow-op records (with EXPLAIN attachments) as JSONL",
    )
    p.add_argument(
        "--prom-out", default=None, metavar="PATH",
        help="write the Prometheus text exposition after each frame",
    )
    p.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write periodic registry snapshots as JSONL",
    )
    p.add_argument(
        "--metrics-every", type=int, default=1000, metavar="OPS",
        help="operations between registry snapshots",
    )
    p.set_defaults(func=_cmd_top)

    p = sub.add_parser(
        "recover",
        help="crash-recover a durable store directory and verify the tree",
        description=(
            "Replays the write-ahead log of a repro.storage.durable "
            "store over its last checkpoint (discarding torn and "
            "uncommitted tails), rebuilds the BV-tree, verifies its "
            "invariants and prints a recovery report.  With --build, "
            "first constructs a store in the directory by driving a "
            "workload — optionally dying at an injected --fault crash "
            "point — so the full crash/recover loop can be exercised "
            "from the command line; see docs/DURABILITY.md."
        ),
    )
    p.add_argument("directory", help="durable store directory (wal.log, pages.dat)")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write recovery trace events (recovery_begin, wal_replay, "
             "recovery_end) as JSONL to PATH",
    )
    p.add_argument(
        "--build", action="store_true",
        help="first build a durable store in the directory from a workload",
    )
    p.add_argument(
        "--fault", default=None, metavar="SPEC",
        help="fault plan for --build, e.g. 'after-appends=200,tail=torn' "
             "(tokens: after-appends=N, checkpoint=mid-write|before-truncate, "
             "tail=keep|drop|torn, torn-fraction=F, drop-fsync)",
    )
    p.add_argument("--workload", choices=sorted(WORKLOADS), default="uniform")
    p.add_argument("--n", type=int, default=2000)
    p.add_argument("--dims", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--data-capacity", type=int, default=16)
    p.add_argument("--fanout", type=int, default=16)
    p.add_argument(
        "--churn", type=float, default=0.0, metavar="FRACTION",
        help="interleave this fraction of deletions while building",
    )
    p.add_argument(
        "--sync", choices=["commit", "os"], default="commit",
        help="WAL durability for --build: fsync per commit, or OS cache only",
    )
    p.set_defaults(func=_cmd_recover)

    p = sub.add_parser(
        "serve",
        help="serve a workload-built tree over HTTP/JSON",
        description=(
            "Builds a BV-tree over a synthetic workload, wraps it in "
            "the single-writer/many-readers TreeService and serves the "
            "HTTP/JSON API (get/insert/delete/range/knn/batch/bulk plus "
            "/health, /stats and Prometheus /metrics) until Ctrl-C. "
            "Writes coalesce into group commits via the write batcher; "
            "reads run against immutable snapshots and never block. "
            "See docs/SERVING.md."
        ),
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8077)
    p.add_argument("--workload", choices=sorted(WORKLOADS), default="uniform")
    p.add_argument("--n", type=int, default=10_000)
    p.add_argument("--dims", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--data-capacity", type=int, default=16)
    p.add_argument("--fanout", type=int, default=16)
    p.add_argument(
        "--layout", choices=["object", "columnar"], default="object",
        help="page layout of the served tree",
    )
    p.add_argument(
        "--durable", default=None, metavar="DIR",
        help="back the tree with a WAL-backed durable store in DIR "
             "(insert-built; survives crashes, see repro recover)",
    )
    p.add_argument(
        "--sync", choices=["commit", "os"], default="os",
        help="WAL durability with --durable",
    )
    p.add_argument(
        "--batch-max", type=int, default=64,
        help="write-batcher group size cap",
    )
    p.add_argument(
        "--batch-wait", type=float, default=0.002, metavar="SECONDS",
        help="write-batcher straggler wait",
    )
    p.add_argument(
        "--no-batch", action="store_true",
        help="apply writes directly instead of through the batcher",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "loadgen",
        help="drive mixed HTTP traffic against a running repro serve",
        description=(
            "Opens keep-alive connections to a running server and "
            "drives one of the three query:update mixes for a fixed "
            "duration, reporting ops/sec and p50/p99 latency. Exits "
            "non-zero if any request failed unexpectedly (the CI "
            "smoke contract). See docs/SERVING.md."
        ),
    )
    p.add_argument("--url", default="http://127.0.0.1:8077")
    p.add_argument(
        "--mix", choices=["read_heavy", "balanced", "write_heavy"],
        default="balanced",
    )
    p.add_argument("--duration", type=float, default=5.0, metavar="SECONDS")
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--dims", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the summary as JSON to PATH",
    )
    p.set_defaults(func=_cmd_loadgen)

    p = sub.add_parser(
        "lint",
        help="run the repro.lintkit static analyser",
        description=(
            "Delegates every following argument to python -m repro.lintkit "
            "(run `python -m repro.lintkit --help` for its options)."
        ),
    )
    p.add_argument(
        "lint_args",
        nargs=argparse.REMAINDER,
        metavar="ARGS",
        help="arguments for repro.lintkit (paths, --format, --select, ...)",
    )
    p.set_defaults(func=_cmd_lint)

    for name, help_text in (
        ("demo", "build a BV-tree and print its statistics"),
        ("compare", "compare the BV-tree with the baselines"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--workload", choices=sorted(WORKLOADS), default="uniform")
        p.add_argument("--n", type=int, default=10_000)
        p.add_argument("--dims", type=int, default=2)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--data-capacity", type=int, default=16)
        p.add_argument("--fanout", type=int, default=16)
        if name == "demo":
            p.add_argument(
                "--policy", choices=["scaled", "uniform"], default="scaled"
            )
            p.add_argument(
                "--show-tree",
                type=int,
                default=0,
                metavar="DEPTH",
                help="print the index structure to the given depth",
            )
            p.add_argument(
                "--show-partition",
                action="store_true",
                help="print a raster of the 2-d level-0 partition",
            )
            p.set_defaults(func=_cmd_demo)
        else:
            p.add_argument(
                "--structures",
                nargs="+",
                choices=sorted(INDEX_KINDS),
                default=["bv", "kdb", "bang", "lsd", "zorder"],
            )
            p.set_defaults(func=_cmd_compare)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point (``python -m repro``)."""
    arglist = list(sys.argv[1:] if argv is None else argv)
    if arglist[:1] == ["lint"]:
        # Hand everything after "lint" to the lintkit parser untouched;
        # argparse.REMAINDER would swallow positionals but not leading
        # options such as ``repro lint --list-rules``.
        return _cmd_lint(
            argparse.Namespace(lint_args=arglist[1:])
        )
    args = build_parser().parse_args(arglist)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
