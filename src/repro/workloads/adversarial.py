"""Adversarial insertion sequences.

These target the specific failure modes the paper's introduction catalogs:
cascade splitting in the K-D-B tree, directory occupancy collapse in
first-partition splitters, and the worst-case guard accumulation of the
BV-tree itself (one full promoted chain per unpromoted entry, §7.2).
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.errors import ReproError


def nested_hotspot(
    n: int,
    ndim: int,
    corner: tuple[float, ...] | None = None,
    ratio: float = 0.7,
    seed: int = 0,
) -> Iterator[tuple[float, ...]]:
    """Ever-deeper nesting toward one corner.

    A fraction ``ratio`` of the mass always falls into the current
    half-sized box around the corner, producing a long chain of nested
    regions — each level of which encloses the next, the configuration of
    the paper's Figure 1-3a that forces enclosure-capable representations.
    """
    if n < 0:
        raise ReproError(f"cannot generate {n} points")
    if not 0.0 < ratio < 1.0:
        raise ReproError(f"ratio must be in (0, 1), got {ratio}")
    rng = random.Random(seed)
    target = corner if corner is not None else (0.0,) * ndim
    if len(target) != ndim:
        raise ReproError(f"corner has {len(target)} dims, expected {ndim}")
    for _ in range(n):
        scale = 1.0
        while scale > 2.0 ** -24 and rng.random() < ratio:
            scale /= 2.0
        yield tuple(
            min(c + rng.random() * scale, 0.999999999) for c in target
        )


def promotion_storm(
    n: int, ndim: int, seed: int = 0
) -> Iterator[tuple[float, ...]]:
    """Alternating hotspots straddling every binary boundary.

    Mass concentrates in thin shells just inside and outside successive
    binary partition boundaries, so split keys keep landing next to
    region boundaries and enclosing regions keep being promoted — the
    guard-heavy worst case analysed in §7.2.
    """
    if n < 0:
        raise ReproError(f"cannot generate {n} points")
    rng = random.Random(seed)
    for i in range(n):
        depth = (i % 12) + 1
        # A point just on either side of the depth-th halving boundary of
        # dimension (depth % ndim).
        point = [rng.random() for _ in range(ndim)]
        dim = depth % ndim
        boundary = 0.5 ** ((depth // ndim) + 1)
        side = 1 if i % 2 else -1
        offset = boundary + side * boundary * 0.01 * rng.random()
        point[dim] = min(max(offset, 0.0), 0.999999999)
        yield tuple(point)


def sequential_1d(n: int, ndim: int = 1) -> Iterator[tuple[float, ...]]:
    """Monotone insertion order — the classic B-tree stressor.

    In one dimension the BV-tree must degenerate to B-tree behaviour
    (paper §2), so this sequence doubles as the degeneration test.
    """
    if n < 0:
        raise ReproError(f"cannot generate {n} points")
    for i in range(n):
        value = i / max(n, 1)
        yield (value,) + (0.5,) * (ndim - 1)
