"""Point-distribution generators.

All generators are deterministic given a seed, yield points inside the
unit cube ``[0, 1)**ndim``, and return plain tuples so they can feed any
of the index structures in this library.
"""

from __future__ import annotations

import math
import random
from typing import Iterator

from repro.errors import ReproError


def _check(n: int, ndim: int) -> None:
    if n < 0:
        raise ReproError(f"cannot generate {n} points")
    if ndim < 1:
        raise ReproError(f"need at least one dimension, got {ndim}")


def _clamp(x: float) -> float:
    return min(max(x, 0.0), 0.999999999)


def uniform(n: int, ndim: int, seed: int = 0) -> Iterator[tuple[float, ...]]:
    """Independent uniform coordinates — the baseline distribution."""
    _check(n, ndim)
    rng = random.Random(seed)
    for _ in range(n):
        yield tuple(rng.random() for _ in range(ndim))


def clustered(
    n: int,
    ndim: int,
    clusters: int = 10,
    spread: float = 0.02,
    seed: int = 0,
) -> Iterator[tuple[float, ...]]:
    """Gaussian clusters around random centres.

    Models the "occupied subspaces" argument: most of the data space is
    empty, which is exactly where region-contracting indexes beat linear
    orderings ([KSS+90] as cited in §1).
    """
    _check(n, ndim)
    if clusters < 1:
        raise ReproError(f"need at least one cluster, got {clusters}")
    rng = random.Random(seed)
    centres = [
        tuple(rng.random() for _ in range(ndim)) for _ in range(clusters)
    ]
    for _ in range(n):
        centre = rng.choice(centres)
        yield tuple(_clamp(rng.gauss(c, spread)) for c in centre)


def skewed(
    n: int, ndim: int, exponent: float = 4.0, seed: int = 0
) -> Iterator[tuple[float, ...]]:
    """Density concentrated toward the origin (``u**exponent`` marginals)."""
    _check(n, ndim)
    if exponent <= 0:
        raise ReproError(f"exponent must be positive, got {exponent}")
    rng = random.Random(seed)
    for _ in range(n):
        yield tuple(rng.random() ** exponent for _ in range(ndim))


def diagonal(
    n: int, ndim: int, jitter: float = 0.01, seed: int = 0
) -> Iterator[tuple[float, ...]]:
    """Points along the main diagonal — fully correlated attributes.

    Correlated keys are a classic stress case for multi-dimensional
    indexes: the occupied region is a 1-d manifold inside the n-d space.
    """
    _check(n, ndim)
    rng = random.Random(seed)
    for _ in range(n):
        t = rng.random()
        yield tuple(_clamp(t + rng.uniform(-jitter, jitter)) for _ in range(ndim))


def grid(n: int, ndim: int, seed: int = 0) -> Iterator[tuple[float, ...]]:
    """A shuffled regular grid — perfectly even, duplicate-free coverage."""
    _check(n, ndim)
    side = max(1, math.ceil(n ** (1.0 / ndim)))
    cells = [
        tuple(((idx // side**d) % side + 0.5) / side for d in range(ndim))
        for idx in range(side**ndim)
    ]
    random.Random(seed).shuffle(cells)
    yield from cells[:n]


def zipf_grid(
    n: int,
    ndim: int,
    cells_per_dim: int = 64,
    s: float = 1.2,
    seed: int = 0,
) -> Iterator[tuple[float, ...]]:
    """Zipf-distributed cell popularity — heavy reuse of a few hot cells.

    Points jitter uniformly inside their cell, so hot cells fill local
    data pages and force deep local partitions next to shallow ones —
    the unbalanced-structure case the BV-tree is designed to absorb.
    """
    _check(n, ndim)
    if cells_per_dim < 1:
        raise ReproError(f"need at least one cell, got {cells_per_dim}")
    rng = random.Random(seed)
    ranks = range(1, cells_per_dim + 1)
    weights = [1.0 / r**s for r in ranks]
    for _ in range(n):
        point = []
        for _ in range(ndim):
            cell = rng.choices(ranks, weights=weights)[0] - 1
            point.append((cell + rng.random()) / cells_per_dim)
        yield tuple(point)
