"""Mixed insert/delete operation streams (churn workloads).

The insertion-only generators exercise splitting and promotion; the
merge/demotion machinery of paper §5 only runs under *deletions*, and
the guarantee monitor's exactness claim is about arbitrary interleaved
mixes.  These generators yield ``(verb, point)`` operation tuples —
``("insert", point)`` or ``("delete", point)`` — the shape consumed by
:func:`repro.obs.report.run_doctor` and ``repro doctor --churn``.

Deletions always target a currently live point (the generator tracks
its own inserted set), so every operation is applicable in order —
*provided* the input points are distinct in the consuming tree's key
space.  The generators compare points as float tuples; a tree keys
records by the leading ``resolution`` bits of each coordinate, so two
distinct floats sharing a path are one record to the tree
(``replace=True`` folds them) but two live points to the generator.
Callers feeding dense or clustered populations must path-deduplicate
first, as the doctor CLI and the perf health probe do.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator

from repro.errors import ReproError

__all__ = ["churn", "grow_shrink"]

Operation = tuple[str, tuple[float, ...]]


def churn(
    points: Iterable[tuple[float, ...]],
    delete_fraction: float = 0.3,
    seed: int = 0,
) -> Iterator[Operation]:
    """Interleave deletions of random live points into an insert stream.

    Feeds through ``points`` in order; after each insertion, with
    probability ``delete_fraction / (1 - delete_fraction)`` a uniformly
    chosen live point is deleted, so deletions make up roughly
    ``delete_fraction`` of the operations while the population keeps
    growing.  Identical points repeated in the input are folded into one
    live entry, but the live set compares *float tuples* — points that
    differ as floats yet share a tree path must be deduplicated by the
    caller (see the module docstring).
    """
    if not 0.0 <= delete_fraction < 1.0:
        raise ReproError(
            f"delete_fraction must be in [0, 1), got {delete_fraction}"
        )
    rng = random.Random(seed)
    live: list[tuple[float, ...]] = []
    live_set: set[tuple[float, ...]] = set()
    odds = (
        delete_fraction / (1.0 - delete_fraction) if delete_fraction else 0.0
    )
    for point in points:
        point = tuple(point)
        yield ("insert", point)
        if point not in live_set:
            live.append(point)
            live_set.add(point)
        while live and odds and rng.random() < odds:
            index = rng.randrange(len(live))
            victim = live[index]
            live[index] = live[-1]
            live.pop()
            live_set.remove(victim)
            yield ("delete", victim)


def grow_shrink(
    points: Iterable[tuple[float, ...]],
    shrink_to: float = 0.1,
    seed: int = 0,
) -> Iterator[Operation]:
    """Insert everything, then delete back down to a small remnant.

    The full-drain phase drives the merge/absorb/buddy machinery hard
    (every region eventually underflows), finishing at
    ``ceil(shrink_to * n)`` survivors — the structural-shrink stressor
    for guarantee 1 under deletion.
    """
    if not 0.0 <= shrink_to <= 1.0:
        raise ReproError(f"shrink_to must be in [0, 1], got {shrink_to}")
    rng = random.Random(seed)
    live: list[tuple[float, ...]] = []
    live_set: set[tuple[float, ...]] = set()
    for point in points:
        point = tuple(point)
        yield ("insert", point)
        if point not in live_set:
            live.append(point)
            live_set.add(point)
    keep = -(-len(live) * shrink_to // 1)  # ceil without math import
    rng.shuffle(live)
    while len(live) > keep:
        yield ("delete", live.pop())
