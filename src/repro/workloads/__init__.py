"""Workload generators for the empirical benchmarks.

The paper validates the BV-tree analytically and reports that "a
preliminary modified version of the BANG file, supported by a BV-tree,
confirms the anticipated performance characteristics"; no dataset
survives.  These generators supply the synthetic equivalents: the
structural claims (occupancy, path length, no cascades) are distributional
claims, so they are exercised across uniform, clustered, skewed,
correlated and adversarial point distributions (see DESIGN.md,
substitutions).
"""

from repro.workloads.generators import (
    clustered,
    diagonal,
    grid,
    skewed,
    uniform,
    zipf_grid,
)
from repro.workloads.adversarial import (
    nested_hotspot,
    promotion_storm,
    sequential_1d,
)
from repro.workloads.churn import churn, grow_shrink

__all__ = [
    "churn",
    "clustered",
    "diagonal",
    "grid",
    "grow_shrink",
    "nested_hotspot",
    "promotion_storm",
    "sequential_1d",
    "skewed",
    "uniform",
    "zipf_grid",
]
