"""repro — a reproduction of Freeston's BV-tree (SIGMOD 1995).

"A General Solution of the n-dimensional B-tree Problem" introduces the
BV-tree: an n-dimensional index that preserves the B-tree's guarantees as
far as topologically possible — logarithmic access and update, a
guaranteed 1/3 minimum occupancy of data *and* index pages, and fully
dynamic behaviour.  This package contains the BV-tree itself, every
substrate it rests on, the baselines the paper argues against, and the
analysis machinery behind the paper's evaluation (§7).

Quickstart
----------
>>> from repro import BVTree, DataSpace
>>> space = DataSpace.unit(2)
>>> tree = BVTree(space)
>>> tree.insert((0.25, 0.75), "a record")
>>> tree.get((0.25, 0.75))
'a record'
>>> tree.range_query((0.0, 0.5), (0.5, 1.0)).points()
[(0.25, 0.75)]

Package map
-----------
- :mod:`repro.core` — the BV-tree (and the §8 spatial-object extension).
- :mod:`repro.geometry` — binary-partition geometry (region keys, paths).
- :mod:`repro.storage` — paged storage with I/O accounting.
- :mod:`repro.baselines` — B+-tree, Z-order B-tree, K-D-B tree, BANG
  file, LSD-style splitter.
- :mod:`repro.analysis` — the paper's equations (1)-(18) and figures.
- :mod:`repro.workloads` — synthetic workload generators.
"""

from repro.core.policy import CapacityPolicy
from repro.core.spatial import SpatialIndex
from repro.core.tree import BVTree
from repro.errors import (
    DimensionMismatchError,
    DuplicateKeyError,
    GeometryError,
    KeyNotFoundError,
    OutOfSpaceError,
    PageNotFoundError,
    PageOverflowError,
    ReproError,
    ResolutionExhaustedError,
    StorageError,
    TreeInvariantError,
)
from repro.geometry.rect import Rect
from repro.geometry.region import ROOT_KEY, RegionKey
from repro.geometry.space import DataSpace
from repro.storage.buffer import BufferPool
from repro.storage.interface import Storage
from repro.storage.pager import PageStore

__version__ = "1.0.0"

__all__ = [
    "BVTree",
    "BufferPool",
    "CapacityPolicy",
    "DataSpace",
    "DimensionMismatchError",
    "DuplicateKeyError",
    "GeometryError",
    "KeyNotFoundError",
    "OutOfSpaceError",
    "PageNotFoundError",
    "PageOverflowError",
    "PageStore",
    "ROOT_KEY",
    "Rect",
    "RegionKey",
    "ReproError",
    "ResolutionExhaustedError",
    "SpatialIndex",
    "Storage",
    "StorageError",
    "TreeInvariantError",
    "__version__",
]
