"""Data series for Figures 7-1 and 7-2.

Each figure plots, for heights ``h = 1..9``, the best-case and worst-case
data-node capacity of a uniform-page BV-tree on a ``log_F`` scale; the
shaded gap in the paper is ``log_F(h!)``.  Figure 7-1 uses ``F = 24``,
Figure 7-2 ``F = 120``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis import worstcase


@dataclass(frozen=True)
class FigureRow:
    """One bar of Figure 7-1/7-2."""

    height: int
    best_log_f: float
    worst_log_f: float
    gap: float
    gap_predicted: float  # log_F(h!) — the paper's annotation


def figure_series(
    fanout: int,
    heights: range = range(1, 10),
    integer_constrained: bool = False,
) -> list[FigureRow]:
    """The per-height series of Figure 7-1 (F=24) / 7-2 (F=120)."""
    rows = []
    log_f = math.log(fanout)
    for h in heights:
        best = worstcase.best_case_data_nodes(fanout, h)
        if integer_constrained:
            worst: float = worstcase.worst_case_data_nodes_integer(fanout, h)
        else:
            worst = worstcase.worst_case_data_nodes(fanout, h)
        rows.append(
            FigureRow(
                height=h,
                best_log_f=math.log(best) / log_f,
                worst_log_f=math.log(worst) / log_f,
                gap=(math.log(best) - math.log(worst)) / log_f,
                gap_predicted=math.log(math.factorial(h)) / log_f,
            )
        )
    return rows


def figure_7_1(integer_constrained: bool = False) -> list[FigureRow]:
    """Figure 7-1: uniform page size, fan-out ratio F = 24."""
    return figure_series(24, integer_constrained=integer_constrained)


def figure_7_2(integer_constrained: bool = False) -> list[FigureRow]:
    """Figure 7-2: uniform page size, fan-out ratio F = 120."""
    return figure_series(120, integer_constrained=integer_constrained)


def height_growth_table(
    fanout: int,
    heights: range = range(1, 10),
    integer_constrained: bool = False,
) -> list[tuple[int, int]]:
    """The figures' headline reading: best-case height → worst-case height.

    For each best-case height ``h`` (capacity ``F**h``), the height a
    worst-case tree must grow to in order to hold the same number of data
    nodes.  The paper quotes 3→4, 4→6, 5→10 for F = 24 and 4→5, 6→8..9
    for F = 120.
    """
    out = []
    for h in heights:
        capacity = worstcase.best_case_data_nodes(fanout, h)
        out.append(
            (h, worstcase.worst_case_height(fanout, capacity, integer_constrained))
        )
    return out


def render_figure(rows: list[FigureRow], fanout: int) -> str:
    """A plain-text rendition of Figure 7-1/7-2 (bar per height)."""
    lines = [
        f"log_F(td(h)) for F = {fanout}: best case (#) vs worst case (=)",
        "",
    ]
    scale = 4  # characters per log_F unit
    for row in rows:
        best_bar = "#" * round(row.best_log_f * scale)
        worst_bar = "=" * round(row.worst_log_f * scale)
        lines.append(f"h={row.height}  best  |{best_bar}")
        lines.append(f"      worst |{worst_bar}   (gap {row.gap:.2f})")
    return "\n".join(lines)
