"""Level-scaled index pages (§7.3): equations (10)–(18).

With every index page at level ``x`` enlarged to ``B·x`` bytes — room for
``F`` unpromoted entries plus ``F(x-1)`` guards — the worst-case recursion
of equation (10),

    td(h) = F (1 + sum_{k=1}^{h-1} td(k)),

telescopes into equation (12), ``td(h) = F (F + 1)**(h-1) ≈ F**h``: the
best-case data capacity is restored.  The index node count (equations
13–14) is ``ti(h) = (F + 1)**(h-1)``, keeping the index:data ratio at
``1/F`` (equation 15), and the total index *byte* size (equations 16–18)
stays ≈ ``B·F**(h-1)`` — the enlarged upper-level pages are negligible
because level-1 nodes outnumber everything above them by a factor ``F``.
"""

from __future__ import annotations

from functools import lru_cache

from repro.errors import ReproError


def _check_args(fanout: int, height: int) -> None:
    if fanout < 2:
        raise ReproError(f"fan-out ratio must be at least 2, got {fanout}")
    if height < 0:
        raise ReproError(f"height must be non-negative, got {height}")


@lru_cache(maxsize=None)
def worst_case_data_nodes_recursive(fanout: int, height: int) -> int:
    """Equation (10): ``td(h) = F (1 + sum_{k<h} td(k))``."""
    _check_args(fanout, height)
    if height == 0:
        return 1
    total = 1 + sum(
        worst_case_data_nodes_recursive(fanout, k) for k in range(1, height)
    )
    return fanout * total


def worst_case_data_nodes(fanout: int, height: int) -> int:
    """Equation (12): ``td(h) = F (F + 1)**(h-1) ≈ F**h``."""
    _check_args(fanout, height)
    if height == 0:
        return 1
    return fanout * (fanout + 1) ** (height - 1)


def worst_case_index_nodes(fanout: int, height: int) -> int:
    """Equation (14): ``ti(h) = (F + 1)**(h-1)``."""
    _check_args(fanout, height)
    if height == 0:
        return 0
    return (fanout + 1) ** (height - 1)


def worst_case_ratio(fanout: int, height: int) -> float:
    """Equation (15): ``ti/td = 1/F``, independent of configuration."""
    if height == 0:
        return 0.0
    return worst_case_index_nodes(fanout, height) / worst_case_data_nodes(
        fanout, height
    )


@lru_cache(maxsize=None)
def worst_case_index_bytes(fanout: int, height: int, page_bytes: int) -> int:
    """Equations (16)/(17): total index size with ``B·x`` pages at level x.

    Recursion (17): ``si(1) = B``, ``si(h+1) = si(h)(F + 1) + B``.
    """
    _check_args(fanout, height)
    if page_bytes <= 0:
        raise ReproError(f"page size must be positive, got {page_bytes}")
    if height == 0:
        return 0
    size = page_bytes
    for _ in range(height - 1):
        size = size * (fanout + 1) + page_bytes
    return size


def worst_case_index_bytes_approx(
    fanout: int, height: int, page_bytes: int
) -> float:
    """Equation (18): ``si(h) ≈ B F**(h-1)`` for ``F >> 1``."""
    _check_args(fanout, height)
    if height == 0:
        return 0.0
    return page_bytes * float(fanout) ** (height - 1)


def scaled_page_overhead(fanout: int, height: int, page_bytes: int) -> float:
    """Relative byte overhead of level-scaled pages vs uniform pages.

    The §7.3 claim is that this is negligible: the ratio of equation (17)
    to the uniform-page index size (same node count, all pages ``B``)
    tends to 1 for realistic fan-outs.
    """
    nodes = worst_case_index_nodes(fanout, height)
    if nodes == 0:
        return 0.0
    uniform_bytes = nodes * page_bytes
    scaled_bytes = worst_case_index_bytes(fanout, height, page_bytes)
    return scaled_bytes / uniform_bytes - 1.0


def worst_case_height(fanout: int, data_nodes: int) -> int:
    """Smallest height whose scaled-page worst case reaches ``data_nodes``."""
    if data_nodes < 1:
        raise ReproError(f"need at least one data node, got {data_nodes}")
    height = 0
    while worst_case_data_nodes(fanout, height) < data_nodes:
        height += 1
    return height
