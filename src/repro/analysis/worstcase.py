"""Uniform index page size: equations (1)–(9) of the paper.

Best case (no promoted subtrees), a height-``h`` BV-tree with fan-out
``F`` behaves like a B-tree:

- equation (1): ``td(h) = F**h`` data nodes;
- equation (2): ``ti(h) = (F**h - 1) / (F - 1)`` index nodes, which is
  approximately ``F**(h-1)`` for large ``F`` (equation 3).

Worst case (a full sequence of guards for every unpromoted entry, §7.2):
every node spends a fraction of its fan-out on promoted subtrees, giving
the recursion of equation (4),

    td(h) = (F / h) * (1 + sum_{k=1}^{h-1} td(k)),

whose closed form is the binomial of equation (5),

    td(h) = (F + h - 1)! / ((F - 1)! h!) = C(F + h - 1, h)
          ≈ F**h / h!            for F >> h,

i.e. the worst case loses a factor ``h!`` of data capacity.  The index
node count follows the same pattern (equations 6–8) and the index:data
ratio stays ≈ ``1/F`` in both cases (equations 3 and 9).

The recursions are only exact when ``F/x`` is an integer at every index
level ``x`` (the paper notes F = 60 is the smallest fan-out exact for
height 5); :func:`worst_case_data_nodes_integer` implements the
integer-constrained variant so both readings of the figures can be
reproduced.
"""

from __future__ import annotations

import math
from functools import lru_cache

from repro.errors import ReproError


def _check_args(fanout: int, height: int) -> None:
    if fanout < 2:
        raise ReproError(f"fan-out ratio must be at least 2, got {fanout}")
    if height < 0:
        raise ReproError(f"height must be non-negative, got {height}")


# ----------------------------------------------------------------------
# Best case: equations (1)-(3)
# ----------------------------------------------------------------------


def best_case_data_nodes(fanout: int, height: int) -> int:
    """Equation (1): ``td(h) = F**h``."""
    _check_args(fanout, height)
    return fanout**height


def best_case_index_nodes(fanout: int, height: int) -> int:
    """Equation (2): ``ti(h) = sum_{k=0}^{h-1} F**k = (F**h - 1)/(F - 1)``."""
    _check_args(fanout, height)
    return (fanout**height - 1) // (fanout - 1)


def best_case_ratio(fanout: int, height: int) -> float:
    """Equation (3): ``ti/td ≈ 1/F`` for ``F >> 1``."""
    return best_case_index_nodes(fanout, height) / best_case_data_nodes(
        fanout, height
    )


# ----------------------------------------------------------------------
# Worst case: equations (4)-(9)
# ----------------------------------------------------------------------


@lru_cache(maxsize=None)
def worst_case_data_nodes_recursive(fanout: int, height: int) -> float:
    """Equation (4): ``td(h) = (F/h)(1 + sum_{k<h} td(k))`` (real-valued)."""
    _check_args(fanout, height)
    if height == 0:
        return 1.0
    total = 1.0 + sum(
        worst_case_data_nodes_recursive(fanout, k) for k in range(1, height)
    )
    return fanout / height * total


def worst_case_data_nodes(fanout: int, height: int) -> int:
    """Equation (5): ``td(h) = C(F + h - 1, h)`` — the closed form."""
    _check_args(fanout, height)
    return math.comb(fanout + height - 1, height)


@lru_cache(maxsize=None)
def worst_case_data_nodes_integer(fanout: int, height: int) -> int:
    """Equation (4) with the integer constraint the paper notes.

    Every node devotes ``floor(F/x)`` sons to each role at index level
    ``x``; when ``F/x`` is not integral the achievable worst case is
    smaller than the binomial closed form.
    """
    _check_args(fanout, height)
    if height == 0:
        return 1
    total = 1 + sum(
        worst_case_data_nodes_integer(fanout, k) for k in range(1, height)
    )
    return (fanout // height) * total


@lru_cache(maxsize=None)
def worst_case_index_nodes_recursive(fanout: int, height: int) -> float:
    """Equation (6): ``ti(h) = 1 + (F/h) sum_{k<h} ti(k)`` (real-valued)."""
    _check_args(fanout, height)
    if height == 0:
        return 0.0
    total = sum(
        worst_case_index_nodes_recursive(fanout, k) for k in range(1, height)
    )
    return 1.0 + fanout / height * total


def worst_case_index_nodes(fanout: int, height: int) -> float:
    """Equation (8): ``ti(h) = F (F + h - 1)! / ((F + 1)! h!)``.

    Approximate (the paper neglects the root term of equation 6); equals
    ``C(F + h - 1, h) / (F + 1)`` up to that approximation.
    """
    _check_args(fanout, height)
    if height == 0:
        return 0.0
    return (
        fanout
        * math.comb(fanout + height - 1, height)
        * math.factorial(fanout - 1)
        / math.factorial(fanout + 1)
    )


def worst_case_ratio(fanout: int, height: int) -> float:
    """Equation (9): ``ti/td ≈ 1/F`` in the worst case as well."""
    return worst_case_index_nodes(fanout, height) / worst_case_data_nodes(
        fanout, height
    )


def capacity_loss_factor(fanout: int, height: int) -> float:
    """The paper's headline: worst case loses a factor ``≈ h!``.

    Returns ``td_best / td_worst``; equals ``h!`` exactly in the
    ``F >> h`` limit.
    """
    return best_case_data_nodes(fanout, height) / worst_case_data_nodes(
        fanout, height
    )


# ----------------------------------------------------------------------
# Height predictions
# ----------------------------------------------------------------------


def best_case_height(fanout: int, data_nodes: int) -> int:
    """Smallest height whose best-case capacity reaches ``data_nodes``."""
    if data_nodes < 1:
        raise ReproError(f"need at least one data node, got {data_nodes}")
    height = 0
    while best_case_data_nodes(fanout, height) < data_nodes:
        height += 1
    return height


def worst_case_height(
    fanout: int, data_nodes: int, integer_constrained: bool = False
) -> int:
    """Smallest height whose worst-case capacity reaches ``data_nodes``."""
    if data_nodes < 1:
        raise ReproError(f"need at least one data node, got {data_nodes}")
    capacity = (
        worst_case_data_nodes_integer
        if integer_constrained
        else worst_case_data_nodes
    )
    height = 0
    while capacity(fanout, height) < data_nodes:
        height += 1
    return height


def height_penalty(
    fanout: int, data_nodes: int, integer_constrained: bool = False
) -> int:
    """Extra index levels the worst case needs for the same data size."""
    return worst_case_height(
        fanout, data_nodes, integer_constrained
    ) - best_case_height(fanout, data_nodes)
