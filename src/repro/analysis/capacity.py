"""File-size thresholds quoted in §7.2 and §7.3.

The paper summarises the uniform-page worst case in terms of file sizes
(1 KByte data pages):

- F = 24: the index grows by at most 2 levels up to data sets of order
  100 MBytes;
- F = 120: at most 1 extra level up to ~200 GBytes, at most 2 up to
  ~25 TBytes; a height 8–9 tree corresponds to a ~3 PByte file.

These are all corollaries of the height functions in
:mod:`repro.analysis.worstcase`; this module computes the thresholds
exactly so the quoted numbers can be checked.
"""

from __future__ import annotations

from repro.analysis import worstcase
from repro.errors import ReproError


def file_bytes(data_nodes: int, page_bytes: int = 1024) -> int:
    """Data-set size for a number of data pages."""
    return data_nodes * page_bytes


def data_nodes_for_file(file_size: float, page_bytes: int = 1024) -> int:
    """Number of data pages needed for a file of ``file_size`` bytes."""
    if file_size <= 0:
        raise ReproError(f"file size must be positive, got {file_size}")
    return max(1, int(file_size // page_bytes))


def height_penalty_for_file(
    fanout: int,
    file_size: float,
    page_bytes: int = 1024,
    integer_constrained: bool = False,
) -> int:
    """Extra worst-case index levels for a file of the given byte size."""
    nodes = data_nodes_for_file(file_size, page_bytes)
    return worstcase.height_penalty(fanout, nodes, integer_constrained)


def max_file_size_with_penalty(
    fanout: int,
    max_penalty: int,
    page_bytes: int = 1024,
    max_height: int = 12,
    integer_constrained: bool = False,
) -> int:
    """Largest file size (bytes) whose worst-case penalty stays within bound.

    Scans the capacity breakpoints: the penalty is a step function of the
    data-node count, jumping where either the best-case or the worst-case
    height does.  Returns the file size just below the first node count
    whose penalty exceeds ``max_penalty``.
    """
    if max_penalty < 0:
        raise ReproError(f"penalty bound must be non-negative, got {max_penalty}")
    breakpoints: set[int] = set()
    capacity = (
        worstcase.worst_case_data_nodes_integer
        if integer_constrained
        else worstcase.worst_case_data_nodes
    )
    for h in range(1, max_height + 1):
        breakpoints.add(worstcase.best_case_data_nodes(fanout, h) + 1)
        breakpoints.add(capacity(fanout, h) + 1)
    last_good = 1
    for nodes in sorted(breakpoints):
        penalty = worstcase.height_penalty(fanout, nodes, integer_constrained)
        if penalty > max_penalty:
            return file_bytes(nodes - 1, page_bytes)
        last_good = nodes
    return file_bytes(last_good, page_bytes)


def worst_case_file_size_at_height(
    fanout: int, height: int, page_bytes: int = 1024
) -> int:
    """File size a worst-case tree of this height can hold (§7.2's 3 PB)."""
    return file_bytes(
        worstcase.worst_case_data_nodes(fanout, height), page_bytes
    )
