"""Worst-case analysis of the BV-tree (paper §7).

This subpackage reproduces the paper's analytical evaluation:

- :mod:`repro.analysis.worstcase` — uniform index page size: equations
  (1)–(9), exact recursions and the closed-form approximations.
- :mod:`repro.analysis.multipage` — level-scaled index pages (§7.3):
  equations (10)–(18).
- :mod:`repro.analysis.capacity` — the file-size thresholds quoted in
  §7.2/§7.3 (how large a file can grow before the worst case costs an
  extra index level).
- :mod:`repro.analysis.figures` — the data series behind Figures 7-1 and
  7-2.
"""

from repro.analysis import capacity, figures, multipage, worstcase

__all__ = ["capacity", "figures", "multipage", "worstcase"]
