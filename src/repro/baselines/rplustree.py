"""The R+-tree ([SRF87]) — objects clipped into disjoint regions.

The R+-tree removes the R-tree's overlap by partitioning space into
disjoint regions and **duplicating** every object that straddles a
region boundary into each region it intersects.  §1 names the
consequence: "dividing an object into several parts ... introduces the
uncontrollable update characteristics we are trying to avoid (and which,
for example, the R+ tree also shows)".

``stats.object_copies`` counts the stored copies beyond one per object,
and ``stats.forced_partitions`` the splits whose cut line intersected
objects; both grow with the data — the behaviour the dual representation
(:mod:`repro.core.spatial`) avoids entirely.  Deletion is omitted, as in
the original proposal's practical descriptions (deleting requires
locating and removing every copy).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import GeometryError, TreeInvariantError
from repro.geometry.rect import Rect
from repro.geometry.space import DataSpace
from repro.storage.pager import PageStore


@dataclass
class RPlusStats:
    """Structural counters."""

    leaf_splits: int = 0
    branch_splits: int = 0
    object_copies: int = 0
    forced_partitions: int = 0


class _Leaf:
    __slots__ = ("entries",)

    def __init__(self) -> None:
        # (object rect, object id, value); copies share the object id.
        self.entries: list[tuple[Rect, int, Any]] = []


class _Branch:
    __slots__ = ("children",)

    def __init__(self) -> None:
        self.children: list[tuple[Rect, int]] = []  # disjoint (region, page)


class RPlusTree:
    """An R+-tree over rectangles (insert and query)."""

    def __init__(
        self,
        space: DataSpace,
        capacity: int = 16,
        page_bytes: int = 1024,
        store: PageStore | None = None,
    ):
        if capacity < 4:
            raise TreeInvariantError(
                f"R+-tree pages need capacity of at least 4, got {capacity}"
            )
        self.space = space
        self.capacity = capacity
        self.store = store if store is not None else PageStore(page_bytes)
        self.stats = RPlusStats()
        self.count = 0
        self.height = 0
        self.root_page = self.store.allocate(_Leaf(), size_class=0)
        self._next_object = itertools.count()

    # ------------------------------------------------------------------
    # Insertion — one copy per intersected leaf region
    # ------------------------------------------------------------------

    def insert(self, rect: Rect, value: Any = None) -> None:
        """Store an object (one copy per leaf region it intersects)."""
        if rect.ndim != self.space.ndim:
            raise GeometryError(
                f"object is {rect.ndim}-d, space is {self.space.ndim}-d"
            )
        if not self.space.whole_rect().contains_rect(rect):
            raise GeometryError(f"{rect!r} exceeds the data space")
        object_id = next(self._next_object)
        self.count += 1
        leaves = self._leaves_intersecting(rect)
        self.stats.object_copies += len(leaves) - 1
        for path in leaves:
            leaf: _Leaf = self.store.read(path[-1])
            leaf.entries.append((rect, object_id, value))
            self.store.write(path[-1], leaf)
        # Splits after all copies are placed.  A split restructures the
        # tree (possibly cascading into ancestors), so each subsequent
        # overfull leaf is re-located with a fresh path.
        for path in leaves:
            page = path[-1]
            if page not in self.store:
                continue
            leaf = self.store.read(page)
            if isinstance(leaf, _Leaf) and len(leaf.entries) > self.capacity:
                fresh = self._path_to(page)
                if fresh is not None:
                    self._split_leaf(fresh)

    def _path_to(self, page: int) -> list[int] | None:
        """A current root-to-page path (None if the page left the tree)."""
        stack: list[list[int]] = [[self.root_page]]
        while stack:
            path = stack.pop()
            if path[-1] == page:
                return path
            node = self.store.read(path[-1])
            if isinstance(node, _Branch):
                stack.extend(path + [child] for _, child in node.children)
        return None

    def _leaves_intersecting(self, rect: Rect) -> list[list[int]]:
        paths: list[list[int]] = []
        stack: list[list[int]] = [[self.root_page]]
        while stack:
            path = stack.pop()
            node = self.store.read(path[-1])
            if isinstance(node, _Leaf):
                paths.append(path)
                continue
            for region, child in node.children:
                if region.intersects(rect):
                    stack.append(path + [child])
        return paths

    # ------------------------------------------------------------------
    # Splitting — a cut line; straddling objects are duplicated
    # ------------------------------------------------------------------

    def _region_of(self, path: list[int]) -> Rect:
        rect = self.space.whole_rect()
        for parent_page, child_page in zip(path, path[1:]):
            parent: _Branch = self.store.read(parent_page)
            for r, c in parent.children:
                if c == child_page:
                    rect = r
                    break
        return rect

    def _choose_cut(
        self, region: Rect, rects: list[Rect]
    ) -> tuple[int, float]:
        """A cut minimising (straddles, imbalance) over object edges."""
        best: tuple[int, float] | None = None
        best_score: tuple[int, int] | None = None
        for dim in range(self.space.ndim):
            edges = sorted(
                {r.lows[dim] for r in rects} | {r.highs[dim] for r in rects}
            )
            for at in edges:
                if not region.lows[dim] < at < region.highs[dim]:
                    continue
                left = sum(1 for r in rects if r.lows[dim] < at)
                right = sum(1 for r in rects if r.highs[dim] > at)
                straddle = sum(
                    1 for r in rects if r.lows[dim] < at < r.highs[dim]
                )
                if left == 0 or right == 0:
                    continue
                score = (straddle, abs(left - right))
                if best_score is None or score < best_score:
                    best, best_score = (dim, at), score
        if best is None:
            # All edges coincide with the region border: cut at the middle.
            widths = [hi - lo for lo, hi in zip(region.lows, region.highs)]
            dim = widths.index(max(widths))
            best = (dim, (region.lows[dim] + region.highs[dim]) / 2)
        return best

    def _cut_rect(self, rect: Rect, dim: int, at: float) -> tuple[Rect, Rect]:
        left_highs = list(rect.highs)
        left_highs[dim] = at
        right_lows = list(rect.lows)
        right_lows[dim] = at
        return Rect(rect.lows, left_highs), Rect(right_lows, rect.highs)

    def _split_leaf(self, path: list[int]) -> None:
        page_id = path[-1]
        leaf: _Leaf = self.store.read(page_id)
        region = self._region_of(path)
        dim, at = self._choose_cut(region, [r for r, _, _ in leaf.entries])
        left_region, right_region = self._cut_rect(region, dim, at)
        left, right = _Leaf(), _Leaf()
        for rect, object_id, value in leaf.entries:
            in_left = rect.lows[dim] < at
            in_right = rect.highs[dim] > at
            if in_left:
                left.entries.append((rect, object_id, value))
            if in_right:
                right.entries.append((rect, object_id, value))
            if in_left and in_right:
                self.stats.object_copies += 1
        if any(
            r.lows[dim] < at < r.highs[dim] for r, _, _ in leaf.entries
        ):
            self.stats.forced_partitions += 1
        self.stats.leaf_splits += 1
        right_page = self.store.allocate(right, size_class=0)
        self.store.write(page_id, left)
        self._replace_in_parent(
            path, page_id,
            [(left_region, page_id), (right_region, right_page)],
        )

    def _split_branch(self, path: list[int]) -> None:
        # Disjoint child regions: cut along an existing child boundary
        # where possible; children straddling the cut are split in place
        # (recursively) — the same downward forcing as the K-D-B tree.
        page_id = path[-1]
        branch: _Branch = self.store.read(page_id)
        region = self._region_of(path)
        dim, at = self._choose_cut(region, [r for r, _ in branch.children])
        left, right = _Branch(), _Branch()
        for child_region, child in branch.children:
            if child_region.highs[dim] <= at:
                left.children.append((child_region, child))
            elif child_region.lows[dim] >= at:
                right.children.append((child_region, child))
            else:
                self.stats.forced_partitions += 1
                cl, cr = self._cut_rect(child_region, dim, at)
                pl, pr = self._split_subtree(child, dim, at)
                left.children.append((cl, pl))
                right.children.append((cr, pr))
        left_region, right_region = self._cut_rect(region, dim, at)
        self.stats.branch_splits += 1
        right_page = self.store.allocate(right, size_class=1)
        self.store.write(page_id, left)
        self._replace_in_parent(
            path, page_id,
            [(left_region, page_id), (right_region, right_page)],
        )

    def _split_subtree(self, page: int, dim: int, at: float) -> tuple[int, int]:
        node = self.store.read(page)
        if isinstance(node, _Leaf):
            left, right = _Leaf(), _Leaf()
            for rect, object_id, value in node.entries:
                if rect.lows[dim] < at:
                    left.entries.append((rect, object_id, value))
                if rect.highs[dim] > at:
                    right.entries.append((rect, object_id, value))
            self.store.write(page, left)
            return page, self.store.allocate(right, size_class=0)
        left_b, right_b = _Branch(), _Branch()
        for child_region, child in node.children:
            if child_region.highs[dim] <= at:
                left_b.children.append((child_region, child))
            elif child_region.lows[dim] >= at:
                right_b.children.append((child_region, child))
            else:
                cl, cr = self._cut_rect(child_region, dim, at)
                pl, pr = self._split_subtree(child, dim, at)
                left_b.children.append((cl, pl))
                right_b.children.append((cr, pr))
        self.store.write(page, left_b)
        return page, self.store.allocate(right_b, size_class=1)

    def _replace_in_parent(
        self,
        path: list[int],
        old_page: int,
        replacements: list[tuple[Rect, int]],
    ) -> None:
        if len(path) == 1:
            root = _Branch()
            root.children = replacements
            self.root_page = self.store.allocate(root, size_class=1)
            self.height += 1
            return
        parent_page = path[-2]
        parent: _Branch = self.store.read(parent_page)
        parent.children = [
            (r, c) for r, c in parent.children if c != old_page
        ] + replacements
        self.store.write(parent_page, parent)
        if len(parent.children) > self.capacity:
            self._split_branch(path[:-1])

    # ------------------------------------------------------------------
    # Queries — copies deduplicated by object id
    # ------------------------------------------------------------------

    def intersecting(self, rect: Rect) -> tuple[list[tuple[Rect, Any]], int]:
        """Objects intersecting ``rect`` plus pages visited."""
        seen: dict[int, tuple[Rect, Any]] = {}
        pages = 0
        stack = [self.root_page]
        while stack:
            pages += 1
            node = self.store.read(stack.pop())
            if isinstance(node, _Leaf):
                for r, object_id, value in node.entries:
                    if object_id not in seen and r.intersects(rect):
                        seen[object_id] = (r, value)
            else:
                stack.extend(
                    child for r, child in node.children if r.intersects(rect)
                )
        return list(seen.values()), pages

    def containing_point(
        self, point: Sequence[float]
    ) -> tuple[list[tuple[Rect, Any]], int]:
        """Objects containing ``point`` — one region, one path down."""
        seen: dict[int, tuple[Rect, Any]] = {}
        pages = 0
        stack = [self.root_page]
        while stack:
            pages += 1
            node = self.store.read(stack.pop())
            if isinstance(node, _Leaf):
                for r, object_id, value in node.entries:
                    if object_id not in seen and r.contains_point(point):
                        seen[object_id] = (r, value)
            else:
                stack.extend(
                    child
                    for r, child in node.children
                    if r.contains_point(point)
                )
        return list(seen.values()), pages

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stored_copies(self) -> int:
        """Total leaf entries — ``count`` plus the duplicated copies."""
        total = 0
        stack = [self.root_page]
        while stack:
            node = self.store.read(stack.pop())
            if isinstance(node, _Leaf):
                total += len(node.entries)
            else:
                stack.extend(c for _, c in node.children)
        return total

    def check(self) -> None:
        """Verify region disjointness and copy/coverage consistency."""
        object_ids: set[int] = set()
        stack: list[tuple[int, Rect]] = [(self.root_page, self.space.whole_rect())]
        while stack:
            page, region = stack.pop()
            node = self.store.read(page)
            if isinstance(node, _Leaf):
                for rect, object_id, _ in node.entries:
                    if not rect.intersects(region):
                        raise TreeInvariantError(
                            f"copy of {rect!r} in non-intersecting region "
                            f"{region!r}"
                        )
                    object_ids.add(object_id)
                continue
            for i, (r1, _) in enumerate(node.children):
                for r2, _ in node.children[i + 1 :]:
                    if r1.intersects(r2):
                        raise TreeInvariantError(
                            f"overlapping R+ regions {r1!r}, {r2!r}"
                        )
            for child_region, child in node.children:
                if not region.contains_rect(child_region):
                    raise TreeInvariantError(
                        f"child region {child_region!r} escapes {region!r}"
                    )
                stack.append((child, child_region))
        if len(object_ids) != self.count:
            raise TreeInvariantError(
                f"count {self.count} != distinct objects {len(object_ids)}"
            )

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (
            f"RPlusTree({self.count} objects, {self.stored_copies()} copies, "
            f"height={self.height})"
        )
