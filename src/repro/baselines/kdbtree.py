"""Robinson's K-D-B tree ([Rob81]) — the paper's Figure 1-1/1-2 exhibit.

Data and directory pages are rectangular subspaces.  A directory page
splits about a hyperplane; any child region the plane cuts must itself be
split, and the effect cascades down every level to the leaves (Figure
1-2).  The consequences of a single insertion are therefore unbounded, and
because the cascading splits have no freedom in where they cut, no minimum
page occupancy can be maintained — the two defects the BV-tree removes.

``stats.forced_splits`` counts pages split by a cascade (as opposed to
ordinary overflow splits), and ``stats.max_cascade`` the largest number of
pages a single insertion forced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import (
    DuplicateKeyError,
    GeometryError,
    KeyNotFoundError,
    TreeInvariantError,
)
from repro.core.query import QueryResult
from repro.geometry.rect import Rect
from repro.geometry.space import DataSpace
from repro.storage.pager import PageStore


@dataclass
class KDBStats:
    """Structural event counters for the K-D-B tree."""

    data_splits: int = 0
    index_splits: int = 0
    forced_splits: int = 0
    max_cascade: int = 0


class _DataPage:
    __slots__ = ("records",)

    def __init__(self) -> None:
        self.records: list[tuple[tuple[float, ...], Any]] = []


class _IndexPage:
    __slots__ = ("children",)

    def __init__(self) -> None:
        self.children: list[tuple[Rect, int]] = []


class KDBTree:
    """A K-D-B tree over a bounded data space."""

    def __init__(
        self,
        space: DataSpace,
        data_capacity: int = 16,
        fanout: int = 16,
        page_bytes: int = 1024,
        store: PageStore | None = None,
    ):
        if data_capacity < 2:
            raise TreeInvariantError(
                f"data pages must hold at least 2 points, got {data_capacity}"
            )
        if fanout < 4:
            raise TreeInvariantError(f"fan-out must be at least 4, got {fanout}")
        self.space = space
        self.data_capacity = data_capacity
        self.fanout = fanout
        self.store = store if store is not None else PageStore(page_bytes)
        self.stats = KDBStats()
        self.count = 0
        self.height = 0
        self.root_page = self.store.allocate(_DataPage(), size_class=0)
        self._cascade = 0

    # ------------------------------------------------------------------
    # Point operations
    # ------------------------------------------------------------------

    def _descend(self, point: tuple[float, ...]) -> tuple[list[int], _DataPage]:
        path = [self.root_page]
        node = self.store.read(self.root_page)
        while isinstance(node, _IndexPage):
            for rect, child in node.children:
                if rect.contains_point(point):
                    path.append(child)
                    node = self.store.read(child)
                    break
            else:
                raise TreeInvariantError(
                    f"no child region contains point {point}"
                )
        return path, node

    def insert(
        self, point: Sequence[float], value: Any = None, replace: bool = False
    ) -> None:
        """Insert a record; exact-duplicate points raise unless ``replace``."""
        pt = tuple(float(x) for x in point)
        if not self.space.whole_rect().contains_point(pt):
            raise GeometryError(f"point {pt} outside the data space")
        path, page = self._descend(pt)
        for i, (existing, _) in enumerate(page.records):
            if existing == pt:
                if not replace:
                    raise DuplicateKeyError(f"point {pt} already present")
                page.records[i] = (pt, value)
                self.store.write(path[-1], page)
                return
        page.records.append((pt, value))
        self.store.write(path[-1], page)
        self.count += 1
        if len(page.records) > self.data_capacity:
            self._cascade = 0
            self._split_data(path, self.space.whole_rect())

    def get(self, point: Sequence[float]) -> Any:
        """The value at ``point`` (KeyNotFoundError if absent)."""
        pt = tuple(float(x) for x in point)
        _, page = self._descend(pt)
        for existing, value in page.records:
            if existing == pt:
                return value
        raise KeyNotFoundError(f"no record at {pt}")

    def search_cost(self, point: Sequence[float]) -> int:
        """Pages visited by an exact-match search."""
        path, _ = self._descend(tuple(float(x) for x in point))
        return len(path)

    def delete(self, point: Sequence[float]) -> Any:
        """Remove a record (no reorganisation — the paper's point is that
        K-D-B deletion cannot maintain occupancy; see §1 and §5)."""
        pt = tuple(float(x) for x in point)
        path, page = self._descend(pt)
        for i, (existing, value) in enumerate(page.records):
            if existing == pt:
                page.records.pop(i)
                self.store.write(path[-1], page)
                self.count -= 1
                return value
        raise KeyNotFoundError(f"no record at {pt}")

    # ------------------------------------------------------------------
    # Splitting, with cascades
    # ------------------------------------------------------------------

    def _region_of(self, path: list[int]) -> Rect:
        """The rectangle of the page at the end of ``path``."""
        rect = self.space.whole_rect()
        for parent_page, child_page in zip(path, path[1:]):
            parent: _IndexPage = self.store.read(parent_page)
            for r, c in parent.children:
                if c == child_page:
                    rect = r
                    break
        return rect

    def _split_data(self, path: list[int], _root_rect: Rect) -> None:
        page_id = path[-1]
        page: _DataPage = self.store.read(page_id)
        rect = self._region_of(path)
        dim, split_at = self._choose_plane_points(rect, page.records)
        left_rect, right_rect = self._cut_rect(rect, dim, split_at)
        left, right = _DataPage(), _DataPage()
        for record in page.records:
            (left if record[0][dim] < split_at else right).records.append(record)
        self.stats.data_splits += 1
        right_page = self.store.allocate(right, size_class=0)
        self.store.write(page_id, left)
        # Reuse page_id for the left half; register both with the parent.
        self._replace_in_parent(
            path, page_id, [(left_rect, page_id), (right_rect, right_page)]
        )

    def _choose_plane_points(
        self, rect: Rect, records: list[tuple[tuple[float, ...], Any]]
    ) -> tuple[int, float]:
        """Median split along the widest dimension with spread."""
        best_dim, best_spread = 0, -1.0
        for dim in range(self.space.ndim):
            values = [p[dim] for p, _ in records]
            spread = max(values) - min(values)
            if spread > best_spread:
                best_dim, best_spread = dim, spread
        values = sorted(p[best_dim] for p, _ in records)
        split_at = values[len(values) // 2]
        if split_at == values[0]:  # all medians equal the minimum
            higher = [v for v in values if v > split_at]
            if not higher:
                raise TreeInvariantError(
                    f"cannot split {len(records)} coincident points"
                )
            split_at = higher[0]
        return best_dim, split_at

    def _cut_rect(self, rect: Rect, dim: int, at: float) -> tuple[Rect, Rect]:
        if not rect.lows[dim] < at < rect.highs[dim]:
            raise TreeInvariantError(
                f"plane {dim}={at} outside region {rect!r}"
            )
        left_highs = list(rect.highs)
        left_highs[dim] = at
        right_lows = list(rect.lows)
        right_lows[dim] = at
        return Rect(rect.lows, left_highs), Rect(right_lows, rect.highs)

    def _replace_in_parent(
        self,
        path: list[int],
        old_page: int,
        replacements: list[tuple[Rect, int]],
    ) -> None:
        if len(path) == 1:
            # The split page was the root: grow the tree.
            root = _IndexPage()
            root.children = replacements
            self.root_page = self.store.allocate(root, size_class=1)
            self.height += 1
            self._check_index_overflow([self.root_page])
            return
        parent_page = path[-2]
        parent: _IndexPage = self.store.read(parent_page)
        parent.children = [
            (r, c) for r, c in parent.children if c != old_page
        ] + replacements
        self.store.write(parent_page, parent)
        self._check_index_overflow(path[:-1])

    def _check_index_overflow(self, path: list[int]) -> None:
        node_page = path[-1]
        node: _IndexPage = self.store.read(node_page)
        if len(node.children) <= self.fanout:
            return
        rect = self._region_of(path)
        dim, split_at = self._choose_plane_children(rect, node.children)
        self.stats.index_splits += 1
        left_page, right_page = self._split_subtree_at(
            node_page, rect, dim, split_at, forced=False
        )
        left_rect, right_rect = self._cut_rect(rect, dim, split_at)
        self.stats.max_cascade = max(self.stats.max_cascade, self._cascade)
        self._replace_in_parent(
            path, node_page, [(left_rect, left_page), (right_rect, right_page)]
        )

    def _choose_plane_children(
        self, rect: Rect, children: list[tuple[Rect, int]]
    ) -> tuple[int, float]:
        """A median plane over child boundaries (Robinson: an arbitrary
        choice; taking a child boundary at least avoids cutting *every*
        child, but some children straddle it in general)."""
        best: tuple[int, float] | None = None
        best_score = -1
        for dim in range(self.space.ndim):
            edges = sorted(
                {r.lows[dim] for r, _ in children}
                | {r.highs[dim] for r, _ in children}
            )
            edges = [e for e in edges if rect.lows[dim] < e < rect.highs[dim]]
            if not edges:
                continue
            at = edges[len(edges) // 2]
            left = sum(1 for r, _ in children if r.highs[dim] <= at)
            right = sum(1 for r, _ in children if r.lows[dim] >= at)
            score = min(left, right)
            if score > best_score:
                best, best_score = (dim, at), score
        if best is None:
            raise TreeInvariantError("no admissible split plane for index page")
        return best

    def _split_subtree_at(
        self, page_id: int, rect: Rect, dim: int, at: float, forced: bool
    ) -> tuple[int, int]:
        """Split a subtree about a fixed plane; cascades into children.

        This is the heart of the K-D-B pathology: except at the top, the
        plane is imposed from above, so the split has no freedom to
        balance and every straddling child is split recursively.
        """
        if forced:
            self.stats.forced_splits += 1
            self._cascade += 1
        node = self.store.read(page_id)
        if isinstance(node, _DataPage):
            left, right = _DataPage(), _DataPage()
            for record in node.records:
                (left if record[0][dim] < at else right).records.append(record)
            self.store.write(page_id, left)
            right_page = self.store.allocate(right, size_class=0)
            return page_id, right_page
        left_node, right_node = _IndexPage(), _IndexPage()
        for child_rect, child_page in node.children:
            if child_rect.highs[dim] <= at:
                left_node.children.append((child_rect, child_page))
            elif child_rect.lows[dim] >= at:
                right_node.children.append((child_rect, child_page))
            else:
                cl, cr = self._cut_rect(child_rect, dim, at)
                pl, pr = self._split_subtree_at(
                    child_page, child_rect, dim, at, forced=True
                )
                left_node.children.append((cl, pl))
                right_node.children.append((cr, pr))
        self.store.write(page_id, left_node)
        right_page = self.store.allocate(right_node, size_class=1)
        return page_id, right_page

    # ------------------------------------------------------------------
    # Queries and introspection
    # ------------------------------------------------------------------

    def range_query(
        self, lows: Sequence[float], highs: Sequence[float]
    ) -> QueryResult:
        """All records in the half-open box."""
        rect = Rect(lows, highs)
        result = QueryResult()
        stack = [self.root_page]
        while stack:
            result.pages_visited += 1
            node = self.store.read(stack.pop())
            if isinstance(node, _DataPage):
                result.data_pages_visited += 1
                for point, value in node.records:
                    if rect.contains_point(point):
                        result.records.append((point, value))
            else:
                for child_rect, child in node.children:
                    if child_rect.intersects(rect):
                        stack.append(child)
        return result

    def occupancies(self) -> tuple[list[int], list[int]]:
        """(data page sizes, index page child-counts)."""
        data: list[int] = []
        index: list[int] = []
        stack = [self.root_page]
        while stack:
            node = self.store.read(stack.pop())
            if isinstance(node, _DataPage):
                data.append(len(node.records))
            else:
                index.append(len(node.children))
                stack.extend(child for _, child in node.children)
        return data, index

    def check(self) -> None:
        """Verify the partition: disjoint children tiling each region."""
        total = 0
        stack: list[tuple[int, Rect]] = [(self.root_page, self.space.whole_rect())]
        while stack:
            page_id, rect = stack.pop()
            node = self.store.read(page_id)
            if isinstance(node, _DataPage):
                total += len(node.records)
                for point, _ in node.records:
                    if not rect.contains_point(point):
                        raise TreeInvariantError(
                            f"point {point} outside its region {rect!r}"
                        )
                continue
            if not node.children:
                raise TreeInvariantError(f"empty index page {page_id}")
            volume = 0.0
            for child_rect, child in node.children:
                if not rect.contains_rect(child_rect):
                    raise TreeInvariantError(
                        f"child region {child_rect!r} escapes {rect!r}"
                    )
                volume += child_rect.volume()
                stack.append((child, child_rect))
            for i, (r1, _) in enumerate(node.children):
                for r2, _ in node.children[i + 1 :]:
                    if r1.intersects(r2):
                        raise TreeInvariantError(
                            f"overlapping child regions {r1!r} and {r2!r}"
                        )
            if abs(volume - rect.volume()) > 1e-9 * rect.volume():
                raise TreeInvariantError(
                    f"children of page {page_id} do not tile their region"
                )
        if total != self.count:
            raise TreeInvariantError(
                f"count {self.count} != records {total}"
            )

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return f"KDBTree({self.count} records, height={self.height})"
