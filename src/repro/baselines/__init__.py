"""Baseline index structures the paper positions the BV-tree against.

- :mod:`repro.baselines.btree` — the 1-d B+-tree ([BM72]): the gold
  standard whose properties the BV-tree generalises, and the substrate of
  the Z-order workaround.
- :mod:`repro.baselines.zbtree` — Z/Morton-order linearisation over the
  B+-tree ([Ore86]): inherits B-tree worst cases but cannot contract to
  occupied subspaces, which costs it on range queries ([KSS+90]).
- :mod:`repro.baselines.kdbtree` — Robinson's K-D-B tree ([Rob81]):
  directory splits cascade into the subtrees (paper Figures 1-1/1-2);
  instrumented to count forced splits.
- :mod:`repro.baselines.bangfile` — the BANG file with a *balanced*
  directory ([Fre87]): balanced binary splits plus enclosure, but a
  directory split boundary may cut lower-level regions (Figure 1-3),
  forcing downward splits; instrumented likewise.
- :mod:`repro.baselines.lsdtree` — an LSD/Buddy-style first-partition
  splitter ([HSW89]/[SK90]): avoids cascades by always splitting the
  directory at the first partition of the binary sequence, abandoning
  directory occupancy control.
- :mod:`repro.baselines.rtree` / :mod:`repro.baselines.rplustree` — the
  spatial-object structures of §1/§8 ([Gut84], [SRF87]): the R-tree's
  overlapping regions make search unbounded, the R+-tree's clipping
  duplicates objects; the dual representation
  (:mod:`repro.core.spatial`) avoids both.
"""

from repro.baselines.bangfile import BangFile
from repro.baselines.btree import BPlusTree
from repro.baselines.kdbtree import KDBTree
from repro.baselines.lsdtree import LSDTree
from repro.baselines.rplustree import RPlusTree
from repro.baselines.rtree import RTree
from repro.baselines.zbtree import ZOrderBTree

__all__ = [
    "BangFile",
    "BPlusTree",
    "KDBTree",
    "LSDTree",
    "RPlusTree",
    "RTree",
    "ZOrderBTree",
]
