"""A paged B+-tree ([BM72], [Com79]).

The structure whose guarantees the BV-tree generalises: logarithmic
access and update, minimum 50% node occupancy, fully dynamic.  Keys are
arbitrary orderable scalars; leaves are chained for range scans.  Pages
live in a :class:`~repro.storage.PageStore` so page-access counts are
directly comparable with the other structures.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator

from repro.errors import KeyNotFoundError, TreeInvariantError
from repro.storage.pager import PageStore


class _Leaf:
    __slots__ = ("keys", "values", "next_leaf")

    def __init__(self) -> None:
        self.keys: list[Any] = []
        self.values: list[Any] = []
        self.next_leaf: int | None = None


class _Branch:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        # children[i] holds keys < keys[i]; children[-1] the rest.
        self.keys: list[Any] = []
        self.children: list[int] = []


class BPlusTree:
    """A B+-tree of order ``fanout`` (max children per branch).

    Leaves hold at most ``leaf_capacity`` records.  Deletion rebalances by
    borrowing from or merging with siblings, maintaining the classic 50%
    minimum occupancy (except the root).
    """

    def __init__(
        self,
        leaf_capacity: int = 16,
        fanout: int = 16,
        page_bytes: int = 1024,
        store: PageStore | None = None,
    ):
        if leaf_capacity < 2:
            raise TreeInvariantError(
                f"leaves must hold at least 2 records, got {leaf_capacity}"
            )
        if fanout < 3:
            raise TreeInvariantError(f"fan-out must be at least 3, got {fanout}")
        self.leaf_capacity = leaf_capacity
        self.fanout = fanout
        self.store = store if store is not None else PageStore(page_bytes)
        self.count = 0
        self.height = 0  # number of branch levels above the leaves
        self.root_page = self.store.allocate(_Leaf(), size_class=0)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def _descend(self, key: Any) -> tuple[list[int], _Leaf]:
        """Root-to-leaf path (page ids) and the leaf object for ``key``."""
        path = [self.root_page]
        node = self.store.read(self.root_page)
        while isinstance(node, _Branch):
            idx = bisect.bisect_right(node.keys, key)
            path.append(node.children[idx])
            node = self.store.read(node.children[idx])
        return path, node

    def get(self, key: Any) -> Any:
        """The value stored under ``key`` (KeyNotFoundError if absent)."""
        _, leaf = self._descend(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.values[idx]
        raise KeyNotFoundError(f"key {key!r} not found")

    def contains(self, key: Any) -> bool:
        """True if ``key`` is present."""
        try:
            self.get(key)
        except KeyNotFoundError:
            return False
        return True

    def search_cost(self, key: Any) -> int:
        """Pages visited by an exact-match search (always height + 1)."""
        path, _ = self._descend(key)
        return len(path)

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert(self, key: Any, value: Any, replace: bool = False) -> None:
        """Insert a record; duplicate keys raise unless ``replace``."""
        path, leaf = self._descend(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            if not replace:
                from repro.errors import DuplicateKeyError

                raise DuplicateKeyError(f"key {key!r} already present")
            leaf.values[idx] = value
            self.store.write(path[-1], leaf)
            return
        leaf.keys.insert(idx, key)
        leaf.values.insert(idx, value)
        self.store.write(path[-1], leaf)
        self.count += 1
        if len(leaf.keys) > self.leaf_capacity:
            self._split_leaf(path)

    def _split_leaf(self, path: list[int]) -> None:
        leaf_page = path[-1]
        leaf: _Leaf = self.store.read(leaf_page)
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        right.next_leaf = leaf.next_leaf
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right_page = self.store.allocate(right, size_class=0)
        leaf.next_leaf = right_page
        self.store.write(leaf_page, leaf)
        self._insert_in_parent(path[:-1], leaf_page, right.keys[0], right_page)

    def _insert_in_parent(
        self, path: list[int], left_page: int, sep_key: Any, right_page: int
    ) -> None:
        if not path:
            root = _Branch()
            root.keys = [sep_key]
            root.children = [left_page, right_page]
            self.root_page = self.store.allocate(root, size_class=1)
            self.height += 1
            return
        parent_page = path[-1]
        parent: _Branch = self.store.read(parent_page)
        idx = parent.children.index(left_page)
        parent.keys.insert(idx, sep_key)
        parent.children.insert(idx + 1, right_page)
        self.store.write(parent_page, parent)
        if len(parent.children) > self.fanout:
            self._split_branch(path)

    def _split_branch(self, path: list[int]) -> None:
        branch_page = path[-1]
        branch: _Branch = self.store.read(branch_page)
        mid = len(branch.keys) // 2
        sep_key = branch.keys[mid]
        right = _Branch()
        right.keys = branch.keys[mid + 1 :]
        right.children = branch.children[mid + 1 :]
        branch.keys = branch.keys[:mid]
        branch.children = branch.children[: mid + 1]
        right_page = self.store.allocate(right, size_class=1)
        self.store.write(branch_page, branch)
        self._insert_in_parent(path[:-1], branch_page, sep_key, right_page)

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------

    def delete(self, key: Any) -> Any:
        """Remove and return the record under ``key``."""
        path, leaf = self._descend(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx >= len(leaf.keys) or leaf.keys[idx] != key:
            raise KeyNotFoundError(f"key {key!r} not found")
        value = leaf.values.pop(idx)
        leaf.keys.pop(idx)
        self.store.write(path[-1], leaf)
        self.count -= 1
        if len(path) > 1 and len(leaf.keys) < self._min_leaf():
            self._rebalance_leaf(path)
        return value

    def _min_leaf(self) -> int:
        return self.leaf_capacity // 2

    def _min_branch(self) -> int:
        return (self.fanout + 1) // 2

    def _rebalance_leaf(self, path: list[int]) -> None:
        leaf_page = path[-1]
        parent_page = path[-2]
        parent: _Branch = self.store.read(parent_page)
        leaf: _Leaf = self.store.read(leaf_page)
        idx = parent.children.index(leaf_page)

        if idx > 0:
            left: _Leaf = self.store.read(parent.children[idx - 1])
            if len(left.keys) > self._min_leaf():
                leaf.keys.insert(0, left.keys.pop())
                leaf.values.insert(0, left.values.pop())
                parent.keys[idx - 1] = leaf.keys[0]
                self.store.write(parent.children[idx - 1], left)
                self.store.write(leaf_page, leaf)
                self.store.write(parent_page, parent)
                return
        if idx < len(parent.children) - 1:
            right: _Leaf = self.store.read(parent.children[idx + 1])
            if len(right.keys) > self._min_leaf():
                leaf.keys.append(right.keys.pop(0))
                leaf.values.append(right.values.pop(0))
                parent.keys[idx] = right.keys[0]
                self.store.write(parent.children[idx + 1], right)
                self.store.write(leaf_page, leaf)
                self.store.write(parent_page, parent)
                return
        # Merge with a sibling.
        if idx > 0:
            left = self.store.read(parent.children[idx - 1])
            left.keys.extend(leaf.keys)
            left.values.extend(leaf.values)
            left.next_leaf = leaf.next_leaf
            self.store.write(parent.children[idx - 1], left)
            self.store.free(leaf_page)
            parent.keys.pop(idx - 1)
            parent.children.pop(idx)
        else:
            right = self.store.read(parent.children[idx + 1])
            leaf.keys.extend(right.keys)
            leaf.values.extend(right.values)
            leaf.next_leaf = right.next_leaf
            self.store.write(leaf_page, leaf)
            self.store.free(parent.children[idx + 1])
            parent.keys.pop(idx)
            parent.children.pop(idx + 1)
        self.store.write(parent_page, parent)
        self._check_branch_underflow(path[:-1])

    def _rebalance_branch(self, path: list[int]) -> None:
        branch_page = path[-1]
        parent_page = path[-2]
        parent: _Branch = self.store.read(parent_page)
        branch: _Branch = self.store.read(branch_page)
        idx = parent.children.index(branch_page)

        if idx > 0:
            left: _Branch = self.store.read(parent.children[idx - 1])
            if len(left.children) > self._min_branch():
                branch.keys.insert(0, parent.keys[idx - 1])
                parent.keys[idx - 1] = left.keys.pop()
                branch.children.insert(0, left.children.pop())
                self.store.write(parent.children[idx - 1], left)
                self.store.write(branch_page, branch)
                self.store.write(parent_page, parent)
                return
        if idx < len(parent.children) - 1:
            right: _Branch = self.store.read(parent.children[idx + 1])
            if len(right.children) > self._min_branch():
                branch.keys.append(parent.keys[idx])
                parent.keys[idx] = right.keys.pop(0)
                branch.children.append(right.children.pop(0))
                self.store.write(parent.children[idx + 1], right)
                self.store.write(branch_page, branch)
                self.store.write(parent_page, parent)
                return
        if idx > 0:
            left = self.store.read(parent.children[idx - 1])
            left.keys.append(parent.keys.pop(idx - 1))
            left.keys.extend(branch.keys)
            left.children.extend(branch.children)
            self.store.write(parent.children[idx - 1], left)
            self.store.free(branch_page)
            parent.children.pop(idx)
        else:
            right = self.store.read(parent.children[idx + 1])
            branch.keys.append(parent.keys.pop(idx))
            branch.keys.extend(right.keys)
            branch.children.extend(right.children)
            self.store.write(branch_page, branch)
            self.store.free(parent.children[idx + 1])
            parent.children.pop(idx + 1)
        self.store.write(parent_page, parent)
        self._check_branch_underflow(path[:-1])

    def _check_branch_underflow(self, path: list[int]) -> None:
        branch_page = path[-1]
        branch: _Branch = self.store.read(branch_page)
        if branch_page == self.root_page:
            if len(branch.children) == 1:
                self.root_page = branch.children[0]
                self.store.free(branch_page)
                self.height -= 1
            return
        if len(branch.children) < self._min_branch():
            self._rebalance_branch(path)

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------

    def range_scan(self, low: Any, high: Any) -> tuple[list[tuple[Any, Any]], int]:
        """All (key, value) with ``low <= key < high`` plus pages visited."""
        path, leaf = self._descend(low)
        pages = len(path)
        out: list[tuple[Any, Any]] = []
        while True:
            for k, v in zip(leaf.keys, leaf.values):
                if k >= high:
                    return out, pages
                if k >= low:
                    out.append((k, v))
            if leaf.next_leaf is None:
                return out, pages
            leaf = self.store.read(leaf.next_leaf)
            pages += 1

    def items(self) -> Iterator[tuple[Any, Any]]:
        """All records in key order."""
        node = self.store.read(self.root_page)
        while isinstance(node, _Branch):
            node = self.store.read(node.children[0])
        leaf: _Leaf = node
        while True:
            yield from zip(leaf.keys, leaf.values)
            if leaf.next_leaf is None:
                return
            leaf = self.store.read(leaf.next_leaf)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def node_occupancies(self) -> tuple[list[int], list[int]]:
        """(leaf sizes, branch child-counts) across the whole tree."""
        leaves: list[int] = []
        branches: list[int] = []
        stack = [self.root_page]
        while stack:
            node = self.store.read(stack.pop())
            if isinstance(node, _Branch):
                branches.append(len(node.children))
                stack.extend(node.children)
            else:
                leaves.append(len(node.keys))
        return leaves, branches

    def check(self) -> None:
        """Verify ordering, chaining, occupancy and count invariants."""
        leaves, branches = self.node_occupancies()
        if sum(leaves) != self.count:
            raise TreeInvariantError(
                f"count {self.count} != records {sum(leaves)}"
            )
        if len(leaves) > 1:
            low = min(leaves)
            if low < self._min_leaf():
                raise TreeInvariantError(f"leaf with {low} records")
        ordered = [k for k, _ in self.items()]
        if ordered != sorted(ordered):
            raise TreeInvariantError("leaf chain is not in key order")

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return f"BPlusTree({self.count} records, height={self.height})"
