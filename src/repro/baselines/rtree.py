"""Guttman's R-tree ([Gut84]) — the spatial-object baseline of §8.

Stores rectangles directly in leaves under a hierarchy of (possibly
overlapping) minimum bounding rectangles.  Overlap is the R-tree's cost:
an exact search may have to descend several subtrees, so neither search
nor update cost is bounded — the worst-case behaviour [Fre89b] (cited in
§8) sets out to fix with the dual representation reproduced in
:mod:`repro.core.spatial`.

Implements insertion with Guttman's quadratic split, intersection and
containment queries, and deletion with the condense-and-reinsert scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from repro.errors import GeometryError, KeyNotFoundError, TreeInvariantError
from repro.geometry.rect import Rect
from repro.geometry.space import DataSpace
from repro.storage.pager import PageStore


@dataclass
class RTreeStats:
    """Structural counters."""

    leaf_splits: int = 0
    branch_splits: int = 0
    reinserts: int = 0


def _mbr(rects: Sequence[Rect]) -> Rect:
    lows = tuple(min(r.lows[d] for r in rects) for d in range(rects[0].ndim))
    highs = tuple(max(r.highs[d] for r in rects) for d in range(rects[0].ndim))
    return Rect(lows, highs)


def _enlargement(mbr: Rect, rect: Rect) -> float:
    merged = _mbr([mbr, rect])
    return merged.volume() - mbr.volume()


class _Leaf:
    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: list[tuple[Rect, Any]] = []


class _Branch:
    __slots__ = ("children",)

    def __init__(self) -> None:
        self.children: list[tuple[Rect, int]] = []  # (mbr, page)


class RTree:
    """An R-tree over rectangles in a bounded data space."""

    def __init__(
        self,
        space: DataSpace,
        capacity: int = 16,
        page_bytes: int = 1024,
        store: PageStore | None = None,
    ):
        if capacity < 4:
            raise TreeInvariantError(
                f"R-tree pages need capacity of at least 4, got {capacity}"
            )
        self.space = space
        self.capacity = capacity
        self.min_fill = max(2, capacity // 3)
        self.store = store if store is not None else PageStore(page_bytes)
        self.stats = RTreeStats()
        self.count = 0
        self.height = 0
        self.root_page = self.store.allocate(_Leaf(), size_class=0)

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert(self, rect: Rect, value: Any = None) -> None:
        """Store an object."""
        if rect.ndim != self.space.ndim:
            raise GeometryError(
                f"object is {rect.ndim}-d, space is {self.space.ndim}-d"
            )
        if not self.space.whole_rect().contains_rect(rect):
            raise GeometryError(f"{rect!r} exceeds the data space")
        path = self._choose_leaf(rect)
        leaf: _Leaf = self.store.read(path[-1])
        leaf.entries.append((rect, value))
        self.store.write(path[-1], leaf)
        self.count += 1
        if len(leaf.entries) > self.capacity:
            self._split_leaf(path)
        else:
            self._adjust_mbrs(path)

    def _choose_leaf(self, rect: Rect) -> list[int]:
        path = [self.root_page]
        node = self.store.read(self.root_page)
        while isinstance(node, _Branch):
            best = min(
                node.children,
                key=lambda child: (
                    _enlargement(child[0], rect),
                    child[0].volume(),
                ),
            )
            path.append(best[1])
            node = self.store.read(best[1])
        return path

    def _quadratic_split(self, rects: list[Rect]) -> tuple[list[int], list[int]]:
        """Guttman's quadratic split: index partition of ``rects``."""
        worst_pair, worst_waste = (0, 1), float("-inf")
        for i in range(len(rects)):
            for j in range(i + 1, len(rects)):
                waste = (
                    _mbr([rects[i], rects[j]]).volume()
                    - rects[i].volume()
                    - rects[j].volume()
                )
                if waste > worst_waste:
                    worst_pair, worst_waste = (i, j), waste
        a, b = worst_pair
        groups: tuple[list[int], list[int]] = ([a], [b])
        mbrs = [rects[a], rects[b]]
        remaining = [i for i in range(len(rects)) if i not in (a, b)]
        while remaining:
            # Force the rest into a group that must reach minimum fill.
            for g in (0, 1):
                if len(groups[g]) + len(remaining) == self.min_fill:
                    groups[g].extend(remaining)
                    remaining = []
                    break
            if not remaining:
                break
            # Pick the entry with the strongest preference.
            def preference(i: int) -> float:
                return abs(
                    _enlargement(mbrs[0], rects[i])
                    - _enlargement(mbrs[1], rects[i])
                )

            chosen = max(remaining, key=preference)
            remaining.remove(chosen)
            g = (
                0
                if _enlargement(mbrs[0], rects[chosen])
                <= _enlargement(mbrs[1], rects[chosen])
                else 1
            )
            groups[g].append(chosen)
            mbrs[g] = _mbr([mbrs[g], rects[chosen]])
        return groups

    def _split_leaf(self, path: list[int]) -> None:
        page_id = path[-1]
        leaf: _Leaf = self.store.read(page_id)
        group_a, group_b = self._quadratic_split([r for r, _ in leaf.entries])
        entries = leaf.entries
        leaf.entries = [entries[i] for i in group_a]
        sibling = _Leaf()
        sibling.entries = [entries[i] for i in group_b]
        sibling_page = self.store.allocate(sibling, size_class=0)
        self.store.write(page_id, leaf)
        self.stats.leaf_splits += 1
        self._insert_in_parent(
            path[:-1],
            page_id,
            _mbr([r for r, _ in leaf.entries]),
            sibling_page,
            _mbr([r for r, _ in sibling.entries]),
        )

    def _split_branch(self, path: list[int]) -> None:
        page_id = path[-1]
        branch: _Branch = self.store.read(page_id)
        group_a, group_b = self._quadratic_split([r for r, _ in branch.children])
        children = branch.children
        branch.children = [children[i] for i in group_a]
        sibling = _Branch()
        sibling.children = [children[i] for i in group_b]
        sibling_page = self.store.allocate(sibling, size_class=1)
        self.store.write(page_id, branch)
        self.stats.branch_splits += 1
        self._insert_in_parent(
            path[:-1],
            page_id,
            _mbr([r for r, _ in branch.children]),
            sibling_page,
            _mbr([r for r, _ in sibling.children]),
        )

    def _insert_in_parent(
        self,
        path: list[int],
        left_page: int,
        left_mbr: Rect,
        right_page: int,
        right_mbr: Rect,
    ) -> None:
        if not path:
            root = _Branch()
            root.children = [(left_mbr, left_page), (right_mbr, right_page)]
            self.root_page = self.store.allocate(root, size_class=1)
            self.height += 1
            return
        parent_page = path[-1]
        parent: _Branch = self.store.read(parent_page)
        parent.children = [
            (left_mbr if c == left_page else r, c) for r, c in parent.children
        ]
        parent.children.append((right_mbr, right_page))
        self.store.write(parent_page, parent)
        if len(parent.children) > self.capacity:
            self._split_branch(path)
        else:
            self._adjust_mbrs(path)

    def _adjust_mbrs(self, path: list[int]) -> None:
        for parent_page, child_page in zip(reversed(path[:-1]), reversed(path[1:])):
            parent: _Branch = self.store.read(parent_page)
            child = self.store.read(child_page)
            rects = (
                [r for r, _ in child.entries]
                if isinstance(child, _Leaf)
                else [r for r, _ in child.children]
            )
            if not rects:
                continue
            new_mbr = _mbr(rects)
            parent.children = [
                (new_mbr if c == child_page else r, c)
                for r, c in parent.children
            ]
            self.store.write(parent_page, parent)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def intersecting(self, rect: Rect) -> tuple[list[tuple[Rect, Any]], int]:
        """Objects intersecting ``rect`` plus pages visited.

        Overlapping sibling MBRs mean several subtrees may be entered —
        the unbounded-search behaviour §8's dual representation avoids.
        """
        out: list[tuple[Rect, Any]] = []
        pages = 0
        stack = [self.root_page]
        while stack:
            pages += 1
            node = self.store.read(stack.pop())
            if isinstance(node, _Leaf):
                out.extend(
                    (r, v) for r, v in node.entries if r.intersects(rect)
                )
            else:
                stack.extend(
                    child for r, child in node.children if r.intersects(rect)
                )
        return out, pages

    def containing_point(
        self, point: Sequence[float]
    ) -> tuple[list[tuple[Rect, Any]], int]:
        """Objects containing ``point`` (stabbing query) plus pages visited."""
        out: list[tuple[Rect, Any]] = []
        pages = 0
        stack = [self.root_page]
        while stack:
            pages += 1
            node = self.store.read(stack.pop())
            if isinstance(node, _Leaf):
                out.extend(
                    (r, v) for r, v in node.entries if r.contains_point(point)
                )
            else:
                stack.extend(
                    child
                    for r, child in node.children
                    if r.contains_point(point)
                )
        return out, pages

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------

    def delete(self, rect: Rect, value: Any = None) -> None:
        """Remove one object with this exact rectangle and value."""
        found = self._find_leaf(self.root_page, [], rect, value)
        if found is None:
            raise KeyNotFoundError(f"no object {rect!r} with value {value!r}")
        path = found
        leaf: _Leaf = self.store.read(path[-1])
        leaf.entries.remove((rect, value))
        self.store.write(path[-1], leaf)
        self.count -= 1
        self._condense(path)

    def _find_leaf(
        self, page: int, path: list[int], rect: Rect, value: Any
    ) -> list[int] | None:
        path = path + [page]
        node = self.store.read(page)
        if isinstance(node, _Leaf):
            return path if (rect, value) in node.entries else None
        for mbr, child in node.children:
            if mbr.contains_rect(rect):
                result = self._find_leaf(child, path, rect, value)
                if result is not None:
                    return result
        return None

    def _condense(self, path: list[int]) -> None:
        orphans: list[tuple[Rect, Any]] = []
        for depth in range(len(path) - 1, 0, -1):
            page = path[depth]
            parent_page = path[depth - 1]
            node = self.store.read(page)
            size = (
                len(node.entries)
                if isinstance(node, _Leaf)
                else len(node.children)
            )
            if size < self.min_fill and page != self.root_page:
                parent: _Branch = self.store.read(parent_page)
                parent.children = [
                    (r, c) for r, c in parent.children if c != page
                ]
                self.store.write(parent_page, parent)
                if isinstance(node, _Leaf):
                    orphans.extend(node.entries)
                else:
                    orphans.extend(self._collect_objects(page))
                self.store.free(page)
            else:
                self._adjust_mbrs(path[: depth + 1])
        self._shrink_root()
        for rect, value in orphans:
            self.stats.reinserts += 1
            self.count -= 1  # insert() re-increments
            self.insert(rect, value)

    def _collect_objects(self, page: int) -> list[tuple[Rect, Any]]:
        out: list[tuple[Rect, Any]] = []
        stack = [page]
        while stack:
            node = self.store.read(stack.pop())
            if isinstance(node, _Leaf):
                out.extend(node.entries)
            else:
                stack.extend(c for _, c in node.children)
        for inner in self._pages_under(page):
            if inner != page:
                self.store.free(inner)
        return out

    def _pages_under(self, page: int) -> list[int]:
        pages = [page]
        node = self.store.read(page)
        if isinstance(node, _Branch):
            for _, child in node.children:
                pages.extend(self._pages_under(child))
        return pages

    def _shrink_root(self) -> None:
        while True:
            node = self.store.read(self.root_page)
            if isinstance(node, _Branch) and len(node.children) == 1:
                old = self.root_page
                self.root_page = node.children[0][1]
                self.store.free(old)
                self.height -= 1
            else:
                return

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def items(self) -> Iterator[tuple[Rect, Any]]:
        """Iterate all stored objects."""
        stack = [self.root_page]
        while stack:
            node = self.store.read(stack.pop())
            if isinstance(node, _Leaf):
                yield from node.entries
            else:
                stack.extend(c for _, c in node.children)

    def check(self) -> None:
        """Verify MBR containment and the object count."""
        total = 0
        stack: list[tuple[int, Rect | None]] = [(self.root_page, None)]
        while stack:
            page, bound = stack.pop()
            node = self.store.read(page)
            if isinstance(node, _Leaf):
                total += len(node.entries)
                for rect, _ in node.entries:
                    if bound is not None and not bound.contains_rect(rect):
                        raise TreeInvariantError(
                            f"object {rect!r} escapes its MBR {bound!r}"
                        )
                continue
            for mbr, child in node.children:
                if bound is not None and not bound.contains_rect(mbr):
                    raise TreeInvariantError(
                        f"child MBR {mbr!r} escapes parent {bound!r}"
                    )
                stack.append((child, mbr))
        if total != self.count:
            raise TreeInvariantError(f"count {self.count} != objects {total}")

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return f"RTree({self.count} objects, height={self.height})"
