"""A first-partition directory splitter (LSD/Buddy style, [HSW89]/[SK90]).

The paper's §1 critique: these designs avoid cascade splitting "by always
splitting a directory page by the first partition in the binary splitting
sequence — which is the only single partition about which the page can
always be split.  But this is achieved at the price of abandoning all
control over the occupancy of the resulting split index pages".

This implementation is a binary-trie index: data regions are plain blocks
(no enclosure), a data overflow halves the block (re-halving until both
sides are populated), and a directory overflow splits the node's region at
its first binary partition — entries go left or right by their first bit
beyond the node's key, with no balance guarantee whatsoever.  The
occupancy statistics expose the skew.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import (
    DuplicateKeyError,
    KeyNotFoundError,
    ResolutionExhaustedError,
    TreeInvariantError,
)
from repro.core.node import DataPage
from repro.core.query import QueryResult
from repro.geometry.rect import Rect
from repro.geometry.region import ROOT_KEY, RegionKey
from repro.geometry.space import DataSpace
from repro.storage.pager import PageStore


@dataclass
class LSDStats:
    """Structural event counters."""

    data_splits: int = 0
    index_splits: int = 0


class _Directory:
    """A directory node: disjoint block entries (key → page)."""

    __slots__ = ("entries",)

    def __init__(self, entries: list[tuple[RegionKey, int]] | None = None):
        self.entries: list[tuple[RegionKey, int]] = entries or []


class LSDTree:
    """A binary-trie point index with first-partition directory splits."""

    def __init__(
        self,
        space: DataSpace,
        data_capacity: int = 16,
        fanout: int = 16,
        page_bytes: int = 1024,
        store: PageStore | None = None,
    ):
        if data_capacity < 2:
            raise TreeInvariantError(
                f"data pages must hold at least 2 points, got {data_capacity}"
            )
        if fanout < 4:
            raise TreeInvariantError(f"fan-out must be at least 4, got {fanout}")
        self.space = space
        self.data_capacity = data_capacity
        self.fanout = fanout
        self.store = store if store is not None else PageStore(page_bytes)
        self.stats = LSDStats()
        self.count = 0
        self.height = 0
        self.root_page = self.store.allocate(DataPage(), size_class=0)
        self._root_key = ROOT_KEY

    # ------------------------------------------------------------------
    # Descent
    # ------------------------------------------------------------------

    def _descend(self, path: int) -> tuple[list[int], RegionKey]:
        """Pages root→leaf for a bit path, plus the leaf's block key."""
        pages = [self.root_page]
        key = self._root_key
        node = self.store.read(self.root_page)
        while isinstance(node, _Directory):
            for entry_key, child in node.entries:
                if entry_key.contains_path(path, self.space.path_bits):
                    pages.append(child)
                    key = entry_key
                    node = self.store.read(child)
                    break
            else:
                raise TreeInvariantError("no block covers the search path")
        return pages, key

    def insert(
        self, point: Sequence[float], value: Any = None, replace: bool = False
    ) -> None:
        """Insert one record."""
        pt = tuple(float(x) for x in point)
        path = self.space.point_path(pt)
        pages, key = self._descend(path)
        page: DataPage = self.store.read(pages[-1])
        had = path in page.records
        if had and not replace:
            raise DuplicateKeyError(f"point {pt} already present")
        page.insert(path, pt, value, replace=replace)
        self.store.write(pages[-1], page)
        if not had:
            self.count += 1
        if len(page.records) > self.data_capacity:
            self._split_data(pages, key)

    def get(self, point: Sequence[float]) -> Any:
        """The value stored at ``point``."""
        path = self.space.point_path(point)
        pages, _ = self._descend(path)
        page: DataPage = self.store.read(pages[-1])
        record = page.get(path)
        if record is None:
            raise KeyNotFoundError(f"no record at {tuple(point)}")
        return record[1]

    def search_cost(self, point: Sequence[float]) -> int:
        """Pages visited by an exact-match search."""
        return len(self._descend(self.space.point_path(point))[0])

    # ------------------------------------------------------------------
    # Splitting
    # ------------------------------------------------------------------

    def _split_data(self, pages: list[int], key: RegionKey) -> None:
        page_id = pages[-1]
        page: DataPage = self.store.read(page_id)
        path_bits = self.space.path_bits
        # Halve the block; while one side is empty, keep an explicit empty
        # block for coverage and re-halve the populated side.  Unlike the
        # BANG split there is no enclosure, so the populations (and the
        # number of pages created) are data-dependent and unbalanced —
        # first-partition splitting has no occupancy control.
        replacements: list[tuple[RegionKey, int]] = []
        current = key
        while True:
            if current.nbits >= path_bits:
                raise ResolutionExhaustedError(
                    f"cannot split block {current!r} further"
                )
            zero, one = current.child(0), current.child(1)
            n_zero = sum(
                1 for p in page.records if zero.contains_path(p, path_bits)
            )
            if n_zero == 0:
                replacements.append(
                    (zero, self.store.allocate(DataPage(), size_class=0))
                )
                current = one
            elif n_zero == len(page.records):
                replacements.append(
                    (one, self.store.allocate(DataPage(), size_class=0))
                )
                current = zero
            else:
                break
        inner = DataPage()
        for p in list(page.records):
            if one.contains_path(p, path_bits):
                inner.records[p] = page.records.pop(p)
        inner_page = self.store.allocate(inner, size_class=0)
        self.store.write(page_id, page)
        self.stats.data_splits += 1
        replacements += [(zero, page_id), (one, inner_page)]
        self._replace_in_parent(pages, page_id, replacements)

    def _replace_in_parent(
        self,
        pages: list[int],
        old_page: int,
        replacements: list[tuple[RegionKey, int]],
    ) -> None:
        if len(pages) == 1:
            root = _Directory(replacements)
            self.root_page = self.store.allocate(root, size_class=1)
            self.height += 1
            self._check_overflow([self.root_page], self._root_key)
            return
        parent_page = pages[-2]
        parent: _Directory = self.store.read(parent_page)
        parent.entries = [
            (k, c) for k, c in parent.entries if c != old_page
        ] + replacements
        self.store.write(parent_page, parent)
        self._check_overflow(pages[:-1], self._node_key(pages[:-1]))

    def _node_key(self, pages: list[int]) -> RegionKey:
        """The block key of the node at the end of the page path."""
        key = self._root_key
        for parent_page, child_page in zip(pages, pages[1:]):
            parent: _Directory = self.store.read(parent_page)
            for k, c in parent.entries:
                if c == child_page:
                    key = k
                    break
        return key

    def _check_overflow(self, pages: list[int], key: RegionKey) -> None:
        node_page = pages[-1]
        node: _Directory = self.store.read(node_page)
        if len(node.entries) <= self.fanout:
            return
        # The first partition of the node's binary sequence — the only
        # boundary guaranteed not to cut any entry (every entry's key
        # extends the node key by at least one bit).
        zero = key.child(0)
        left = [(k, c) for k, c in node.entries if zero.is_prefix_of(k)]
        right = [(k, c) for k, c in node.entries if not zero.is_prefix_of(k)]
        if not left or not right:
            raise TreeInvariantError(
                f"directory block {key!r} has one-sided coverage"
            )
        self.stats.index_splits += 1
        node.entries = left
        right_node = _Directory(right)
        right_page = self.store.allocate(right_node, size_class=1)
        self.store.write(node_page, node)
        self._replace_in_parent(
            pages, node_page, [(zero, node_page), (key.child(1), right_page)]
        )

    # ------------------------------------------------------------------
    # Queries and introspection
    # ------------------------------------------------------------------

    def range_query(
        self, lows: Sequence[float], highs: Sequence[float]
    ) -> QueryResult:
        """All records in the half-open box."""
        rect = Rect(lows, highs)
        result = QueryResult()
        stack: list[tuple[int, RegionKey]] = [(self.root_page, self._root_key)]
        while stack:
            page_id, key = stack.pop()
            if not self.space.key_rect(key).intersects(rect):
                continue
            result.pages_visited += 1
            node = self.store.read(page_id)
            if isinstance(node, DataPage):
                result.data_pages_visited += 1
                for point, value in node.records.values():
                    if rect.contains_point(point):
                        result.records.append((point, value))
            else:
                stack.extend((c, k) for k, c in node.entries)
        return result

    def occupancies(self) -> tuple[list[int], list[int]]:
        """(data page sizes, directory entry-counts)."""
        data: list[int] = []
        index: list[int] = []
        stack = [self.root_page]
        while stack:
            node = self.store.read(stack.pop())
            if isinstance(node, DataPage):
                data.append(len(node.records))
            else:
                index.append(len(node.entries))
                stack.extend(c for _, c in node.entries)
        return data, index

    def check(self) -> None:
        """Verify blocks are disjoint and records are inside their block."""
        total = 0
        stack: list[tuple[int, RegionKey]] = [(self.root_page, self._root_key)]
        while stack:
            page_id, key = stack.pop()
            node = self.store.read(page_id)
            if isinstance(node, DataPage):
                total += len(node.records)
                for p in node.records:
                    if not key.contains_path(p, self.space.path_bits):
                        raise TreeInvariantError(
                            f"record outside its block {key!r}"
                        )
                continue
            for i, (k1, _) in enumerate(node.entries):
                if not key.is_prefix_of(k1):
                    raise TreeInvariantError(
                        f"entry block {k1!r} escapes node block {key!r}"
                    )
                for k2, _ in node.entries[i + 1 :]:
                    if not k1.disjoint(k2):
                        raise TreeInvariantError(
                            f"overlapping blocks {k1!r} and {k2!r}"
                        )
            stack.extend((c, k) for k, c in node.entries)
        if total != self.count:
            raise TreeInvariantError(f"count {self.count} != records {total}")

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return f"LSDTree({self.count} records, height={self.height})"
